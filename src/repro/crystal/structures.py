"""The two published samples used in the paper's evaluation.

* **Benzil** ((C6H5CO)2, trigonal P3(1)21) measured on CORELLI — the
  diffuse-scattering showcase of Savici et al. 2022 (paper ref. [6]).
  Point group 321 gives the 6 symmetry operations of Tables II/III/IV.
* **Bixbyite** ((Mn,Fe)2O3, cubic Ia-3) measured on TOPAZ — the
  spin-glass study of Roth et al. 2019 (paper ref. [31]).  Point group
  m-3 gives the 24 operations of Tables II/V/VI; body centering imposes
  the h+k+l = even reflection condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crystal.lattice import UnitCell
from repro.crystal.symmetry import PointGroup, point_group
from repro.util.validation import ValidationError


_CENTERING_RULES = {
    "P": lambda h, k, l: np.ones_like(h, dtype=bool),
    "I": lambda h, k, l: (h + k + l) % 2 == 0,
    "F": lambda h, k, l: ((h % 2 == k % 2) & (k % 2 == l % 2)),
    "A": lambda h, k, l: (k + l) % 2 == 0,
    "B": lambda h, k, l: (h + l) % 2 == 0,
    "C": lambda h, k, l: (h + k) % 2 == 0,
    "R": lambda h, k, l: (-h + k + l) % 3 == 0,
}


@dataclass(frozen=True)
class CrystalStructure:
    """A sample: unit cell, point group, lattice centering, and the
    parameters of its synthetic scattering model."""

    name: str
    cell: UnitCell
    point_group_symbol: str
    centering: str = "P"
    #: isotropic displacement parameter controlling high-Q intensity falloff
    b_iso: float = 0.5
    #: fraction of scattering that is diffuse (between Bragg peaks)
    diffuse_fraction: float = 0.2
    #: RNG seed namespace so intensities are reproducible per material
    intensity_seed: int = 0

    def __post_init__(self) -> None:
        if self.centering not in _CENTERING_RULES:
            raise ValidationError(
                f"unknown centering {self.centering!r}; known: {sorted(_CENTERING_RULES)}"
            )
        point_group(self.point_group_symbol)  # validate eagerly

    @property
    def point_group(self) -> PointGroup:
        return point_group(self.point_group_symbol)

    def allowed(self, hkl: np.ndarray) -> np.ndarray:
        """Boolean mask of reflections allowed by the lattice centering."""
        hkl = np.asarray(hkl)
        h = np.rint(hkl[..., 0]).astype(np.int64)
        k = np.rint(hkl[..., 1]).astype(np.int64)
        l = np.rint(hkl[..., 2]).astype(np.int64)
        return _CENTERING_RULES[self.centering](h, k, l)


def benzil() -> CrystalStructure:
    """Benzil: trigonal, a = b = 8.376 A, c = 13.700 A, gamma = 120."""
    return CrystalStructure(
        name="benzil",
        cell=UnitCell(8.376, 8.376, 13.700, 90.0, 90.0, 120.0),
        point_group_symbol="321",
        centering="P",
        b_iso=1.2,
        diffuse_fraction=0.35,  # benzil is the diffuse-scattering use case
        intensity_seed=601,
    )


def bixbyite() -> CrystalStructure:
    """Bixbyite: cubic Ia-3, a = 9.4118 A."""
    return CrystalStructure(
        name="bixbyite",
        cell=UnitCell(9.4118, 9.4118, 9.4118),
        point_group_symbol="m-3",
        centering="I",
        b_iso=0.4,
        diffuse_fraction=0.15,
        intensity_seed=311,
    )
