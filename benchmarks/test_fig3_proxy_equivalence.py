"""Fig. 3: the proxy-application methodology, verified end to end.

The figure promises that the C++ proxy and MiniVATES compute the same
reduction as the Garnet/Mantid production workflow.  This bench runs
all three on the same measured files, asserts histogram identity, and
prints the speedup block corresponding to the paper's headline
"~74x on CPU and ~299x on GPU over the production implementation".
"""

from conftest import FILES, record_report
from repro.bench.harness import (
    A100_PROFILE,
    assert_results_match,
    run_cpp_proxy,
    run_garnet,
    run_minivates,
)
from repro.bench.report import comparison_block


def test_fig3_proxy_equivalence_and_speedups(benchmark, benzil_data):
    n = FILES["benzil"]["garnet"]

    def run_all():
        garnet = run_garnet(benzil_data, files=n)
        cpp = run_cpp_proxy(benzil_data, files=n)
        mv = run_minivates(benzil_data, files=n, profile=A100_PROFILE)
        return garnet, cpp, mv

    garnet, cpp, mv = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Fig. 3's core promise
    assert_results_match(garnet, cpp)
    assert_results_match(garnet, mv)

    base = garnet.per_file("MDNorm + BinMD")
    cpu_speedup = base / max(cpp.per_file("MDNorm + BinMD"), 1e-12)
    gpu_speedup = base / max(mv.warm("MDNorm + BinMD"), 1e-12)
    block = comparison_block(
        "Fig. 3 / headline: proxies vs Garnet production (Benzil, "
        "MDNorm+BinMD per file)",
        {
            "CPU proxy speedup": (74.0, cpu_speedup),
            "device proxy speedup (warm)": (299.0, gpu_speedup),
        },
    )
    block += (
        "\n(identity of all three cross-sections verified bin-for-bin; "
        f"measured on {n} files)"
    )
    record_report("fig3_proxy_equivalence", block)

    # direction: both proxies beat the production baseline; device >= CPU
    assert cpu_speedup > 1.0
    assert gpu_speedup > 1.0
