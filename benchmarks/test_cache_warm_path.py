"""Geometry-cache cold-vs-warm split on the repeated Benzil panel.

The ISSUE's acceptance benchmark: a Garnet-style workflow re-reduces
the same runs across symmetry panels, grid sweeps and benchmark
repetitions, so the second (warm) pass should skip the trajectory /
pre-pass / deposit-plan computation entirely and replay the cached
arrays.  This measures both passes with
:func:`repro.bench.harness.run_repeated_panel`, renders the per-stage
cold/warm table into ``results/``, and asserts

* warm and cold histograms are **bit-identical** (the cache must never
  change physics), and
* the warm MDNorm stage is at least **1.5x** faster than cold on the
  Benzil/CORELLI workload — the "hot path measurably faster" criterion.
"""

import numpy as np

from conftest import record_report
from repro.bench.harness import run_repeated_panel
from repro.bench.report import format_table

#: acceptance floor for the warm-path win on the repeated panel
MIN_MDNORM_SPEEDUP = 1.5


def test_cache_warm_path_benzil(benzil_data):
    split = run_repeated_panel(benzil_data)

    # -- correctness first: the cache must not change a single bit -----
    assert np.array_equal(
        split.cold.result.binmd.signal, split.warm.result.binmd.signal
    )
    assert np.array_equal(
        split.cold.result.mdnorm.signal, split.warm.result.mdnorm.signal
    )

    # -- counters: the warm pass really ran against the cache ----------
    stats = split.cache_stats
    assert stats["hits"] > 0, stats
    assert stats["misses"] > 0, stats
    assert stats["hit_rate"] > 0.0

    table = split.stage_table()
    rows = [
        (
            stage,
            f"{row['cold_s']:.4f}",
            f"{row['warm_s']:.4f}",
            f"{row['speedup']:.2f}x",
        )
        for stage, row in table.items()
    ]
    rows.append(("cache", f"hits={stats['hits']:.0f}",
                 f"misses={stats['misses']:.0f}",
                 f"hit rate {stats['hit_rate']:.0%}"))
    record_report(
        "cache_warm_path",
        format_table(
            "Geometry cache: cold vs warm reduction of the repeated "
            f"Benzil/CORELLI panel ({split.cold.files_measured} files, "
            "vectorized back end)",
            ["stage", "cold (s)", "warm (s)", "speedup"],
            rows,
        ),
    )

    # -- the acceptance criterion: warm MDNorm >= 1.5x faster ----------
    speedup = split.speedup("MDNorm")
    assert speedup >= MIN_MDNORM_SPEEDUP, (
        f"warm MDNorm only {speedup:.2f}x faster than cold "
        f"(need >= {MIN_MDNORM_SPEEDUP}x); table: {table}"
    )
