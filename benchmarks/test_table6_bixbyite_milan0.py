"""Table VI: Bixbyite proxies on a Milan0-like configuration.

The paper's headline cells: warm (no-JIT) BinMD on the A100 runs
"over 50,000x faster than the C++ proxy on CPU" (5.31e-5 s — a number
dominated by asynchronous kernel launch, which a synchronous NumPy
device cannot reproduce; EXPERIMENTS.md discusses this), and MDNorm is
~3x faster than the C++ proxy.
"""

from conftest import FILES, record_report
from repro.bench.harness import (
    A100_PROFILE,
    MI100_PROFILE,
    run_cpp_proxy,
    run_minivates,
    run_minivates_jit_split,
)
from repro.bench.paper import TABLE6_BIXBYITE_MILAN0
from repro.bench.report import comparison_block, format_stage_table


def test_table6_bixbyite_milan0(benchmark, bixbyite_data):
    files = FILES["bixbyite"]
    cpp = run_cpp_proxy(bixbyite_data, files=files["cpp"])
    mv_total = run_minivates(
        bixbyite_data, files=files["minivates"], profile=A100_PROFILE
    )

    def jit_split():
        return run_minivates_jit_split(bixbyite_data, profile=A100_PROFILE)

    mv_jit, mv_warm = benchmark.pedantic(jit_split, rounds=1, iterations=1)

    table = format_stage_table(
        "Table VI analogue: Bixbyite (TOPAZ) on Milan0-like engines "
        "(CPU threads vs A100-class device)",
        cpp,
        mv_jit,
        mv_warm,
        TABLE6_BIXBYITE_MILAN0,
        mv_total=mv_total,
    )

    _, mi_warm = run_minivates_jit_split(bixbyite_data, profile=MI100_PROFILE)
    table += "\n" + comparison_block(
        "paper headline ratios (Bixbyite, warm same-file per-stage)",
        {
            "MDNorm C++/A100-class": (
                3.0,
                cpp.per_file("MDNorm") / max(mv_warm.per_file("MDNorm"), 1e-12),
            ),
            "BinMD C++/A100-class": (
                58000.0,
                cpp.per_file("BinMD") / max(mv_warm.per_file("BinMD"), 1e-12),
            ),
            "MDNorm MI100/A100 class": (
                1.15,
                mi_warm.per_file("MDNorm") / max(mv_warm.per_file("MDNorm"), 1e-12),
            ),
        },
    )
    record_report("table6_bixbyite_milan0", table)

    # the direction that must hold: the A100-class device MDNorm beats
    # the CPU proxy on the heavy workload (paper: ~3x)
    assert mv_warm.per_file("MDNorm") < cpp.per_file("MDNorm")
    # JIT semantics, asserted deterministically (the compile cost is
    # sub-millisecond and drowns in single-core timing noise on heavy
    # files): the cold run performed kernel specializations, and its
    # wall clock is not anomalously below the warm run
    assert mv_jit.extras["jit_compile_events"] > 0
    assert mv_jit.extras["jit_compile_seconds"] > 0
    assert mv_jit.per_file("MDNorm + BinMD") >= 0.7 * mv_warm.per_file("MDNorm + BinMD")
