"""Extension bench: near-real-time streaming reduction latency.

Quantifies the "near-real time data processing" capability the paper's
introduction motivates: how long after an acquisition chunk arrives is
the live cross-section updated, and what does a snapshot cost —
the two numbers that decide whether an experiment can be steered.
"""

import time

import numpy as np

from conftest import record_report
from repro.bench.report import format_table
from repro.core.streaming import EventStream, StreamingReduction
from repro.nexus.corrections import read_flux_file, read_vanadium_file
from repro.nexus.schema import read_event_nexus

N_RUNS = 3
BATCH = 500


def test_extension_streaming_latency(benchmark, benzil_data):
    data = benzil_data
    flux = read_flux_file(data.flux_path)
    vanadium = read_vanadium_file(data.vanadium_path)

    def stream_everything():
        live = StreamingReduction(
            grid=data.grid,
            point_group=data.point_group,
            flux=flux,
            instrument=data.instrument,
            solid_angles=vanadium.detector_weights,
            backend="vectorized",
        )
        open_times, batch_times, snapshot_times = [], [], []
        for path in data.nexus_paths[:N_RUNS]:
            run = read_event_nexus(path)
            t0 = time.perf_counter()
            live.open_run(run)
            open_times.append(time.perf_counter() - t0)
            for b in EventStream(run, batch_size=BATCH):
                t0 = time.perf_counter()
                live.consume(b)
                batch_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            live.snapshot()
            snapshot_times.append(time.perf_counter() - t0)
            live.close_run(run.run_number)
        return live, open_times, batch_times, snapshot_times

    live, open_times, batch_times, snapshot_times = benchmark.pedantic(
        stream_everything, rounds=1, iterations=1
    )

    rows = [
        ("open_run (MDNorm, once/run)", f"{np.mean(open_times) * 1e3:.2f}",
         f"{np.max(open_times) * 1e3:.2f}"),
        (f"consume ({BATCH}-event batch)", f"{np.mean(batch_times) * 1e3:.2f}",
         f"{np.max(batch_times) * 1e3:.2f}"),
        ("snapshot (live cross-section)", f"{np.mean(snapshot_times) * 1e3:.2f}",
         f"{np.max(snapshot_times) * 1e3:.2f}"),
    ]
    record_report(
        "extension_streaming",
        format_table(
            "Extension: streaming reduction latency "
            f"({N_RUNS} runs, {len(batch_times)} batches)",
            ["operation", "mean (ms)", "max (ms)"],
            rows,
            col_width=30,
        )
        + "\n(an acquisition chunk is visible in the live cross-section "
        "within one consume + snapshot)",
    )

    assert live.events_seen > 0
    # steering requires sub-second turnaround per chunk at this scale
    assert np.mean(batch_times) + np.mean(snapshot_times) < 1.0
