"""Elastic work-stealing vs the static plan on a skewed campaign.

ISSUE 7's acceptance bar: when the run weights are skewed enough that
one rank's static block holds nearly all the stored bytes, the
stealing executor must buy real wall-clock over the static plan while
staying bit-identical to it.

Both legs run on the *same* substrate — ``run_stealing_campaign`` with
``ShardConfig(n_shards=4, workers=2)`` over two ranks — and differ only
in the schedule policy:

* baseline: ``no-steal``, which degenerates to exactly the static
  owner-block plan (proven by the conformance suite in
  ``tests/integration/test_stealing.py``), so the comparison isolates
  the scheduling decision from every other execution detail;
* contender: ``weighted``, where the idle rank steals the heavy run's
  shard tasks off its owner's queue tail.

With the pool executing each claimed shard task, the no-steal leg keeps
one task in flight (the light rank drains and idles) while the
stealing leg keeps two — so the win is only physically possible with
>= 2 cores.  Single-core hosts skip the speedup assertion but still
check bit-identity and that steals actually happened, so the smoke
never rots.
"""

import os
import time

import numpy as np
import pytest

from conftest import record_report
from repro.bench.report import format_table
from repro.jacc.workers import GLOBAL_POOL

MIN_SPEEDUP = 1.3
N_SHARDS = 4
SCALE = float(os.environ.get("REPRO_SCALE", 0.002))

#: events in the one heavy run vs each of the three light runs; at the
#: default scale the heavy run is ~97% of the campaign's stored bytes
HEAVY_EVENTS = max(400, int(6_000_000 * SCALE))
LIGHT_EVENTS = max(40, HEAVY_EVENTS // 40)
N_PIXELS = max(24, int(200_000 * SCALE))


@pytest.fixture(scope="module")
def skewed(tmp_path_factory):
    """One heavy run + three light runs: the worst case for a static
    owner-block plan, the best case for shard-level stealing."""
    from repro.core.grid import HKLGrid
    from repro.core.md_event_workspace import convert_to_md, load_md, save_md
    from repro.crystal.goniometer import Goniometer
    from repro.crystal.structures import benzil
    from repro.crystal.symmetry import point_group
    from repro.crystal.ub import UBMatrix
    from repro.instruments.corelli import make_corelli
    from repro.instruments.synth import (
        make_flux,
        make_vanadium,
        synthesize_run,
    )

    base = tmp_path_factory.mktemp("steal_bench")
    structure = benzil()
    instrument = make_corelli(n_pixels=N_PIXELS)
    ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0],
                                 [1.0, 0.0, 0.0])
    paths = []
    for i, omega in enumerate((0.0, 30.0, 60.0, 90.0)):
        n_events = HEAVY_EVENTS if i == 0 else LIGHT_EVENTS
        run = synthesize_run(
            instrument=instrument, structure=structure, ub=ub,
            goniometer=Goniometer(omega).rotation, n_events=n_events,
            rng=np.random.default_rng(8800 + i), run_number=i,
        )
        path = str(base / f"run_{i}.md.h5")
        save_md(path, convert_to_md(run, instrument, run_index=i))
        paths.append(path)
    data = dict(
        loader=lambda i: load_md(paths[i]),
        kw=dict(
            n_runs=4,
            grid=HKLGrid.benzil_grid(bins=(21, 21, 1)),
            point_group=point_group("321"),
            flux=make_flux(instrument),
            det_directions=instrument.directions,
            solid_angles=make_vanadium(instrument).detector_weights,
        ),
    )
    yield data
    GLOBAL_POOL.dispose()


def _campaign(data, policy, seed):
    from repro.core.sharding import ShardConfig
    from repro.mpi import run_world
    from repro.mpi.stealing import run_stealing_campaign
    from repro.util.schedule import ScheduleController

    schedule = ScheduleController(seed=seed, policy=policy)

    def body(comm):
        return run_stealing_campaign(
            data["loader"], comm=comm,
            shards=ShardConfig(n_shards=N_SHARDS, workers=2),
            schedule=schedule, **data["kw"])

    t0 = time.monotonic()
    out = run_world(2, body, barrier_timeout=600.0)
    wall = time.monotonic() - t0
    roots = [r for r in out
             if r is not None and r.cross_section is not None]
    assert len(roots) == 1
    return roots[0], wall


@pytest.fixture(scope="module")
def legs(skewed):
    static_res, static_wall = _campaign(skewed, "no-steal", seed=0)
    steal_res, steal_wall = _campaign(skewed, "weighted", seed=42)
    return {
        "static": (static_res, static_wall),
        "stealing": (steal_res, steal_wall),
    }


def test_stealing_bit_identical_to_static(legs):
    """The determinism half: the steal schedule must be invisible in
    every histogram, bit for bit."""
    static, _ = legs["static"]
    steal, _ = legs["stealing"]
    assert np.array_equal(steal.binmd.signal, static.binmd.signal)
    assert np.array_equal(steal.binmd.error_sq, static.binmd.error_sq)
    assert np.array_equal(steal.mdnorm.signal, static.mdnorm.signal)
    assert np.array_equal(steal.cross_section.signal,
                          static.cross_section.signal, equal_nan=True)


def test_stealing_actually_stole(legs):
    """The weighted leg must have moved work off the heavy rank —
    otherwise the speedup test below measures nothing."""
    static, _ = legs["static"]
    steal, _ = legs["stealing"]
    assert static.extras["stealing"]["steals"] == 0
    assert steal.extras["stealing"]["steals"] > 0


def test_stealing_speedup_on_skewed_campaign(legs):
    """The performance half, reported always and asserted only where a
    win is physically possible (>= 2 cores)."""
    static, static_wall = legs["static"]
    steal, steal_wall = legs["stealing"]
    speedup = static_wall / steal_wall if steal_wall > 0 else float("inf")
    rows = [
        ("static (no-steal)", f"{static_wall:.3f}", "0", "--"),
        ("stealing (weighted)", f"{steal_wall:.3f}",
         str(steal.extras["stealing"]["steals"]), f"{speedup:.2f}x"),
    ]
    record_report(
        "steal_scaling",
        format_table(
            f"Elastic work-stealing on a skewed campaign "
            f"({HEAVY_EVENTS}-event heavy run + 3x{LIGHT_EVENTS}, "
            f"{N_SHARDS} shards, 2 ranks)",
            ["executor", "wall (s)", "steals", "speedup"],
            rows,
        ),
    )
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"single-core host ({cores} CPU): an idle rank cannot add "
            "throughput; numerics verified, speedup not assertable"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"stealing only {speedup:.2f}x vs the static plan "
        f"(bar: {MIN_SPEEDUP}x on {cores} cores)"
    )
