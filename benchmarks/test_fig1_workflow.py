"""Fig. 1: the integrated facility workflow, end to end.

The figure is a block diagram (instrument -> acquisition -> reduction
-> remote access -> HPC); its measurable reproduction is the stage
breakdown of the complete pipeline this package implements: synthesize
the experiment (the instrument + acquisition blocks), write the
facility files, reduce on the portable stack, and write the reduced
data product a user would take home.
"""

import os
import tempfile
import time

import numpy as np

from conftest import record_report
from repro.bench.report import format_table
from repro.core.md_event_workspace import convert_to_md, save_md
from repro.core.output import load_reduced, save_reduced
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil
from repro.crystal.symmetry import point_group
from repro.crystal.ub import UBMatrix
from repro.core.grid import HKLGrid
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.nexus.corrections import write_flux_file, write_vanadium_file
from repro.nexus.schema import write_event_nexus
from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow

N_RUNS = 4
EVENTS_PER_RUN = 4000
PIXELS = 1000


def test_fig1_end_to_end_workflow(benchmark):
    tmp = tempfile.mkdtemp(prefix="repro_fig1_")
    stages = {}

    def run_pipeline():
        # -- experiment + acquisition ---------------------------------
        t0 = time.perf_counter()
        structure = benzil()
        instrument = make_corelli(n_pixels=PIXELS)
        ub = UBMatrix.from_u_vectors(structure.cell, [0, 0, 1], [1, 0, 0])
        runs = [
            synthesize_run(
                instrument=instrument, structure=structure, ub=ub,
                goniometer=Goniometer(omega).rotation,
                n_events=EVENTS_PER_RUN,
                rng=np.random.default_rng(4000 + i), run_number=i,
            )
            for i, omega in enumerate(np.linspace(0, 135, N_RUNS))
        ]
        stages["experiment + acquisition"] = time.perf_counter() - t0

        # -- facility file writing (NeXus + SaveMD + corrections) ------
        t0 = time.perf_counter()
        md_paths = []
        for i, run in enumerate(runs):
            write_event_nexus(os.path.join(tmp, f"r{i}.nxs.h5"), run)
            ws = convert_to_md(run, instrument, run_index=i)
            path = os.path.join(tmp, f"r{i}.md.h5")
            save_md(path, ws)
            md_paths.append(path)
        flux_path = os.path.join(tmp, "flux.h5")
        van_path = os.path.join(tmp, "van.h5")
        write_flux_file(flux_path, make_flux(instrument))
        write_vanadium_file(van_path, make_vanadium(instrument))
        stages["facility files"] = time.perf_counter() - t0

        # -- portable reduction ----------------------------------------
        t0 = time.perf_counter()
        result = MiniVatesWorkflow(
            MiniVatesConfig(
                md_paths=md_paths, flux_path=flux_path, vanadium_path=van_path,
                instrument=instrument,
                grid=HKLGrid.benzil_grid(bins=(101, 101, 1)),
                point_group=point_group("321"),
            )
        ).run()
        stages["reduction (MiniVATES)"] = time.perf_counter() - t0

        # -- reduced data product (remote-user deliverable) ------------
        t0 = time.perf_counter()
        out_path = os.path.join(tmp, "reduced.h5")
        save_reduced(out_path, result, notes="fig1 end-to-end bench")
        back = load_reduced(out_path)
        stages["reduced data product"] = time.perf_counter() - t0
        return result, back

    result, back = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    total = sum(stages.values())
    rows = [
        (name, f"{seconds:.3f}", f"{seconds / total:.0%}")
        for name, seconds in stages.items()
    ]
    record_report(
        "fig1_workflow",
        format_table(
            "Fig. 1 analogue: integrated workflow stage breakdown "
            f"({N_RUNS} runs x {EVENTS_PER_RUN} events, {PIXELS} pixels)",
            ["stage", "WCT (s)", "share"],
            rows,
            col_width=26,
        ),
    )

    # the pipeline is lossless end to end
    mask = ~np.isnan(result.cross_section.signal)
    assert np.allclose(
        back.cross_section.signal[mask], result.cross_section.signal[mask]
    )
    assert result.binmd.total() > 0
