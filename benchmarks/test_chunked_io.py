"""Chunked-container I/O: per-codec decode cost, cold vs warm tiles.

ISSUE 6 moves the event tables onto the v2 chunked container so the
reduction can stream bounded windows instead of materializing whole
tables.  This benchmark prices that choice:

* **cold scan** — every chunk decoded from disk through the
  :class:`~repro.nexus.tiles.TileManager` (all misses), per codec;
* **warm scan** — the same windows again with the decoded chunks
  resident (all hits, zero decodes): the tile cache must make repeat
  access free, which is what the shard executor's re-reads rely on;
* **budgeted scan** — an LRU budget ~4x smaller than the table: the
  scan must still complete (evicting as it goes) with peak decoded
  residency under the budget, the out-of-core acceptance bound.

Correctness is asserted always (accounting invariants + the residency
bound + bit-identical reads); timings are reported, never gated — the
perf trajectory in ``BENCH_benzil_oocore.json`` owns the regression
gate.
"""

import time

import numpy as np
import pytest

from conftest import record_report
from repro.bench.report import format_table
from repro.core.md_event_workspace import load_md, save_md
from repro.nexus.h5lite import CHUNK_CODECS, File
from repro.nexus.tiles import TileManager

CHUNK_ROWS = 1024
EVENT_TABLE = "MDEventWorkspace/event_table"


@pytest.fixture(scope="module")
def chunked_files(benzil_data, tmp_path_factory):
    """The first Benzil run re-saved chunked, once per codec."""
    tmp = tmp_path_factory.mktemp("chunked_io")
    ws = load_md(benzil_data.md_paths[0])
    paths = {}
    for codec in CHUNK_CODECS:
        path = tmp / f"run_{codec.replace('-', '_')}.h5"
        save_md(path, ws, chunk_events=CHUNK_ROWS, codec=codec)
        paths[codec] = path
    return ws, paths


def _scan(tiles, ds):
    """One full sequential pass of chunk-aligned windows."""
    t0 = time.perf_counter()
    total = 0
    for a, b in ds.chunk_ranges():
        total += tiles.window(a, b).shape[0]
    return time.perf_counter() - t0, total


def test_cold_vs_warm_tile_scan(chunked_files):
    """Warm re-reads decode nothing; the table prices each codec."""
    ws, paths = chunked_files
    raw_mb = ws.events.data.nbytes / 2**20
    rows = []
    for codec, path in paths.items():
        with File(path, "r") as f:
            ds = f[EVENT_TABLE]
            stored = sum(ds.chunk_stored_nbytes())
            tiles = TileManager(ds)  # unlimited budget: nothing evicts
            cold_s, n_cold = _scan(tiles, ds)
            warm_s, n_warm = _scan(tiles, ds)
            stats = tiles.stats
            # accounting invariants: one miss per chunk cold, one hit
            # per chunk warm, the warm scan decoded zero bytes
            assert n_cold == n_warm == ws.events.n_events
            assert stats.misses == ds.n_chunks, stats.snapshot()
            assert stats.hits == ds.n_chunks, stats.snapshot()
            assert stats.evictions == 0, stats.snapshot()
            assert stats.decoded_bytes == ws.events.data.nbytes
            rows.append((
                codec,
                f"{stored / 2**20:.2f}",
                f"{ws.events.data.nbytes / max(stored, 1):.2f}x",
                f"{cold_s:.4f}",
                f"{raw_mb / max(cold_s, 1e-9):.0f}",
                f"{warm_s:.4f}",
                f"{cold_s / max(warm_s, 1e-9):.1f}x",
            ))
    record_report(
        "chunked_io",
        format_table(
            f"Chunked event I/O ({ws.events.n_events} events, "
            f"{raw_mb:.2f} MB raw, {CHUNK_ROWS}-row chunks)",
            ["codec", "stored MB", "ratio", "cold scan (s)",
             "decode MB/s", "warm scan (s)", "warm speedup"],
            rows,
        ),
    )


@pytest.mark.parametrize("codec", CHUNK_CODECS)
def test_budgeted_scan_bounded_and_identical(chunked_files, codec):
    """A scan through a budget ~4x smaller than the table completes
    with peak residency under the budget and reads the exact bytes."""
    ws, paths = chunked_files
    budget = max(CHUNK_ROWS * 64 * 2, ws.events.data.nbytes // 4)
    with File(paths[codec], "r") as f:
        ds = f[EVENT_TABLE]
        tiles = TileManager(ds, budget_bytes=budget)
        parts = [np.array(tiles.window(a, b)) for a, b in ds.chunk_ranges()]
        stats = tiles.stats
    assert np.array_equal(np.concatenate(parts), ws.events.data)
    if ds.nbytes > budget:
        assert stats.evictions > 0, stats.snapshot()
    assert 0 < stats.peak_resident_bytes <= budget, stats.snapshot()
