"""Tracing overhead: enabled tracing must cost < 5% on the hot path.

The observability acceptance bar: running the fig2 smoke workload (one
Benzil file, BinMD + MDNorm on the vectorized back end) under an
enabled :class:`~repro.util.trace.Tracer` may add at most 5% wall-clock
over the identical run with tracing disabled.  Min-of-repeats on both
sides keeps scheduler noise out of the ratio; the measured ratio is
recorded in the bench report.
"""

import time

import numpy as np

from conftest import record_report
from repro.bench.report import format_table
from repro.core.binmd import bin_events
from repro.core.geom_cache import DISABLED as CACHE_DISABLED
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import load_md
from repro.core.mdnorm import mdnorm
from repro.nexus.corrections import read_flux_file, read_vanadium_file
from repro.util import trace as trace_mod

MAX_OVERHEAD = 0.05
REPEATS = 5


def _workload(benzil_data):
    ws = load_md(benzil_data.md_paths[0])
    grid = benzil_data.grid
    pg = benzil_data.point_group
    event_t = grid.transforms_for(ws.ub_matrix, pg)
    traj_t = grid.transforms_for(ws.ub_matrix, pg, goniometer=ws.goniometer)
    flux = read_flux_file(benzil_data.flux_path)
    van = read_vanadium_file(benzil_data.vanadium_path)

    def reduce_one():
        binmd_h = Hist3(grid)
        bin_events(binmd_h, ws.events, event_t, backend="vectorized",
                   cache=CACHE_DISABLED)
        norm_h = Hist3(grid)
        mdnorm(
            norm_h, traj_t, benzil_data.instrument.directions,
            van.detector_weights, flux, ws.momentum_band,
            backend="vectorized", cache=CACHE_DISABLED,
        )
        return binmd_h, norm_h

    return reduce_one


def _min_time(fn, tracer, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        with trace_mod.use_tracer(tracer):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    return best


def test_trace_overhead_under_five_percent(benzil_data):
    reduce_one = _workload(benzil_data)
    reduce_one()  # warm JIT/specialization once, outside both measurements

    t_off = _min_time(reduce_one, trace_mod.DISABLED)
    tracer = trace_mod.Tracer(label="overhead")
    t_on = _min_time(reduce_one, tracer)

    assert tracer.n_spans > 0, "the enabled run must actually trace"
    ratio = t_on / t_off
    rows = [
        ("tracing off", f"{t_off:.4f}", "1.00"),
        ("tracing on", f"{t_on:.4f}", f"{ratio:.3f}"),
        ("spans/run", str(tracer.n_spans // REPEATS), "-"),
    ]
    report = format_table(
        title="Tracing overhead on the fig2 smoke workload (min of "
              f"{REPEATS}, vectorized back end)",
        headers=("configuration", "seconds", "ratio"),
        rows=rows,
    )
    record_report("trace_overhead", report)
    print(report)

    # min-of-repeats on a quiet path; 5% is the acceptance bar
    assert ratio < 1.0 + MAX_OVERHEAD, (
        f"enabled tracing costs {100 * (ratio - 1):.1f}% "
        f"(> {100 * MAX_OVERHEAD:.0f}% budget): {t_on:.4f}s vs {t_off:.4f}s"
    )


def test_disabled_tracer_is_process_default():
    """The overhead everyone else pays is the NullTracer, by default."""
    assert trace_mod.active_tracer() is trace_mod.DISABLED
    assert not trace_mod.active_tracer().enabled
