"""Tracing overhead: enabled tracing must cost < 5% on the hot path.

The observability acceptance bar: running the fig2 smoke workload (one
Benzil file, BinMD + MDNorm on the vectorized back end) under an
enabled :class:`~repro.util.trace.Tracer` may add at most 5% wall-clock
over the identical run with tracing disabled.  Min-of-repeats on both
sides keeps scheduler noise out of the ratio; the measured ratio is
recorded in the bench report.
"""

import time

import numpy as np

from conftest import record_report
from repro.bench.report import format_table
from repro.core.binmd import bin_events
from repro.core.geom_cache import DISABLED as CACHE_DISABLED
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import load_md
from repro.core.mdnorm import mdnorm
from repro.nexus.corrections import read_flux_file, read_vanadium_file
from repro.util import trace as trace_mod

MAX_OVERHEAD = 0.05
REPEATS = 5


def _workload(benzil_data):
    ws = load_md(benzil_data.md_paths[0])
    grid = benzil_data.grid
    pg = benzil_data.point_group
    event_t = grid.transforms_for(ws.ub_matrix, pg)
    traj_t = grid.transforms_for(ws.ub_matrix, pg, goniometer=ws.goniometer)
    flux = read_flux_file(benzil_data.flux_path)
    van = read_vanadium_file(benzil_data.vanadium_path)

    def reduce_one():
        binmd_h = Hist3(grid)
        bin_events(binmd_h, ws.events, event_t, backend="vectorized",
                   cache=CACHE_DISABLED)
        norm_h = Hist3(grid)
        mdnorm(
            norm_h, traj_t, benzil_data.instrument.directions,
            van.detector_weights, flux, ws.momentum_band,
            backend="vectorized", cache=CACHE_DISABLED,
        )
        return binmd_h, norm_h

    return reduce_one


def _min_time(fn, tracer, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        with trace_mod.use_tracer(tracer):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    return best


def test_trace_overhead_under_five_percent(benzil_data):
    reduce_one = _workload(benzil_data)
    for _ in range(3):  # warm JIT/specialization and the allocator
        reduce_one()

    # Interleave the two configurations so slow clock drift (thermal,
    # scheduler) hits both sides equally; min-of-repeats on each side.
    tracer = trace_mod.Tracer(label="overhead")
    t_off = float("inf")
    t_on = float("inf")
    for _ in range(5 * REPEATS):
        t_off = min(t_off, _min_time(reduce_one, trace_mod.DISABLED,
                                     repeats=1))
        t_on = min(t_on, _min_time(reduce_one, tracer, repeats=1))

    assert tracer.n_spans > 0, "the enabled run must actually trace"
    ratio = t_on / t_off
    rows = [
        ("tracing off", f"{t_off:.4f}", "1.00"),
        ("tracing on", f"{t_on:.4f}", f"{ratio:.3f}"),
        ("spans/run", str(tracer.n_spans // (5 * REPEATS)), "-"),
    ]
    report = format_table(
        title="Tracing overhead on the fig2 smoke workload (min of "
              f"{5 * REPEATS} interleaved, vectorized back end)",
        headers=("configuration", "seconds", "ratio"),
        rows=rows,
    )
    record_report("trace_overhead", report)
    print(report)

    # min-of-repeats on a quiet path; 5% is the acceptance bar
    assert ratio < 1.0 + MAX_OVERHEAD, (
        f"enabled tracing costs {100 * (ratio - 1):.1f}% "
        f"(> {100 * MAX_OVERHEAD:.0f}% budget): {t_on:.4f}s vs {t_off:.4f}s"
    )


def test_profiler_overhead_under_five_percent(benzil_data):
    """Kernel profiling (PR 4) rides the same budget as tracing itself.

    ``Tracer(profile=True)`` computes the cost-model work estimates and
    attaches a ``perf`` dict to every kernel span.  That bookkeeping is
    pure integer arithmetic per *launch* (never per event), so it must
    fit inside the same 5% bar measured against a tracing-only run.
    """
    reduce_one = _workload(benzil_data)
    for _ in range(3):  # warm JIT/specialization and the allocator
        reduce_one()

    # Interleave the two configurations so slow clock drift (thermal,
    # scheduler) hits both sides equally; min-of-repeats on each side.
    plain = trace_mod.Tracer(label="overhead", profile=False)
    profiled = trace_mod.Tracer(label="overhead", profile=True)
    t_plain = float("inf")
    t_prof = float("inf")
    for _ in range(5 * REPEATS):
        t_plain = min(t_plain, _min_time(reduce_one, plain, repeats=1))
        t_prof = min(t_prof, _min_time(reduce_one, profiled, repeats=1))

    assert not plain.profile and profiled.profile
    prof_spans = [r for r in profiled.records
                  if isinstance(r.get("attrs", {}).get("perf"), dict)]
    assert prof_spans, "the profiled run must attach perf dicts"
    assert not any(isinstance(r.get("attrs", {}).get("perf"), dict)
                   for r in plain.records), \
        "profile=False must not attach perf dicts"

    ratio = t_prof / t_plain
    rows = [
        ("tracing only", f"{t_plain:.4f}", "1.00"),
        ("tracing + profiling", f"{t_prof:.4f}", f"{ratio:.3f}"),
        ("profiled spans/run", str(len(prof_spans) // (5 * REPEATS)), "-"),
    ]
    report = format_table(
        title="Profiler overhead over tracing alone (min of "
              f"{5 * REPEATS} interleaved, vectorized back end)",
        headers=("configuration", "seconds", "ratio"),
        rows=rows,
    )
    record_report("profiler_overhead", report)
    print(report)

    assert ratio < 1.0 + MAX_OVERHEAD, (
        f"kernel profiling costs {100 * (ratio - 1):.1f}% over tracing "
        f"(> {100 * MAX_OVERHEAD:.0f}% budget): {t_prof:.4f}s vs {t_plain:.4f}s"
    )


def test_context_propagation_overhead_under_five_percent(benzil_data):
    """Schema-v3 causal context rides the same 5% budget.

    The cross-process upgrade mints a global ``uid`` per span, carries
    the campaign id, and adopts a remote parent via the thread-local
    ``parent_scope`` — exactly what every rank/worker boundary now does.
    Measured with the full context installed (campaign root span, rank
    scope, remote-parent adoption) against tracing fully off.
    """
    reduce_one = _workload(benzil_data)
    for _ in range(3):  # warm JIT/specialization and the allocator
        reduce_one()

    tracer = trace_mod.Tracer(
        label="overhead-ctx",
        campaign_id=trace_mod.new_campaign_id("overhead"),
    )
    with trace_mod.use_tracer(tracer):
        with tracer.span("campaign", kind="campaign") as root:
            root_uid = root.uid

    def traced_with_context():
        with trace_mod.rank_scope(0), trace_mod.parent_scope(root_uid):
            reduce_one()

    # Interleaved like the other overhead gates: drift-immune ratio.
    t_off = float("inf")
    t_on = float("inf")
    for _ in range(5 * REPEATS):
        t_off = min(t_off, _min_time(reduce_one, trace_mod.DISABLED,
                                     repeats=1))
        t_on = min(t_on, _min_time(traced_with_context, tracer,
                                   repeats=1))

    spans = list(trace_mod.iter_spans(tracer.records))
    assert all(r.get("uid") for r in spans), "v3 spans must carry uids"
    assert any(r.get("parent_uid") == root_uid for r in spans), \
        "root spans must adopt the remote parent"

    ratio = t_on / t_off
    rows = [
        ("tracing off", f"{t_off:.4f}", "1.00"),
        ("tracing + v3 context", f"{t_on:.4f}", f"{ratio:.3f}"),
    ]
    report = format_table(
        title="Causal-context overhead on the fig2 smoke workload (min "
              f"of {5 * REPEATS} interleaved, vectorized back end)",
        headers=("configuration", "seconds", "ratio"),
        rows=rows,
    )
    record_report("trace_context_overhead", report)
    print(report)

    assert ratio < 1.0 + MAX_OVERHEAD, (
        f"v3 context propagation costs {100 * (ratio - 1):.1f}% "
        f"(> {100 * MAX_OVERHEAD:.0f}% budget): {t_on:.4f}s vs {t_off:.4f}s"
    )


def test_null_tracer_short_circuits_profiling(benzil_data, monkeypatch):
    """Under the NullTracer no perf work function may even be *called*.

    The kernels guard metric computation with ``if tracer.profile:`` —
    the default NullTracer reports ``profile == False`` so the whole
    cost-model import and arithmetic is skipped.  Poisoning the work
    functions proves the guard is airtight: a run under the disabled
    tracer must not trip the poison.
    """
    from repro.util import perf as perf_mod

    def _poison(*a, **k):  # pragma: no cover - must never run
        raise AssertionError("perf work function called under NullTracer")

    for name in ("binmd_work", "mdnorm_work", "mdnorm_work_from_crossings",
                 "intersections_work", "prepass_work"):
        monkeypatch.setattr(perf_mod, name, _poison)

    assert not trace_mod.DISABLED.profile
    reduce_one = _workload(benzil_data)
    with trace_mod.use_tracer(trace_mod.DISABLED):
        reduce_one()  # must not raise


def test_disabled_tracer_is_process_default():
    """The overhead everyone else pays is the NullTracer, by default."""
    assert trace_mod.active_tracer() is trace_mod.DISABLED
    assert not trace_mod.active_tracer().enabled
