"""Ablations of the design choices DESIGN.md calls out.

1. In-kernel sort: the paper chose comb sort because GPU library sorts
   are not callable in-kernel; on this stand-in device the library sort
   *is* available, so the ablation quantifies the trade (and documents
   the platform inversion in EXPERIMENTS.md).
2. Histogram atomics: per-lane atomic adds vs buffered accumulation —
   the mechanism behind the paper's A100-vs-MI100 BinMD gap.
3. Region-of-interest search vs the baseline's linear search — the C++
   proxy's stated algorithmic improvement.
"""

import numpy as np
import pytest

from conftest import record_report
from repro.baseline.mantid_mdnorm import mantid_md_norm
from repro.bench.report import format_table
from repro.core.binmd import bin_events
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import load_md
from repro.core.mdnorm import mdnorm
from repro.nexus.corrections import read_flux_file, read_vanadium_file
from repro.proxy.cpp_proxy import cpp_md_norm

_ROWS = []


def _context(data):
    ws = load_md(data.md_paths[0])
    flux = read_flux_file(data.flux_path)
    van = read_vanadium_file(data.vanadium_path)
    traj_t = data.grid.transforms_for(
        ws.ub_matrix, data.point_group, goniometer=ws.goniometer
    )
    event_t = data.grid.transforms_for(ws.ub_matrix, data.point_group)
    return ws, flux, van, traj_t, event_t


@pytest.mark.parametrize("sort_impl", ["comb", "library"])
def test_ablation_inkernel_sort(benchmark, bixbyite_data, sort_impl):
    ws, flux, van, traj_t, _ = _context(bixbyite_data)

    def run():
        h = Hist3(bixbyite_data.grid)
        mdnorm(
            h, traj_t, bixbyite_data.instrument.directions, van.detector_weights,
            flux, ws.momentum_band, backend="vectorized", sort_impl=sort_impl,
        )
        return h

    h = benchmark.pedantic(run, rounds=2, iterations=1)
    _ROWS.append((f"MDNorm sort={sort_impl}", benchmark.stats.stats.mean, h.total()))


@pytest.mark.parametrize("scatter_impl", ["atomic", "buffered"])
def test_ablation_histogram_atomics(benchmark, bixbyite_data, scatter_impl):
    ws, _flux, _van, _traj, event_t = _context(bixbyite_data)

    def run():
        h = Hist3(bixbyite_data.grid)
        bin_events(
            h, ws.events, event_t, backend="vectorized",
            scatter_impl=scatter_impl,
        )
        return h

    h = benchmark.pedantic(run, rounds=2, iterations=1)
    _ROWS.append((f"BinMD scatter={scatter_impl}", benchmark.stats.stats.mean, h.total()))


@pytest.mark.parametrize("search", ["linear (baseline)", "ROI (cpp proxy)"])
def test_ablation_roi_vs_linear_search(benchmark, benzil_data, search):
    ws, flux, van, traj_t, _ = _context(benzil_data)

    def run():
        h = Hist3(benzil_data.grid)
        if search.startswith("linear"):
            mantid_md_norm(
                h, traj_t, benzil_data.instrument.directions,
                van.detector_weights, flux, ws.momentum_band,
            )
        else:
            cpp_md_norm(
                h, traj_t, benzil_data.instrument.directions,
                van.detector_weights, flux, ws.momentum_band, n_threads=1,
            )
        return h

    h = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append((f"MDNorm search={search}", benchmark.stats.stats.mean, h.total()))
    if len(_ROWS) >= 6:
        # totals within each ablation pair must agree (same physics)
        record_report(
            "ablation_design_choices",
            format_table(
                "Ablations: in-kernel sort, histogram atomics, ROI search",
                ["variant", "WCT (s)", "histogram total"],
                [(n, t, f"{tot:.6g}") for n, t, tot in _ROWS],
                col_width=26,
            ),
        )
