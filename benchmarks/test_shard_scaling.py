"""Intra-run shard scaling: the second level of the hierarchy, timed.

Algorithm 1 stops scaling at the run count; ISSUE 5's acceptance bar
is that fanning *inside* a run (detector shards for MDNorm, event
shards for BinMD, executed on the node's process pool) buys wall-clock
on a multi-core host:

* correctness (always): the sharded panel's histograms are
  bit-identical to the 1-shard baseline — sharding is an execution
  detail, never a numerics detail;
* performance (multi-core hosts only): the sharded panel is >= 1.5x
  faster than the strongest single-level CPU configuration (the
  ``threads`` back end).  Single-core hosts **skip** the speedup
  assertion (no win is physically possible there) but still check the
  numerics, so the smoke never rots.
"""

import os

import numpy as np
import pytest

from conftest import record_report
from repro.bench.harness import run_sharded_panel
from repro.bench.report import format_table
from repro.jacc.workers import GLOBAL_POOL

MIN_SPEEDUP = 1.5
N_SHARDS = 4
STAGES = ("UpdateEvents", "MDNorm", "BinMD", "Total")


@pytest.fixture(scope="module")
def panel(benzil_data):
    p = run_sharded_panel(benzil_data, n_shards=N_SHARDS)
    yield p
    GLOBAL_POOL.dispose()


def test_sharded_panel_bit_identical(panel):
    """The determinism half of the acceptance bar: every histogram of
    the sharded campaign equals the single-level one bit for bit."""
    base, shard = panel.baseline.result, panel.sharded.result
    assert np.array_equal(shard.cross_section.signal,
                          base.cross_section.signal, equal_nan=True)
    assert np.array_equal(shard.binmd.signal, base.binmd.signal)
    assert np.array_equal(shard.mdnorm.signal, base.mdnorm.signal)


def test_sharded_speedup(panel):
    """The performance half, reported always and asserted only where a
    win is physically possible (>= 2 cores)."""
    rows = [
        (
            stage,
            f"{panel.baseline.timings.seconds(stage):.4f}",
            f"{panel.sharded.timings.seconds(stage):.4f}",
            f"{panel.speedup(stage):.2f}x",
        )
        for stage in STAGES
    ]
    record_report(
        "shard_scaling",
        format_table(
            f"Intra-run shard scaling (Benzil panel, {panel.n_shards} shards"
            f" on {panel.workers} workers vs 1-shard threads)",
            ["stage", "1-shard (s)", f"x{panel.n_shards} shards (s)",
             "speedup"],
            rows,
        ),
    )
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"single-core host ({cores} CPU): shard fan-out cannot win; "
            "numerics verified, speedup not assertable"
        )
    assert panel.speedup("Total") >= MIN_SPEEDUP, (
        f"sharded panel only {panel.speedup('Total'):.2f}x vs 1-shard "
        f"threads (bar: {MIN_SPEEDUP}x on {cores} cores)"
    )
