"""Shared benchmark fixtures: workloads built once, tables collected.

Every benchmark renders a paper-style table; this conftest collects
them and prints the full set in the terminal summary, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
both pytest-benchmark's timing table and the paper-vs-measured blocks.
Rendered tables are also written to ``results/``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

import pytest

from repro.bench.workloads import benzil_corelli, bixbyite_topaz, build_workload

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"

_REPORTS: List[str] = []


def record_report(name: str, text: str) -> None:
    """Register a rendered table for the terminal summary + results/."""
    _REPORTS.append(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper-style reproduction tables")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


def _bench_scale(default: float) -> float:
    return float(os.environ.get("REPRO_SCALE", default))


@pytest.fixture(scope="session")
def benzil_data():
    """The Benzil/CORELLI workload at benchmark scale (cached on disk)."""
    spec = benzil_corelli(scale=_bench_scale(0.002))
    data = build_workload(spec)
    print(spec.describe())
    return data


@pytest.fixture(scope="session")
def bixbyite_data():
    """The Bixbyite/TOPAZ workload at benchmark scale (cached on disk)."""
    spec = bixbyite_topaz(scale=_bench_scale(0.002))
    data = build_workload(spec)
    print(spec.describe())
    return data


#: per-implementation file subsets; the slow baselines measure fewer
#: files and the harness extrapolates (reported in every table)
FILES = {
    "benzil": {"garnet": 2, "cpp": 8, "minivates": 8},
    "bixbyite": {"garnet": 1, "cpp": 3, "minivates": 3},
}
