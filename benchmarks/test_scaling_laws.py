"""Complexity scaling laws of the two kernels (paper Section III.B).

Listings 1-2 state the cost structure: BinMD iterates
(symmetry ops x events); MDNorm iterates (symmetry ops x detectors)
with a per-trajectory cost bounded by the grid's plane count.  This
bench sweeps each driver variable on the device back end, fits the
log-log slope, and checks the measured exponents are ~linear — the
property that lets the paper extrapolate from proxies to production
scale.
"""

import numpy as np

from conftest import record_report
from repro.bench.report import format_table
from repro.core.binmd import bin_events
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.mdnorm import mdnorm
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.events import EventTable

import time

RNG = np.random.default_rng(2024)
GRID = HKLGrid(basis=np.eye(3), minimum=(-4, -4, -1), maximum=(4, 4, 1),
               bins=(101, 101, 1))
FLUX = FluxSpectrum(momentum=np.linspace(1.0, 11.0, 64),
                    density=np.ones(64))
BAND = (2.0, 10.0)


def _ops(n):
    from repro.crystal.symmetry import point_group

    full = point_group("m-3m").operations.astype(np.float64)
    return np.ascontiguousarray(full[:n]) * 0.21  # scaled into the grid


def _events(n):
    return EventTable.from_columns(
        signal=RNG.random(n),
        q_sample=RNG.uniform(-4, 4, size=(n, 3)),
    )


def _detectors(n):
    d = RNG.normal(size=(n, 3))
    return d / np.linalg.norm(d, axis=1, keepdims=True)


def _median_time(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _slope(xs, ys):
    return float(np.polyfit(np.log(xs), np.log(ys), 1)[0])


def test_scaling_laws(benchmark):
    rows = []

    # BinMD vs events (ops fixed)
    sizes = [20_000, 60_000, 180_000]
    ops = _ops(6)
    times = []
    for n in sizes:
        events = _events(n)
        times.append(_median_time(
            lambda: bin_events(Hist3(GRID), events, ops, backend="vectorized")
        ))
    s_events = _slope(sizes, times)
    rows.append(("BinMD vs events", "1.0", f"{s_events:.2f}"))

    # BinMD vs symmetry ops (events fixed)
    events = _events(60_000)
    op_counts = [2, 6, 18]
    times = []
    for k in op_counts:
        ops_k = _ops(k)
        times.append(_median_time(
            lambda: bin_events(Hist3(GRID), events, ops_k, backend="vectorized")
        ))
    s_ops = _slope(op_counts, times)
    rows.append(("BinMD vs symmetry ops", "1.0", f"{s_ops:.2f}"))

    # MDNorm vs detectors (ops fixed)
    det_counts = [500, 1500, 4500]
    ops = _ops(6)
    times = []
    for n in det_counts:
        dets = _detectors(n)
        solid = np.ones(n)
        times.append(_median_time(
            lambda: mdnorm(Hist3(GRID), ops, dets, solid, FLUX, BAND,
                           backend="vectorized", sort_impl="library")
        ))
    s_dets = _slope(det_counts, times)
    rows.append(("MDNorm vs detectors", "1.0", f"{s_dets:.2f}"))

    # benchmark datapoint: the largest MDNorm case
    dets = _detectors(4500)
    benchmark.pedantic(
        lambda: mdnorm(Hist3(GRID), ops, dets, np.ones(4500), FLUX, BAND,
                       backend="vectorized", sort_impl="library"),
        rounds=1, iterations=1,
    )

    record_report(
        "scaling_laws",
        format_table(
            "Kernel complexity scaling (device back end, log-log slope)",
            ["sweep", "expected exponent", "measured"],
            rows,
            col_width=24,
        )
        + "\n(Listings 1-2: both kernels are linear in their loop "
        "variables; sub-linear measurements indicate fixed overheads "
        "still amortizing at the small end of the sweep)",
    )

    # linearity within generous tolerance (constant overheads pull the
    # slope down at small sizes; anything >= ~0.5 and <= ~1.4 is linear
    # behaviour on these ranges, and super-linear would be a regression)
    for name, slope in (("events", s_events), ("ops", s_ops), ("dets", s_dets)):
        assert 0.3 <= slope <= 1.5, f"BinMD/MDNorm scaling vs {name}: {slope}"
