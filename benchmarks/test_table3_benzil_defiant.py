"""Table III: Benzil proxies on a Defiant-like configuration.

Defiant = EPYC 7662 CPU rows (the C++ proxy on the threads engine) and
AMD MI100 GPU rows (MiniVATES on the MI100-class device profile:
in-kernel comb sort + per-lane atomics).  The JIT / no-JIT columns are
the same file measured with a cold and a warm kernel cache.
"""

from conftest import FILES, record_report
from repro.bench.harness import (
    MI100_PROFILE,
    assert_results_match,
    run_cpp_proxy,
    run_minivates,
    run_minivates_jit_split,
)
from repro.bench.paper import TABLE3_BENZIL_DEFIANT
from repro.bench.report import format_stage_table


def test_table3_benzil_defiant(benchmark, benzil_data):
    files = FILES["benzil"]
    cpp = run_cpp_proxy(benzil_data, files=files["cpp"])
    mv_total = run_minivates(
        benzil_data, files=files["minivates"], profile=MI100_PROFILE
    )
    assert_results_match(
        run_cpp_proxy(benzil_data, files=files["minivates"]), mv_total
    )

    def jit_split():
        return run_minivates_jit_split(benzil_data, profile=MI100_PROFILE)

    mv_jit, mv_warm = benchmark.pedantic(jit_split, rounds=1, iterations=1)

    table = format_stage_table(
        "Table III analogue: Benzil (CORELLI) on Defiant-like engines "
        "(CPU threads vs MI100-class device)",
        cpp,
        mv_jit,
        mv_warm,
        TABLE3_BENZIL_DEFIANT,
        mv_total=mv_total,
    )
    record_report("table3_benzil_defiant", table)

    # the paper's shape: the JIT run costs at least the warm run
    assert mv_jit.per_file("MDNorm + BinMD") >= 0.9 * mv_warm.per_file("MDNorm + BinMD")
    assert mv_warm.per_file("MDNorm") > 0
