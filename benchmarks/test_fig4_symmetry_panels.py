"""Fig. 4: the four cross-section panels of the ensemble measurement.

single run -> single run + symmetry -> all runs -> all runs + symmetry.
The paper shows reciprocal-space coverage filling in panel by panel; we
reproduce the panels on the Bixbyite workload (as in the paper) and
report coverage and signal statistics per panel.  ``examples/
bixbyite_topaz.py`` renders the same panels as ASCII maps.
"""

from conftest import record_report
from repro.bench.report import format_table
from repro.core.cross_section import compute_cross_section
from repro.core.md_event_workspace import load_md
from repro.crystal.symmetry import point_group
from repro.nexus.corrections import read_flux_file, read_vanadium_file


def _panel(data, n_runs, pg_symbol, flux, van):
    return compute_cross_section(
        load_run=lambda i: load_md(data.md_paths[i]),
        n_runs=n_runs,
        grid=data.grid,
        point_group=point_group(pg_symbol),
        flux=flux,
        det_directions=data.instrument.directions,
        solid_angles=van.detector_weights,
        backend="vectorized",
    )


def test_fig4_symmetry_panels(benchmark, bixbyite_data):
    data = bixbyite_data
    flux = read_flux_file(data.flux_path)
    van = read_vanadium_file(data.vanadium_path)
    n_all = min(6, len(data.md_paths))

    def run_panels():
        return {
            "single run": _panel(data, 1, "1", flux, van),
            "single + symmetry": _panel(data, 1, "m-3", flux, van),
            f"{n_all} runs": _panel(data, n_all, "1", flux, van),
            f"{n_all} runs + symmetry": _panel(data, n_all, "m-3", flux, van),
        }

    panels = benchmark.pedantic(run_panels, rounds=1, iterations=1)

    rows = []
    for name, res in panels.items():
        rows.append(
            (
                name,
                f"{res.binmd.nonzero_fraction():.1%}",
                f"{res.mdnorm.nonzero_fraction():.1%}",
                f"{res.binmd.total():.4g}",
            )
        )
    record_report(
        "fig4_symmetry_panels",
        format_table(
            "Fig. 4 analogue: Bixbyite cross-section panels "
            "(paper: coverage fills in with symmetry and runs)",
            ["panel", "BinMD coverage", "MDNorm coverage", "BinMD signal"],
            rows,
            col_width=22,
        ),
    )

    cov = {name: res.binmd.nonzero_fraction() for name, res in panels.items()}
    names = list(cov)
    # the paper's panel ordering: each step fills more of the plane
    assert cov[names[1]] > cov[names[0]]  # symmetry helps a single run
    assert cov[names[2]] > cov[names[0]]  # more runs help
    assert cov[names[3]] == max(cov.values())  # full ensemble wins
