"""Fused-kernel speedup gate on the Benzil/CORELLI workload (ISSUE 10).

The tentpole's acceptance bar: the plan-specialized fused MDNorm kernel
must run the single-shard normalization at least **2x** faster than the
vectorized back end on the Benzil smoke workload, *without changing a
bit* of the histogram.

Methodology — the two costs the fused tier separates:

* **compile** (once per plan): source generation + ``compile``/``exec``
  on the first launch, re-payable only via the artifact store.  Each
  specialization lands in ``GLOBAL_JIT.compile_events`` with variant
  ``codegen:<digest>`` / ``load:<digest>``, which is how this test (and
  EXPERIMENTS.md) separates it from execution;
* **execution** (every launch): timed here as the median of direct
  single-shard ``mdnorm`` calls with a precomputed intersection-width
  bound and the geometry cache disabled, so both back ends run exactly
  one kernel launch per call — the fused win (no comb-sort pass, no
  materialized coordinate array, no per-tile bin-index broadcasting,
  thread-local reused buffers) against shared costs (crossing fill,
  flux interpolation, scatter) is what the ratio measures.

The workflow-level number (wrapper pre-pass + geometry digesting
diluting the kernel win) is tracked separately by
``BENCH_benzil_fused.json`` behind the ``repro perf`` regression gate.
"""

import time

import numpy as np

from conftest import record_report
from repro.bench.report import format_table
from repro.core import geom_cache as gc
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import load_md
from repro.core.mdnorm import max_intersections, mdnorm
from repro.jacc.fused import FUSED
from repro.jacc.jit import GLOBAL_JIT
from repro.nexus.corrections import read_flux_file, read_vanadium_file

#: acceptance floor: fused >= 2x vectorized on the single-shard kernel
MIN_FUSED_SPEEDUP = 2.0

REPEATS = 5


def _median_kernel_seconds(data, ws, transforms, flux, sa, width, backend):
    """Median wall-clock of one full single-shard mdnorm launch."""
    samples = []
    hist = None
    for _ in range(REPEATS):
        hist = Hist3(data.grid, track_errors=True)
        t0 = time.perf_counter()
        mdnorm(hist, transforms, data.instrument.directions, sa, flux,
               ws.momentum_band, charge=ws.proton_charge, backend=backend,
               width=width, cache=gc.DISABLED)
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples)), hist


def test_fused_speedup_benzil(benzil_data):
    data = benzil_data
    ws = load_md(data.md_paths[0])
    transforms = data.grid.transforms_for(
        ws.ub_matrix, data.point_group, goniometer=ws.goniometer
    )
    flux = read_flux_file(data.flux_path)
    sa = read_vanadium_file(data.vanadium_path).detector_weights
    width = max_intersections(
        data.grid, transforms, data.instrument.directions, ws.momentum_band,
        backend="vectorized",
    )

    # measure compile cold: drop every in-process specialization
    GLOBAL_JIT.clear()
    FUSED.clear()

    # warm-up launch per back end — the fused one pays codegen+compile
    # here, so the timed loop below measures pure execution
    warm = {}
    for backend in ("vectorized", "fused"):
        h = Hist3(data.grid, track_errors=True)
        t0 = time.perf_counter()
        mdnorm(h, transforms, data.instrument.directions, sa, flux,
               ws.momentum_band, charge=ws.proton_charge, backend=backend,
               width=width, cache=gc.DISABLED)
        warm[backend] = (time.perf_counter() - t0, h)

    # -- compile/execute separation via the JIT event log --------------
    fused_compiles = [e for e in GLOBAL_JIT.compile_events
                      if e.backend == "fused" and ":" in e.variant]
    assert len(fused_compiles) == 1, fused_compiles  # one plan, one kernel
    compile_s = sum(e.seconds for e in fused_compiles)
    assert compile_s > 0.0

    times = {}
    hists = {}
    for backend in ("vectorized", "fused"):
        times[backend], hists[backend] = _median_kernel_seconds(
            data, ws, transforms, flux, sa, width, backend
        )

    # no further specialization happened inside the timed loop
    still = [e for e in GLOBAL_JIT.compile_events
             if e.backend == "fused" and ":" in e.variant]
    assert still == fused_compiles

    # -- correctness before speed: not a single bit may differ ---------
    assert hists["vectorized"].signal.sum() > 0
    assert np.array_equal(hists["fused"].signal, hists["vectorized"].signal)
    assert np.array_equal(hists["fused"].error_sq,
                          hists["vectorized"].error_sq)
    assert np.array_equal(warm["fused"][1].signal, warm["vectorized"][1].signal)

    speedup = times["vectorized"] / times["fused"]
    rows = [
        ("vectorized", f"{times['vectorized'] * 1e3:.1f}", "-", "1.00x"),
        ("fused", f"{times['fused'] * 1e3:.1f}",
         f"{compile_s * 1e3:.1f}", f"{speedup:.2f}x"),
        ("fused cold (compile+exec)", f"{warm['fused'][0] * 1e3:.1f}",
         "included", "-"),
    ]
    record_report(
        "fused_speedup",
        format_table(
            "Fused plan-specialized MDNorm vs vectorized "
            f"(Benzil/CORELLI, single shard, {transforms.shape[0]} ops, "
            f"{data.instrument.directions.shape[0]} detectors, "
            f"median of {REPEATS})",
            ["back end", "exec (ms)", "compile (ms)", "speedup"],
            rows,
        ),
    )

    assert speedup >= MIN_FUSED_SPEEDUP, (
        f"fused MDNorm only {speedup:.2f}x faster than vectorized "
        f"(need >= {MIN_FUSED_SPEEDUP}x); "
        f"vectorized={times['vectorized'] * 1e3:.1f}ms "
        f"fused={times['fused'] * 1e3:.1f}ms"
    )
