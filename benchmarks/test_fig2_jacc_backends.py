"""Fig. 2: the JACC portability architecture, measured.

The figure's claim is architectural: one kernel source, many back ends.
The measurable reproduction: the BinMD and MDNorm kernels run unchanged
on every registered back end, produce identical histograms, and the
per-back-end wall-clock quantifies what each execution model costs on
this host.
"""

import numpy as np
import pytest

from conftest import record_report
from repro.bench.report import format_table
from repro.core.binmd import bin_events
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import load_md
from repro.core.mdnorm import mdnorm
from repro.jacc import available_backends, get_backend

_RESULTS = {}
_TIMES = {}


@pytest.mark.parametrize("backend", ["serial", "threads", "vectorized"])
def test_fig2_backend_portability(benchmark, benzil_data, backend):
    ws = load_md(benzil_data.md_paths[0])
    grid = benzil_data.grid
    pg = benzil_data.point_group
    event_t = grid.transforms_for(ws.ub_matrix, pg)
    traj_t = grid.transforms_for(ws.ub_matrix, pg, goniometer=ws.goniometer)
    from repro.nexus.corrections import read_flux_file, read_vanadium_file

    flux = read_flux_file(benzil_data.flux_path)
    van = read_vanadium_file(benzil_data.vanadium_path)

    def reduce_one():
        binmd_h = Hist3(grid)
        bin_events(binmd_h, ws.events, event_t, backend=backend)
        norm_h = Hist3(grid)
        mdnorm(
            norm_h, traj_t, benzil_data.instrument.directions,
            van.detector_weights, flux, ws.momentum_band, backend=backend,
        )
        return binmd_h, norm_h

    binmd_h, norm_h = benchmark.pedantic(reduce_one, rounds=1, iterations=1)
    _RESULTS[backend] = (binmd_h.signal, norm_h.signal)
    _TIMES[backend] = benchmark.stats.stats.mean

    # the portability contract: identical results on every back end
    if "serial" in _RESULTS and backend != "serial":
        ref_b, ref_n = _RESULTS["serial"]
        assert np.allclose(binmd_h.signal, ref_b)
        assert np.allclose(norm_h.signal, ref_n, rtol=1e-9)

    if len(_TIMES) == 3:
        kinds = {b: get_backend(b).device_kind for b in _TIMES}
        rows = [
            (b, kinds[b], f"{_TIMES[b]:.4f}", f"{_TIMES['serial'] / _TIMES[b]:.1f}x")
            for b in ("serial", "threads", "vectorized")
        ]
        record_report(
            "fig2_jacc_backends",
            format_table(
                "Fig. 2 analogue: one kernel source on every JACC back end "
                "(one Benzil file, MDNorm + BinMD)",
                ["back end", "kind", "WCT (s)", "vs serial"],
                rows,
            )
            + f"\nregistered back ends: {available_backends()}",
        )
        # the device back end must beat the interpreted reference
        assert _TIMES["vectorized"] < _TIMES["serial"]
