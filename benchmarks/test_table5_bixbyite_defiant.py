"""Table V: Bixbyite proxies on a Defiant-like configuration.

The heavier use case: 24 symmetry operations, 7x the events, more
detectors, run under MPI (4 ranks, like the paper's ``srun -n 4``).
CPU rows from the C++ proxy, device rows from the MI100-class profile.
"""

import numpy as np

from conftest import FILES, record_report
from repro.bench.harness import (
    MI100_PROFILE,
    run_cpp_proxy,
    run_minivates,
    run_minivates_jit_split,
)
from repro.bench.paper import TABLE5_BIXBYITE_DEFIANT
from repro.bench.report import format_stage_table
from repro.mpi import run_world
from repro.proxy.cpp_proxy import CppProxyConfig, CppProxyWorkflow


def test_table5_bixbyite_defiant(benchmark, bixbyite_data):
    files = FILES["bixbyite"]
    cpp = run_cpp_proxy(bixbyite_data, files=files["cpp"])
    mv_total = run_minivates(
        bixbyite_data, files=files["minivates"], profile=MI100_PROFILE
    )

    def jit_split():
        return run_minivates_jit_split(bixbyite_data, profile=MI100_PROFILE)

    mv_jit, mv_warm = benchmark.pedantic(jit_split, rounds=1, iterations=1)

    table = format_stage_table(
        "Table V analogue: Bixbyite (TOPAZ) on Defiant-like engines "
        "(CPU threads vs MI100-class device)",
        cpp,
        mv_jit,
        mv_warm,
        TABLE5_BIXBYITE_DEFIANT,
        mv_total=mv_total,
    )
    record_report("table5_bixbyite_defiant", table)

    # the paper runs the C++ proxy under MPI; the distributed result
    # must match the single-rank proxy
    cfg = CppProxyConfig(
        md_paths=bixbyite_data.md_paths[: files["cpp"]],
        flux_path=bixbyite_data.flux_path,
        vanadium_path=bixbyite_data.vanadium_path,
        instrument=bixbyite_data.instrument,
        grid=bixbyite_data.grid,
        point_group=bixbyite_data.point_group,
        n_threads=1,
    )

    def spmd(comm):
        res = CppProxyWorkflow(cfg).run(comm=comm)
        return res.binmd.signal if res.is_root else None

    outs = run_world(4, spmd)
    assert np.allclose(outs[0], cpp.result.binmd.signal)

    # JIT semantics, asserted deterministically (the compile cost is
    # sub-millisecond and drowns in single-core timing noise on heavy
    # files): the cold run performed kernel specializations, and its
    # wall clock is not anomalously below the warm run
    assert mv_jit.extras["jit_compile_events"] > 0
    assert mv_jit.extras["jit_compile_seconds"] > 0
    assert mv_jit.per_file("MDNorm + BinMD") >= 0.7 * mv_warm.per_file("MDNorm + BinMD")
