"""Table I: systems overview — paper hardware vs this host's engines.

The paper's table is descriptive; the reproduction prints the published
systems beside the actual benchmark host and the engine mapping used
for every other table, and benchmarks this host's file-load bandwidth
(the quantity behind the UpdateEvents rows).
"""

import numpy as np

from conftest import record_report
from repro.bench.report import format_table
from repro.bench.systems import current_host, systems_rows
from repro.core.md_event_workspace import load_md


def test_table1_systems_overview(benchmark, benzil_data):
    host = current_host()

    rows = [(name, hw, mem, mapping) for name, hw, mem, mapping in systems_rows()]
    rows.append(
        (
            "this host",
            f"{host.machine}, {host.cpu_count} cores, Python {host.python}",
            f"{host.memory_gb:.0f} GB",
            "all engines above run here (DESIGN.md section 2)",
        )
    )
    table = format_table(
        "Table I analogue: systems overview and engine mapping",
        ["system", "hardware", "memory", "reproduction engine"],
        rows,
        col_width=24,
    )

    # UpdateEvents bandwidth of this host: repeated SaveMD loads
    path = benzil_data.md_paths[0]
    ws = benchmark(load_md, path)
    nbytes = ws.events.data.nbytes
    bw = nbytes / max(benchmark.stats.stats.mean, 1e-12) / 1e6
    table += (
        f"\nhost UpdateEvents bandwidth: {bw:.0f} MB/s "
        f"({nbytes / 1e6:.2f} MB event table)"
    )
    record_report("table1_systems", table)
    assert ws.n_events > 0
