"""Extensions bench: dynamic rebinning and 3-D volumes.

Quantifies the two capabilities the paper says acceleration unlocks
("3D volumes, real-time" and "dynamically modifying histogram binning
parameters while minimizing the need for data movement"):

* rebinning from resident MDEvents costs zero UpdateEvents I/O, and
  three different grids cost roughly one reduction each;
* a full 3-D volume reduction vs the production 2-D slice, on the
  same events — the cost of the richer output.
"""

import numpy as np

from conftest import record_report
from repro.bench.report import format_table
from repro.core.grid import HKLGrid
from repro.core.rebin import InMemoryReducer
from repro.nexus.corrections import read_flux_file, read_vanadium_file

N_FILES = 4


def _reducer(data):
    return InMemoryReducer(
        md_paths=data.md_paths[:N_FILES],
        flux=read_flux_file(data.flux_path),
        instrument=data.instrument,
        solid_angles=read_vanadium_file(data.vanadium_path).detector_weights,
        point_group=data.point_group,
        backend="vectorized",
    )


def test_extension_dynamic_rebinning(benchmark, benzil_data):
    reducer = _reducer(benzil_data)
    grids = {
        "coarse 51x51x1": HKLGrid.benzil_grid(bins=(51, 51, 1)),
        "fine 301x301x1": HKLGrid.benzil_grid(bins=(301, 301, 1)),
        "rotated basis 101x101x1": HKLGrid(
            basis=np.eye(3), minimum=(-6, -6, -0.5), maximum=(6, 6, 0.5),
            bins=(101, 101, 1), names=("[H,0,0]", "[0,K,0]", "[0,0,L]"),
        ),
    }

    def rebin_all():
        return {name: reducer.reduce(grid) for name, grid in grids.items()}

    results = benchmark.pedantic(rebin_all, rounds=1, iterations=1)

    rows = []
    for name, res in results.items():
        rows.append(
            (
                name,
                f"{res.timings.seconds('MDNorm + BinMD'):.4f}",
                f"{res.timings.seconds('UpdateEvents'):.4f}",
                f"{res.binmd.total():.5g}",
            )
        )
    record_report(
        "extension_rebinning",
        format_table(
            "Extension: dynamic rebinning from resident MDEvents "
            f"({N_FILES} Benzil files loaded once)",
            ["output grid", "reduce WCT (s)", "UpdateEvents (s)", "BinMD total"],
            rows,
            col_width=24,
        )
        + "\n(UpdateEvents is zero by construction: no file is re-read)",
    )
    for res in results.values():
        assert res.timings.seconds("UpdateEvents") == 0.0


def test_extension_3d_volume(benchmark, benzil_data):
    reducer = _reducer(benzil_data)
    slice_grid = HKLGrid(
        basis=np.eye(3), minimum=(-6, -6, -0.5), maximum=(6, 6, 0.5),
        bins=(101, 101, 1),
    )

    def volume():
        return reducer.reduce_volume(
            bins=(101, 101, 24), minimum=(-6, -6, -6), maximum=(6, 6, 6)
        )

    vol = benchmark.pedantic(volume, rounds=1, iterations=1)
    sl = reducer.reduce(slice_grid)
    record_report(
        "extension_3d_volume",
        format_table(
            "Extension: 2-D slice vs full 3-D volume (same resident events)",
            ["output", "bins", "MDNorm+BinMD (s)", "signal captured"],
            [
                ("2-D slice", "101x101x1", f"{sl.timings.seconds('MDNorm + BinMD'):.4f}",
                 f"{sl.binmd.total():.5g}"),
                ("3-D volume", "101x101x24", f"{vol.timings.seconds('MDNorm + BinMD'):.4f}",
                 f"{vol.binmd.total():.5g}"),
            ],
            col_width=20,
        ),
    )
    # the volume sees all the signal the slice sees, and more
    assert vol.binmd.total() > sl.binmd.total()
