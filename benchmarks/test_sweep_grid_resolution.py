"""Sweep: MDNorm cost vs output-grid resolution.

The baseline's linear searches scale with the edge count while the
proxies' ROI strategy scales with the *crossing* count; both proxies'
per-trajectory work grows with bins.  This sweep measures the device
MDNorm against the grid resolution (the lever between the paper's
2-D slicing choice and the 3-D volume future work) and reports the
scaling exponent.
"""

import numpy as np

from conftest import record_report
from repro.bench.report import format_table
from repro.bench.sweep import run_sweep
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import load_md
from repro.core.mdnorm import mdnorm
from repro.nexus.corrections import read_flux_file, read_vanadium_file

BINS = [51, 101, 201, 401]


def test_sweep_mdnorm_vs_grid_bins(benchmark, benzil_data):
    data = benzil_data
    ws = load_md(data.md_paths[0])
    flux = read_flux_file(data.flux_path)
    van = read_vanadium_file(data.vanadium_path)

    def run_one(bins):
        grid = HKLGrid.benzil_grid(bins=(int(bins), int(bins), 1))
        traj = grid.transforms_for(ws.ub_matrix, data.point_group,
                                   goniometer=ws.goniometer)
        h = Hist3(grid)
        mdnorm(h, traj, data.instrument.directions, van.detector_weights,
               flux, ws.momentum_band, backend="vectorized",
               sort_impl="library")
        return {"norm_total": h.total(), "coverage": h.nonzero_fraction()}

    sweep = run_sweep("mdnorm-vs-bins", "bins/dim", BINS, run_one, repeats=2)
    benchmark.pedantic(lambda: run_one(BINS[-1]), rounds=1, iterations=1)

    exponent = sweep.scaling_exponent()
    record_report(
        "sweep_grid_resolution",
        format_table(
            "Sweep: device MDNorm vs grid resolution (one Benzil file)",
            ["bins/dim", "WCT (s)"] + sweep.observable_names(),
            sweep.rows(),
        )
        + f"\nlog-log scaling exponent: {exponent:.2f} "
        "(crossings grow ~linearly with bins; the deposited total is "
        "resolution-invariant)",
    )

    # physics: total normalization is independent of binning
    totals = [p.observables["norm_total"] for p in sweep.points]
    assert np.allclose(totals, totals[0], rtol=1e-6)
    # cost grows with resolution, but stays at most ~linear in bins/dim
    assert sweep.seconds[-1] > sweep.seconds[0]
    assert exponent < 1.6
