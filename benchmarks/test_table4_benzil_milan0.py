"""Table IV: Benzil proxies on a Milan0-like configuration.

Milan0 = EPYC 7513 CPU rows and NVIDIA A100 GPU rows (MiniVATES on the
A100-class device profile: library sort + buffered atomics — the
efficient-atomics behaviour the paper measured on the A100).
"""

from conftest import FILES, record_report
from repro.bench.harness import (
    A100_PROFILE,
    MI100_PROFILE,
    run_cpp_proxy,
    run_minivates,
    run_minivates_jit_split,
)
from repro.bench.paper import TABLE4_BENZIL_MILAN0
from repro.bench.report import comparison_block, format_stage_table


def test_table4_benzil_milan0(benchmark, benzil_data):
    files = FILES["benzil"]
    cpp = run_cpp_proxy(benzil_data, files=files["cpp"])
    mv_total = run_minivates(
        benzil_data, files=files["minivates"], profile=A100_PROFILE
    )

    def jit_split():
        return run_minivates_jit_split(benzil_data, profile=A100_PROFILE)

    mv_jit, mv_warm = benchmark.pedantic(jit_split, rounds=1, iterations=1)

    table = format_stage_table(
        "Table IV analogue: Benzil (CORELLI) on Milan0-like engines "
        "(CPU threads vs A100-class device)",
        cpp,
        mv_jit,
        mv_warm,
        TABLE4_BENZIL_MILAN0,
        mv_total=mv_total,
    )

    # A100-class vs MI100-class contrast on the same (warm, same-file) basis
    _, mi_warm = run_minivates_jit_split(benzil_data, profile=MI100_PROFILE)
    table += "\n" + comparison_block(
        "A100-class vs MI100-class (Benzil, warm same-file ratios)",
        {
            "MDNorm MI100/A100": (
                3.3,
                mi_warm.per_file("MDNorm") / max(mv_warm.per_file("MDNorm"), 1e-12),
            ),
            "BinMD MI100/A100": (
                172.0,
                mi_warm.per_file("BinMD") / max(mv_warm.per_file("BinMD"), 1e-12),
            ),
        },
    )
    record_report("table4_benzil_milan0", table)

    # JIT semantics, asserted deterministically (the compile cost is
    # sub-millisecond and drowns in single-core timing noise on heavy
    # files): the cold run performed kernel specializations, and its
    # wall clock is not anomalously below the warm run
    assert mv_jit.extras["jit_compile_events"] > 0
    assert mv_jit.extras["jit_compile_seconds"] > 0
    assert mv_jit.per_file("MDNorm + BinMD") >= 0.7 * mv_warm.per_file("MDNorm + BinMD")
    # the A100-class profile never loses to MI100-class on the same file
    assert mv_warm.per_file("MDNorm + BinMD") <= mi_warm.per_file(
        "MDNorm + BinMD"
    ) * 1.25
