"""Table II: use-case characteristics and the Garnet/Mantid baseline WCT.

Reproduces both columns (Benzil/CORELLI, Bixbyite/TOPAZ): the workload
characteristics at paper scale and at this run's scale, plus the
measured production-baseline wall-clock (extrapolated to the full file
count where the baseline was measured on a subset — marked with *).
"""

import pytest

from conftest import FILES, record_report
from repro.bench.harness import run_garnet
from repro.bench.paper import TABLE2
from repro.bench.report import format_table


@pytest.fixture(scope="module")
def garnet_runs(benzil_data, bixbyite_data):
    return {
        "benzil_corelli": run_garnet(benzil_data, files=FILES["benzil"]["garnet"]),
        "bixbyite_topaz": run_garnet(bixbyite_data, files=FILES["bixbyite"]["garnet"]),
    }


def test_table2_use_case_characteristics(benchmark, benzil_data, bixbyite_data,
                                         garnet_runs):
    datasets = {"benzil_corelli": benzil_data, "bixbyite_topaz": bixbyite_data}
    headers = ["", "CORELLI Benzil", "TOPAZ Bixbyite"]
    rows = []

    def per_case(fn):
        return [fn("benzil_corelli"), fn("bixbyite_topaz")]

    rows.append(["files (paper)"] + per_case(lambda k: TABLE2[k].files))
    rows.append(["files (here)"] + per_case(lambda k: datasets[k].spec.n_files))
    rows.append(["symmetry ops"] + per_case(lambda k: TABLE2[k].symmetry_ops))
    rows.append(["events (paper)"] + per_case(lambda k: f"{TABLE2[k].events:.1e}"))
    rows.append(
        ["events (here)"] + per_case(lambda k: f"{datasets[k].spec.n_events_total:.1e}")
    )
    rows.append(["detectors (paper)"] + per_case(lambda k: f"{TABLE2[k].detectors:.1e}"))
    rows.append(
        ["detectors (here)"] + per_case(lambda k: datasets[k].spec.n_detectors)
    )
    rows.append(["bins (paper)"] + per_case(lambda k: str(TABLE2[k].bins)))
    rows.append(["bins (here)"] + per_case(lambda k: str(datasets[k].spec.grid_bins)))
    rows.append(["projections"] + per_case(lambda k: TABLE2[k].projections))
    rows.append(
        ["Garnet MDNorm+BinMD (paper s)"]
        + per_case(lambda k: TABLE2[k].garnet_mdnorm_binmd_s)
    )
    rows.append(
        ["Garnet MDNorm+BinMD (here s)*"]
        + per_case(
            lambda k: garnet_runs[k].per_file("MDNorm + BinMD")
            * garnet_runs[k].files_full
        )
    )
    rows.append(
        ["Garnet total (paper s)"] + per_case(lambda k: TABLE2[k].garnet_total_s)
    )
    rows.append(
        ["Garnet total (here s)*"]
        + per_case(lambda k: garnet_runs[k].total_extrapolated)
    )
    table = format_table(
        "Table II analogue: use-case characteristics + Garnet baseline WCT",
        headers,
        rows,
        col_width=22,
    )
    table += (
        "\n(* extrapolated from "
        f"{garnet_runs['benzil_corelli'].files_measured} benzil / "
        f"{garnet_runs['bixbyite_topaz'].files_measured} bixbyite measured files "
        "to the full file count)"
    )
    record_report("table2_characteristics", table)

    # the paper's shape: bixbyite is the heavier reduction
    bz = garnet_runs["benzil_corelli"]
    bx = garnet_runs["bixbyite_topaz"]
    assert bx.per_file("MDNorm + BinMD") > bz.per_file("MDNorm + BinMD")
    assert bx.total_extrapolated > bz.total_extrapolated

    # pytest-benchmark datapoint: one baseline file reduction
    benchmark.pedantic(
        lambda: run_garnet(benzil_data, files=1), rounds=1, iterations=1
    )
