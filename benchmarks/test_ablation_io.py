"""I/O ablation: SaveMD storage format vs UpdateEvents cost.

The paper's Bixbyite runs are dominated by loading 206 GB of event
files, and it notes "substantial optimization opportunities might exist
on certain network file systems."  This bench quantifies one such
opportunity in this stack: raw vs zlib-compressed SaveMD payloads —
bytes on disk vs load (UpdateEvents) wall-clock.
"""

import os
import tempfile
import time

from conftest import record_report
from repro.bench.report import format_table
from repro.core.md_event_workspace import load_md, save_md


def test_ablation_savemd_compression(benchmark, bixbyite_data):
    ws = load_md(bixbyite_data.md_paths[0])
    tmp = tempfile.mkdtemp(prefix="repro_io_")
    rows = []
    loaded = {}
    for label, compression in (("raw", None), ("zlib", "zlib")):
        path = os.path.join(tmp, f"events_{label}.md.h5")
        t0 = time.perf_counter()
        save_md(path, ws, compression=compression)
        save_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        back = load_md(path)
        load_s = time.perf_counter() - t0
        loaded[label] = back
        rows.append(
            (
                label,
                f"{os.path.getsize(path) / 1e6:.2f} MB",
                f"{save_s:.4f}",
                f"{load_s:.4f}",
            )
        )

    # benchmark datapoint: warm repeated loads of the raw layout
    benchmark(load_md, os.path.join(tmp, "events_raw.md.h5"))

    record_report(
        "ablation_io_compression",
        format_table(
            "I/O ablation: SaveMD raw vs zlib (one Bixbyite file, "
            f"{ws.n_events} events)",
            ["format", "size", "save (s)", "UpdateEvents (s)"],
            rows,
        ),
    )

    import numpy as np

    assert np.array_equal(loaded["raw"].events.data, loaded["zlib"].events.data)
    raw_size = os.path.getsize(os.path.join(tmp, "events_raw.md.h5"))
    zlib_size = os.path.getsize(os.path.join(tmp, "events_zlib.md.h5"))
    assert zlib_size < raw_size  # event tables always deflate somewhat
