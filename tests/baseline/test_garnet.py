"""Unit tests for the Garnet multiprocess driver."""

import numpy as np
import pytest

from repro.baseline.garnet import GarnetConfig, GarnetWorkflow
from repro.util.validation import ValidationError


def _config(exp, **over):
    kwargs = dict(
        nexus_paths=exp.nexus_paths,
        instrument=exp.instrument,
        grid=exp.grid,
        point_group_symbol="321",
        flux=exp.flux,
        solid_angles=exp.vanadium.detector_weights,
        n_workers=1,
    )
    kwargs.update(over)
    return GarnetConfig(**kwargs)


class TestGarnet:
    def test_runs_and_produces_cross_section(self, tiny_experiment):
        res = GarnetWorkflow(_config(tiny_experiment)).run()
        assert res.backend == "garnet-multiprocess"
        assert res.n_runs == 3
        assert res.binmd.total() > 0
        assert res.mdnorm.total() > 0
        finite = ~np.isnan(res.cross_section.signal)
        assert finite.any()

    def test_stage_timings_accumulated_per_run(self, tiny_experiment):
        res = GarnetWorkflow(_config(tiny_experiment)).run()
        for stage in ("UpdateEvents", "MDNorm", "BinMD"):
            assert res.timings.timer(stage).ncalls == 3
            assert res.timings.seconds(stage) > 0
        assert res.timings.seconds("Total") >= res.timings.seconds("MDNorm + BinMD")

    def test_multiprocess_equals_single_process(self, tiny_experiment):
        sp = GarnetWorkflow(_config(tiny_experiment, n_workers=1)).run()
        mp = GarnetWorkflow(_config(tiny_experiment, n_workers=2)).run()
        assert np.allclose(sp.binmd.signal, mp.binmd.signal)
        assert np.allclose(sp.mdnorm.signal, mp.mdnorm.signal)

    def test_config_validation(self, tiny_experiment):
        with pytest.raises(ValidationError):
            _config(tiny_experiment, nexus_paths=[])
        with pytest.raises(ValidationError):
            _config(tiny_experiment, n_workers=0)
        with pytest.raises(ValidationError):
            _config(tiny_experiment, point_group_symbol="nonsense")

    def test_subset_of_runs(self, tiny_experiment):
        one = GarnetWorkflow(
            _config(tiny_experiment, nexus_paths=tiny_experiment.nexus_paths[:1])
        ).run()
        full = GarnetWorkflow(_config(tiny_experiment)).run()
        assert one.binmd.total() < full.binmd.total()
