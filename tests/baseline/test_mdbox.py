"""Unit tests for the Mantid-style MDBox hierarchy."""

import numpy as np
import pytest

from repro.baseline.mdbox import MDBox, MDBoxController, build_workspace_box
from repro.util.validation import ValidationError


def _box(threshold=4, split_into=2, max_depth=3):
    ctl = MDBoxController(
        split_threshold=threshold, split_into=split_into, max_depth=max_depth
    )
    return MDBox(ctl, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))


def _event(c0, c1, c2, sig=1.0):
    return (sig, sig, c0, c1, c2)


class TestInsertion:
    def test_leaf_accumulates(self):
        box = _box()
        assert box.add_event(_event(0.5, 0.5, 0.5))
        assert box.n_events == 1
        assert box.is_leaf

    def test_outside_rejected(self):
        box = _box()
        assert not box.add_event(_event(1.5, 0.5, 0.5))
        assert not box.add_event(_event(0.5, -0.1, 0.5))
        assert box.n_events == 0

    def test_upper_boundary_exclusive(self):
        box = _box()
        assert not box.add_event(_event(1.0, 0.5, 0.5))
        assert box.add_event(_event(0.0, 0.0, 0.0))

    def test_split_at_threshold(self):
        rng = np.random.default_rng(0)
        box = _box(threshold=4)
        for _ in range(5):
            box.add_event(_event(*rng.random(3)))
        assert not box.is_leaf
        assert box.n_events == 5
        assert len(box.children) == 8  # 2^3

    def test_events_redistributed_on_split(self):
        rng = np.random.default_rng(1)
        box = _box(threshold=4)
        events = [_event(*rng.random(3), sig=i + 1.0) for i in range(10)]
        for ev in events:
            box.add_event(ev)
        collected = sorted(ev[0] for ev in box.iter_events())
        assert collected == [float(i + 1) for i in range(10)]

    def test_max_depth_caps_splitting(self):
        box = _box(threshold=1, max_depth=1)
        # every event identical -> same child; depth cap prevents recursion
        for _ in range(20):
            box.add_event(_event(0.1, 0.1, 0.1))
        assert box.max_depth_used() <= 1
        assert box.n_events == 20


class TestTraversal:
    def test_leaves_partition_events(self):
        rng = np.random.default_rng(2)
        box = _box(threshold=8)
        for _ in range(100):
            box.add_event(_event(*rng.random(3)))
        total = sum(len(leaf.events) for leaf in box.leaves())
        assert total == 100

    def test_total_signal(self):
        box = _box()
        box.add_event(_event(0.2, 0.2, 0.2, sig=2.0))
        box.add_event(_event(0.8, 0.8, 0.8, sig=3.0))
        assert box.total_signal() == 5.0

    def test_children_cover_parent_extent(self):
        box = _box(threshold=1, split_into=2)
        box.add_event(_event(0.1, 0.1, 0.1))
        box.add_event(_event(0.9, 0.9, 0.9))
        assert not box.is_leaf
        los = np.array([c.lo for c in box.children])
        his = np.array([c.hi for c in box.children])
        assert los.min() == 0.0 and his.max() == 1.0


class TestValidation:
    def test_degenerate_extent(self):
        ctl = MDBoxController()
        with pytest.raises(ValidationError, match="degenerate"):
            MDBox(ctl, (0, 0, 0), (0, 1, 1))

    def test_controller_validation(self):
        with pytest.raises(ValidationError):
            MDBoxController(split_threshold=0)
        with pytest.raises(ValidationError):
            MDBoxController(split_into=1)
        with pytest.raises(ValidationError):
            MDBoxController(max_depth=-1)

    def test_build_workspace_box(self):
        box = build_workspace_box(MDBoxController(), [(-1, 1), (-2, 2), (0, 1)])
        assert box.lo == (-1.0, -2.0, 0.0)
        assert box.hi == (1.0, 2.0, 1.0)
