"""The baseline's defining property: numerically identical to the core."""

import numpy as np
import pytest

from repro.baseline.mantid_binmd import _linear_locate, mantid_bin_md
from repro.baseline.mantid_mdnorm import mantid_md_norm
from repro.baseline.mdbox import MDBoxController
from repro.core.binmd import bin_events
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.mdnorm import mdnorm
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.events import EventTable


@pytest.fixture()
def grid():
    return HKLGrid(
        basis=np.eye(3), minimum=(-2.0, -2.0, -0.5), maximum=(2.0, 2.0, 0.5),
        bins=(10, 10, 1),
    )


@pytest.fixture()
def flux():
    k = np.linspace(1.0, 12.0, 48)
    return FluxSpectrum(momentum=k, density=np.exp(-0.1 * k))


OPS = np.stack([np.eye(3), -np.eye(3)])


class TestLinearLocate:
    def test_interior(self):
        edges = [0.0, 1.0, 2.0, 3.0]
        assert _linear_locate(edges, 0.5) == 0
        assert _linear_locate(edges, 1.0) == 1  # left-inclusive
        assert _linear_locate(edges, 2.9) == 2

    def test_outside(self):
        edges = [0.0, 1.0, 2.0]
        assert _linear_locate(edges, -0.1) == -1
        assert _linear_locate(edges, 2.0) == -1
        assert _linear_locate(edges, 5.0) == -1


class TestBinMdEquality:
    def test_matches_core(self, grid, rng):
        events = EventTable.from_columns(
            signal=rng.random(300) + 0.1,
            q_sample=rng.uniform(-2.5, 2.5, size=(300, 3)),
        )
        baseline = Hist3(grid, track_errors=True)
        mantid_bin_md(baseline, events, OPS)
        core = Hist3(grid, track_errors=True)
        bin_events(core, events, OPS, backend="vectorized")
        assert np.allclose(baseline.signal, core.signal)
        assert np.allclose(baseline.error_sq, core.error_sq)

    def test_box_hierarchy_receives_inside_events(self, grid, rng):
        events = EventTable.from_columns(
            signal=np.ones(50),
            q_sample=rng.uniform(-1.5, 1.5, size=(50, 3)),
        )
        hist = Hist3(grid)
        from repro.baseline.mdbox import build_workspace_box

        box = build_workspace_box(
            MDBoxController(split_threshold=16),
            [(grid.minimum[i], grid.maximum[i]) for i in range(3)],
        )
        mantid_bin_md(hist, events, OPS, workspace_box=box)
        # every histogrammed event also entered the workspace box
        assert box.total_signal() == pytest.approx(hist.total())

    def test_box_controller_convenience(self, grid, rng):
        events = EventTable.from_columns(
            signal=np.ones(30), q_sample=rng.uniform(-1, 1, size=(30, 3))
        )
        hist = Hist3(grid)
        mantid_bin_md(hist, events, OPS,
                      box_controller=MDBoxController(split_threshold=8))
        assert hist.total() > 0


class TestMdNormEquality:
    def test_matches_core(self, grid, flux, rng):
        n_det = 40
        dets = rng.normal(size=(n_det, 3))
        dets /= np.linalg.norm(dets, axis=1, keepdims=True)
        solid = rng.random(n_det)
        band = (2.0, 9.0)

        baseline = Hist3(grid)
        mantid_md_norm(baseline, OPS, dets, solid, flux, band, charge=1.5)
        core = Hist3(grid)
        mdnorm(core, OPS, dets, solid, flux, band, charge=1.5,
               backend="vectorized")
        assert np.allclose(baseline.signal, core.signal, rtol=1e-9, atol=1e-15)

    def test_zero_weight_detectors_skipped(self, grid, flux, rng):
        dets = rng.normal(size=(10, 3))
        dets /= np.linalg.norm(dets, axis=1, keepdims=True)
        h = Hist3(grid)
        mantid_md_norm(h, OPS, dets, np.zeros(10), flux, (2.0, 9.0))
        assert h.total() == 0.0
