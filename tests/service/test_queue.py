"""Admission control + fair-share dispatch (no reductions involved)."""

import pytest

from repro.service.jobs import Job, JobSpec, JobState
from repro.service.queue import (
    REASON_DRAINING,
    REASON_OK,
    REASON_QUEUE_FULL,
    REASON_TENANT_BYTES,
    REASON_TENANT_JOBS,
    AdmissionPolicy,
    JobQueue,
    TenantQuota,
)

_SEQ = iter(range(10_000))


def _job(tenant, *, est_bytes=100, priority=0):
    # queue tests never touch spec.config, a stub object suffices
    spec = JobSpec.__new__(JobSpec)
    spec.tenant = tenant
    spec.config = object()
    spec.priority = priority
    spec.timeout_s = None
    spec.label = ""
    spec.fault_plan = None
    seq = next(_SEQ)
    return Job(id=f"job-{seq:05d}", spec=spec, digest="d", est_bytes=est_bytes,
               seq=seq)


def _finish(queue, job, state=JobState.DONE):
    job.state = state
    queue.finish(job)


class TestAdmission:
    def test_admits_within_quota(self):
        q = JobQueue(AdmissionPolicy())
        decision = q.offer(_job("hb2c"))
        assert decision and decision.code == REASON_OK

    def test_queue_full(self):
        q = JobQueue(AdmissionPolicy(max_queue_depth=2))
        assert q.offer(_job("a"))
        assert q.offer(_job("b"))
        decision = q.offer(_job("c"))
        assert not decision
        assert decision.code == REASON_QUEUE_FULL
        assert decision.limits["max_queue_depth"] == 2
        assert q.rejections == 1

    def test_tenant_job_quota(self):
        policy = AdmissionPolicy(default_quota=TenantQuota(max_jobs=1))
        q = JobQueue(policy)
        assert q.offer(_job("hb2c"))
        decision = q.offer(_job("hb2c"))
        assert not decision and decision.code == REASON_TENANT_JOBS
        assert decision.limits == {"max_jobs": 1, "jobs": 1}
        # a different tenant is unaffected
        assert q.offer(_job("cncs"))

    def test_tenant_byte_quota(self):
        policy = AdmissionPolicy(
            default_quota=TenantQuota(max_jobs=10, max_bytes=250))
        q = JobQueue(policy)
        assert q.offer(_job("hb2c", est_bytes=200))
        decision = q.offer(_job("hb2c", est_bytes=100))
        assert not decision and decision.code == REASON_TENANT_BYTES
        assert decision.limits["bytes_in_flight"] == 200
        assert decision.limits["est_bytes"] == 100

    def test_per_tenant_override(self):
        policy = AdmissionPolicy(
            default_quota=TenantQuota(max_jobs=1),
            quotas={"vip": TenantQuota(max_jobs=3)},
        )
        q = JobQueue(policy)
        for _ in range(3):
            assert q.offer(_job("vip"))
        assert not q.offer(_job("vip"))
        # the default quota still applies to everyone else
        assert q.offer(_job("other"))
        assert not q.offer(_job("other"))

    def test_quota_releases_on_finish(self):
        policy = AdmissionPolicy(default_quota=TenantQuota(max_jobs=1))
        q = JobQueue(policy)
        job = _job("hb2c")
        assert q.offer(job)
        assert not q.offer(_job("hb2c"))
        popped = q.pop(timeout=0.1)
        assert popped is job
        _finish(q, job)
        assert q.offer(_job("hb2c"))

    def test_draining_rejects(self):
        q = JobQueue(AdmissionPolicy())
        q.drain()
        decision = q.offer(_job("hb2c"))
        assert not decision and decision.code == REASON_DRAINING
        assert q.draining


class TestFairShare:
    def test_least_loaded_tenant_first(self):
        q = JobQueue(AdmissionPolicy())
        a1, a2, b1 = _job("a"), _job("a"), _job("b")
        for j in (a1, a2, b1):
            assert q.offer(j)
        first = q.pop(timeout=0.1)
        assert first is a1  # FIFO while nobody is running
        # tenant "a" now has one running job, so "b" goes next
        second = q.pop(timeout=0.1)
        assert second is b1

    def test_priority_breaks_ties(self):
        q = JobQueue(AdmissionPolicy())
        low = _job("a", priority=0)
        high = _job("a", priority=5)
        assert q.offer(low) and q.offer(high)
        assert q.pop(timeout=0.1) is high

    def test_deferred_offer_holds_quota_before_enqueue(self):
        policy = AdmissionPolicy(default_quota=TenantQuota(max_jobs=1))
        q = JobQueue(policy)
        job = _job("a")
        assert q.offer(job, defer=True)
        # quota is held immediately...
        assert not q.offer(_job("a"))
        # ...but the job is not dispatchable until enqueue()
        assert q.pop(timeout=0.01) is None
        q.enqueue(job)
        assert q.pop(timeout=0.1) is job

    def test_pop_times_out_empty(self):
        q = JobQueue(AdmissionPolicy())
        assert q.pop(timeout=0.01) is None

    def test_remove_unqueues_pre_dispatch(self):
        q = JobQueue(AdmissionPolicy())
        job = _job("a")
        assert q.offer(job)
        assert q.remove(job)
        assert not q.remove(job)  # second time: already gone
        assert q.pop(timeout=0.01) is None
        # quota is still held until finish() — cancellation settles it
        _finish(q, job, JobState.CANCELLED)
        assert q.active_jobs() == 0

    def test_tenant_load_snapshot(self):
        q = JobQueue(AdmissionPolicy())
        q.offer(_job("a", est_bytes=10))
        q.offer(_job("a", est_bytes=20))
        q.offer(_job("b", est_bytes=5))
        load = q.tenant_load()
        assert load["a"] == {"jobs": 2, "bytes": 30}
        assert load["b"] == {"jobs": 1, "bytes": 5}
        assert q.depth() == 3 and q.active_jobs() == 3

    def test_finish_requires_terminal(self):
        q = JobQueue(AdmissionPolicy())
        job = _job("a")
        q.offer(job)
        with pytest.raises(Exception):
            q.finish(job)
