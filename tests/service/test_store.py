"""Content-addressed result store: persistence + single-flight."""

import os
import threading

import numpy as np
import pytest

from repro.service.store import (
    META_NAME,
    RESULT_NAME,
    ResultStore,
    ResultStoreError,
    StoredResult,
)


def _arrays(seed):
    rng = np.random.default_rng(seed)
    shape = (4, 4, 2)
    return {
        "binmd_signal": rng.random(shape),
        "binmd_error_sq": rng.random(shape),
        "mdnorm_signal": rng.random(shape),
        "cross_section": rng.random(shape),
    }


class TestPersistence:
    def test_round_trip_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        arrays = _arrays(1)
        store.put("digest-a", **arrays, meta={"n_runs": 3})
        out = store.get("digest-a")
        assert isinstance(out, StoredResult)
        for name, want in arrays.items():
            assert np.array_equal(getattr(out, name), want)
        assert out.meta == {"n_runs": 3}

    def test_absent_entry_is_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("nope") is None
        assert not store.has("nope")

    def test_put_is_idempotent_first_write_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = _arrays(1)
        store.put("digest-a", **first)
        store.put("digest-a", **_arrays(2))  # ignored: entry committed
        out = store.get("digest-a")
        assert np.array_equal(out.binmd_signal, first["binmd_signal"])

    def test_corruption_detected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("digest-a", **_arrays(3))
        victim = os.path.join(store.root, "digest-a", RESULT_NAME)
        raw = bytearray(open(victim, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(victim, "wb").write(bytes(raw))
        with pytest.raises(ResultStoreError):
            store.get("digest-a")

    def test_torn_meta_detected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("digest-a", **_arrays(4))
        meta = os.path.join(store.root, "digest-a", META_NAME)
        open(meta, "w").write('{"digest"')
        with pytest.raises(ResultStoreError):
            store.get("digest-a")

    def test_uncommitted_entry_invisible(self, tmp_path):
        # files present but no COMPLETE sentinel -> reader sees "absent"
        store = ResultStore(tmp_path / "store")
        entry = os.path.join(store.root, "digest-a")
        os.makedirs(entry)
        open(os.path.join(entry, RESULT_NAME), "wb").write(b"partial")
        assert store.get("digest-a") is None


class TestSingleFlight:
    def test_leader_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        kind, stored, flight = store.begin("d1", owner="job-1")
        assert kind == "lead" and stored is None
        result = store.put("d1", **_arrays(1))
        store.complete(flight, result)
        kind, stored, _ = store.begin("d1", owner="job-2")
        assert kind == "hit"
        assert np.array_equal(stored.binmd_signal, result.binmd_signal)
        assert store.stats() == {
            "hits": 1, "misses": 1, "coalesced": 0, "in_flight": 0}

    def test_joiner_waits_for_leader(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        kind, _, flight = store.begin("d1", owner="leader")
        assert kind == "lead"
        kind2, _, flight2 = store.begin("d1", owner="joiner")
        assert kind2 == "join" and flight2 is flight
        assert flight.joiners == 1

        seen = {}

        def join():
            flight2.done.wait(5.0)
            seen["result"] = flight2.result

        t = threading.Thread(target=join)
        t.start()
        result = store.put("d1", **_arrays(2))
        store.complete(flight, result)
        t.join(timeout=5.0)
        assert seen["result"] is result
        assert store.stats()["coalesced"] == 1

    def test_failed_leader_triggers_reelection(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        _, _, flight = store.begin("d1", owner="leader")
        _, _, joined = store.begin("d1", owner="joiner")
        store.fail(flight, RuntimeError("poisoned"))
        assert joined.done.is_set() and joined.error is not None
        # the joiner re-enters begin() and becomes the new leader
        kind, _, flight2 = store.begin("d1", owner="joiner")
        assert kind == "lead" and flight2 is not flight
        result = store.put("d1", **_arrays(3))
        store.complete(flight2, result)
        assert store.begin("d1", owner="late")[0] == "hit"

    def test_flights_are_per_digest(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        kind_a, _, _ = store.begin("da", owner="j1")
        kind_b, _, _ = store.begin("db", owner="j2")
        assert kind_a == kind_b == "lead"
        assert store.stats()["in_flight"] == 2
