"""Job model: digests, byte estimates, lifecycle legality."""

import dataclasses

import pytest

from repro.core.grid import HKLGrid
from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    estimate_job_bytes,
    workflow_digest,
)
from repro.util.validation import ReproError


class TestWorkflowDigest:
    def test_stable_for_identical_configs(self, make_config):
        assert workflow_digest(make_config()) == workflow_digest(make_config())

    def test_science_knobs_change_the_digest(self, make_config, tiny_experiment):
        base = workflow_digest(make_config())
        other_grid = HKLGrid.benzil_grid(bins=(21, 21, 1))
        assert workflow_digest(make_config(grid=other_grid)) != base
        assert workflow_digest(make_config(backend="numpy")) != base
        assert workflow_digest(make_config(sort_impl="library")) != base
        fewer = make_config(md_paths=tiny_experiment.md_paths[:2])
        assert workflow_digest(fewer) != base

    def test_scheduling_knobs_do_not(self, make_config):
        base = workflow_digest(make_config())
        assert workflow_digest(make_config(shards=4)) == base
        assert workflow_digest(make_config(executor="stealing")) == base
        assert workflow_digest(make_config(memory_budget=1 << 20)) == base


class TestEstimateJobBytes:
    def test_positive_and_scales_with_runs(self, make_config, tiny_experiment):
        full = estimate_job_bytes(make_config())
        fewer = estimate_job_bytes(
            make_config(md_paths=tiny_experiment.md_paths[:1]))
        assert full > fewer > 0

    def test_missing_files_still_estimate(self, make_config):
        cfg = make_config(md_paths=["/nonexistent/run.md.h5"])
        assert estimate_job_bytes(cfg) > 0


class TestJobSpec:
    def test_requires_tenant(self, make_config):
        with pytest.raises(ReproError):
            JobSpec(tenant="", config=make_config())

    def test_requires_positive_timeout(self, make_config):
        with pytest.raises(ReproError):
            JobSpec(tenant="hb3a", config=make_config(), timeout_s=0.0)


class TestLifecycle:
    def test_terminal_states_have_no_exits(self):
        for state in JobState.TERMINAL:
            assert state not in JobState.TRANSITIONS

    def test_happy_path_is_legal(self):
        assert JobState.ADMITTED in JobState.TRANSITIONS[JobState.QUEUED]
        assert JobState.RUNNING in JobState.TRANSITIONS[JobState.ADMITTED]
        assert JobState.DONE in JobState.TRANSITIONS[JobState.RUNNING]

    def test_cancel_legal_from_every_live_state(self):
        for state in (JobState.QUEUED, JobState.ADMITTED, JobState.RUNNING):
            assert JobState.CANCELLED in JobState.TRANSITIONS[state]

    def test_job_snapshot(self, make_config):
        spec = JobSpec(tenant="cncs", config=make_config(), label="panel")
        job = Job(id="job-00001", spec=spec, digest="abc", est_bytes=42,
                  seq=1)
        doc = job.as_dict()
        assert doc["id"] == "job-00001"
        assert doc["tenant"] == "cncs"
        assert doc["state"] == JobState.QUEUED
        assert doc["est_bytes"] == 42
        assert not job.terminal
        job.state = JobState.DONE
        assert job.terminal
