"""Service test helpers: cheap WorkflowConfig factories.

The queue/store unit tests never run a reduction, so they use stub
configs; only the digest/estimate tests need a real
:class:`WorkflowConfig`, built from the session-wide tiny experiment.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.workflow import WorkflowConfig


@pytest.fixture()
def make_config(tiny_experiment):
    """A factory for real configs; overrides vary the digest."""

    def factory(**overrides) -> WorkflowConfig:
        cfg = WorkflowConfig(
            md_paths=list(tiny_experiment.md_paths),
            flux_path=tiny_experiment.flux_path,
            vanadium_path=tiny_experiment.vanadium_path,
            instrument=tiny_experiment.instrument,
            grid=tiny_experiment.grid,
            point_group=tiny_experiment.point_group,
        )
        if overrides:
            cfg = dataclasses.replace(cfg, **overrides)
        return cfg

    return factory
