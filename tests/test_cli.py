"""End-to-end tests of the repro-reduce command line."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def bench_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DATA", str(tmp_path))


class TestCli:
    def test_minivates_default(self, capsys):
        rc = main(["--workload", "benzil", "--scale", "0.0002", "--files", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MiniVATES" in out
        assert "MDNorm" in out
        assert "cross-section" in out

    def test_all_with_check(self, capsys):
        rc = main([
            "--workload", "benzil", "--impl", "all", "--scale", "0.0002",
            "--files", "2", "--check",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "identical histograms" in out
        assert "Garnet" in out and "C++ proxy" in out

    def test_mi100_profile(self, capsys):
        rc = main([
            "--workload", "benzil", "--scale", "0.0002", "--files", "2",
            "--device-profile", "mi100",
        ])
        assert rc == 0
        assert "MI100-class" in capsys.readouterr().out

    def test_bad_arguments_exit(self):
        with pytest.raises(SystemExit):
            main(["--workload", "diamond"])

    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = main([
            "--workload", "benzil", "--scale", "0.0002", "--files", "2",
            "--json", str(out),
        ])
        assert rc == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["runs"][0]["label"].startswith("MiniVATES")
        assert payload["runs"][0]["stages_s"]["MDNorm"] > 0
        assert 0 <= payload["runs"][0]["coverage"] <= 1

    def test_peak_report(self, capsys):
        rc = main([
            "--workload", "benzil", "--scale", "0.0002", "--files", "2",
            "--peaks", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "strongest" in out

    def test_plan_execution(self, tmp_path, capsys):
        """A workload directory + generated plan runs through --plan."""
        import json

        from repro.bench.workloads import benzil_corelli, build_workload

        data = build_workload(benzil_corelli(scale=0.0002, n_files=2))
        plan_doc = {
            "runs": data.md_paths,
            "flux": data.flux_path,
            "vanadium": data.vanadium_path,
            "instrument": data.instrument_path,
            "point_group": "321",
            "grid": {
                "projections": [[1, 1, 0], [1, -1, 0], [0, 0, 1]],
                "minimum": [-6.0, -6.0, -0.5],
                "maximum": [6.0, 6.0, 0.5],
                "bins": [41, 41, 1],
            },
            "implementation": "cpp",
        }
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan_doc))
        out = tmp_path / "reduced.h5"
        rc = main(["--plan", str(plan_path), "--save", str(out)])
        assert rc == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "running plan" in captured
        assert "cross-section" in captured

    def test_bixbyite_workload(self, capsys):
        rc = main([
            "--workload", "bixbyite", "--impl", "cpp", "--scale", "0.0002",
            "--files", "1",
        ])
        assert rc == 0
        assert "C++ proxy" in capsys.readouterr().out
