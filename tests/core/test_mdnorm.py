"""Unit tests for the MDNorm kernel pair and its pre-pass."""

import numpy as np
import pytest

from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.mdnorm import max_intersections, mdnorm
from repro.nexus.corrections import FluxSpectrum
from repro.util.validation import ValidationError

BACKENDS = ("serial", "threads", "vectorized")


@pytest.fixture()
def grid():
    return HKLGrid(
        basis=np.eye(3), minimum=(-2.0, -2.0, -0.5), maximum=(2.0, 2.0, 0.5),
        bins=(16, 16, 1),
    )


@pytest.fixture()
def flux():
    k = np.linspace(1.0, 12.0, 64)
    return FluxSpectrum(momentum=k, density=np.ones(64))


def _detectors(n=50, seed=0):
    rng = np.random.default_rng(seed)
    d = rng.normal(size=(n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    d[:, 2] = np.abs(d[:, 2]) * 0.5  # keep away from pure forward scattering
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return d


IDENT = np.eye(3)[None, :, :]
BAND = (2.0, 9.0)


class TestMaxIntersections:
    def test_cpu_and_device_agree(self, grid):
        dets = _detectors()
        for backend in BACKENDS:
            out = max_intersections(grid, IDENT, dets, BAND, backend=backend)
            assert out == max_intersections(grid, IDENT, dets, BAND, backend="serial")

    def test_bound_is_sufficient(self, grid, flux):
        """mdnorm with the pre-pass width must not overflow."""
        dets = _detectors(80)
        width = max_intersections(grid, IDENT, dets, BAND, backend="vectorized")
        h = Hist3(grid)
        mdnorm(h, IDENT, dets, np.ones(80), flux, BAND, backend="vectorized",
               width=width)

    def test_within_paper_bound(self, grid):
        dets = _detectors()
        out = max_intersections(grid, IDENT, dets, BAND)
        assert out <= grid.max_plane_crossings


class TestCorrectness:
    def test_backends_agree_exactly(self, grid, flux):
        dets = _detectors(60)
        solid = np.random.default_rng(1).random(60)
        ref = None
        for backend in BACKENDS:
            h = Hist3(grid)
            mdnorm(h, IDENT, dets, solid, flux, BAND, backend=backend)
            if ref is None:
                ref = h.signal.copy()
            else:
                assert np.allclose(h.signal, ref, rtol=1e-10, atol=1e-15), backend

    def test_sort_impls_agree(self, grid, flux):
        dets = _detectors(60)
        solid = np.ones(60)
        a = Hist3(grid)
        mdnorm(a, IDENT, dets, solid, flux, BAND, backend="vectorized",
               sort_impl="comb")
        b = Hist3(grid)
        mdnorm(b, IDENT, dets, solid, flux, BAND, backend="vectorized",
               sort_impl="library")
        assert np.allclose(a.signal, b.signal)

    def test_scatter_impls_agree(self, grid, flux):
        dets = _detectors(60)
        a = Hist3(grid)
        mdnorm(a, IDENT, dets, np.ones(60), flux, BAND, backend="vectorized",
               scatter_impl="atomic")
        b = Hist3(grid)
        mdnorm(b, IDENT, dets, np.ones(60), flux, BAND, backend="vectorized",
               scatter_impl="buffered")
        assert np.allclose(a.signal, b.signal)

    def test_tile_rows_invariance(self, grid, flux):
        dets = _detectors(60)
        a = Hist3(grid)
        mdnorm(a, IDENT, dets, np.ones(60), flux, BAND, backend="vectorized",
               tile_rows=7)
        b = Hist3(grid)
        mdnorm(b, IDENT, dets, np.ones(60), flux, BAND, backend="vectorized")
        assert np.allclose(a.signal, b.signal)

    def test_total_equals_flux_times_solid_angle(self, grid, flux):
        """Conservation: the summed normalization equals
        sum_det solid_angle * integral phi over the in-box k-window
        (uniform flux makes this exactly computable)."""
        from repro.core.intersections import k_window, trajectory_directions

        dets = _detectors(40, seed=2)
        solid = np.random.default_rng(3).random(40)
        h = Hist3(grid)
        mdnorm(h, IDENT, dets, solid, flux, BAND, backend="vectorized")
        directions = trajectory_directions(IDENT, dets)
        lo, hi = k_window(directions, grid, *BAND)
        lengths = np.clip(hi - lo, 0.0, None)[0]
        density = flux.total / (flux.k_max - flux.k_min)
        expected = float(np.sum(solid * lengths * density))
        assert h.total() == pytest.approx(expected, rel=1e-9)

    def test_charge_scales_linearly(self, grid, flux):
        dets = _detectors(30)
        a = Hist3(grid)
        mdnorm(a, IDENT, dets, np.ones(30), flux, BAND, charge=1.0,
               backend="vectorized")
        b = Hist3(grid)
        mdnorm(b, IDENT, dets, np.ones(30), flux, BAND, charge=2.5,
               backend="vectorized")
        assert np.allclose(b.signal, 2.5 * a.signal)

    def test_zero_solid_angles_give_zero(self, grid, flux):
        dets = _detectors(20)
        h = Hist3(grid)
        mdnorm(h, IDENT, dets, np.zeros(20), flux, BAND, backend="vectorized")
        assert h.total() == 0.0

    def test_symmetry_ops_accumulate(self, grid, flux):
        """+-identity: the inverted trajectories add their own weight."""
        dets = _detectors(30)
        one = Hist3(grid)
        mdnorm(one, IDENT, dets, np.ones(30), flux, BAND, backend="vectorized")
        two = Hist3(grid)
        ops = np.stack([np.eye(3), -np.eye(3)])
        mdnorm(two, ops, dets, np.ones(30), flux, BAND, backend="vectorized")
        assert two.total() == pytest.approx(2 * one.total(), rel=1e-9)

    def test_band_outside_flux_table_contributes_clamped(self, grid):
        """A zero-flux band produces zero normalization."""
        k = np.linspace(5.0, 6.0, 16)
        flux = FluxSpectrum(momentum=k, density=np.ones(16))
        dets = _detectors(10)
        h = Hist3(grid)
        # trajectories only live at k < 2 in the box; the flux table is
        # zero-measure there (clamped cumulative)
        mdnorm(h, IDENT, dets, np.ones(10), flux, (0.1, 0.5),
               backend="vectorized")
        assert h.total() == pytest.approx(0.0, abs=1e-12)


class TestValidation:
    def test_transform_shape(self, grid, flux):
        with pytest.raises(ValidationError, match="transforms"):
            mdnorm(Hist3(grid), np.eye(3), _detectors(5), np.ones(5), flux, BAND)

    def test_solid_angle_length(self, grid, flux):
        with pytest.raises(ValidationError, match="solid_angles"):
            mdnorm(Hist3(grid), IDENT, _detectors(5), np.ones(4), flux, BAND)

    def test_bad_sort_impl(self, grid, flux):
        with pytest.raises(ValidationError, match="sort_impl"):
            mdnorm(Hist3(grid), IDENT, _detectors(5), np.ones(5), flux, BAND,
                   sort_impl="quantum")

    def test_det_direction_shape(self, grid, flux):
        with pytest.raises(ValidationError, match="det_directions"):
            mdnorm(Hist3(grid), IDENT, np.ones(5), np.ones(5), flux, BAND)
