"""Unit tests for the BinMD kernel pair."""

import numpy as np
import pytest

from repro.core.binmd import bin_events
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.nexus.events import EventTable
from repro.util.validation import ValidationError

BACKENDS = ("serial", "threads", "vectorized")


@pytest.fixture()
def grid():
    return HKLGrid(
        basis=np.eye(3), minimum=(-3.0, -3.0, -1.0), maximum=(3.0, 3.0, 1.0),
        bins=(12, 12, 2),
    )


def _events(n=400, seed=0, spread=3.5):
    rng = np.random.default_rng(seed)
    return EventTable.from_columns(
        signal=rng.random(n) + 0.5,
        q_sample=rng.uniform(-spread, spread, size=(n, 3)),
    )


IDENT = np.eye(3)[None, :, :]
FLIP = np.stack([np.eye(3), -np.eye(3)])


class TestCorrectness:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identity_transform_totals(self, grid, backend):
        events = _events(spread=0.9)  # everything inside the grid
        h = Hist3(grid)
        bin_events(h, events, IDENT, backend=backend)
        assert h.total() == pytest.approx(events.total_signal())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_outside_events_dropped(self, grid, backend):
        events = EventTable.from_columns(
            signal=np.ones(2),
            q_sample=np.array([[10.0, 0.0, 0.0], [0.0, 0.0, 0.5]]),
        )
        h = Hist3(grid)
        bin_events(h, events, IDENT, backend=backend)
        assert h.total() == 1.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_symmetry_doubles_signal(self, grid, backend):
        """With +-identity ops every inside event lands twice."""
        events = _events(spread=0.9)
        h = Hist3(grid)
        bin_events(h, events, FLIP, backend=backend)
        assert h.total() == pytest.approx(2 * events.total_signal())

    def test_backends_agree_exactly(self, grid):
        events = _events(n=700, seed=3)
        reference = None
        for backend in BACKENDS:
            h = Hist3(grid, track_errors=True)
            bin_events(h, events, FLIP, backend=backend)
            if reference is None:
                reference = h
            else:
                assert np.allclose(h.signal, reference.signal)
                assert np.allclose(h.error_sq, reference.error_sq)

    def test_inversion_symmetry_mirrors_histogram(self, grid):
        events = _events(n=300, seed=5, spread=2.0)
        h_plus = Hist3(grid)
        bin_events(h_plus, events, IDENT, backend="vectorized")
        h_minus = Hist3(grid)
        bin_events(h_minus, events, -IDENT, backend="vectorized")
        # inverted events = histogram flipped in all axes... compare totals
        assert h_minus.total() == pytest.approx(h_plus.total(), rel=0.2)

    def test_accumulates_across_calls(self, grid):
        events = _events(spread=0.9)
        h = Hist3(grid)
        bin_events(h, events, IDENT, backend="vectorized")
        bin_events(h, events, IDENT, backend="vectorized")
        assert h.total() == pytest.approx(2 * events.total_signal())

    def test_error_sq_tracked(self, grid):
        events = _events(spread=0.9)
        h = Hist3(grid, track_errors=True)
        bin_events(h, events, IDENT, backend="vectorized")
        assert h.error_sq.sum() == pytest.approx(events.error_sq.sum())


class TestTilingAndScatter:
    def test_tile_size_does_not_change_result(self, grid):
        events = _events(n=500)
        a = Hist3(grid)
        bin_events(a, events, FLIP, backend="vectorized", tile=64)
        b = Hist3(grid)
        bin_events(b, events, FLIP, backend="vectorized", tile=1 << 20)
        assert np.allclose(a.signal, b.signal)

    def test_scatter_impls_agree(self, grid):
        events = _events(n=500, seed=9)
        a = Hist3(grid)
        bin_events(a, events, FLIP, backend="vectorized", scatter_impl="atomic")
        b = Hist3(grid)
        bin_events(b, events, FLIP, backend="vectorized", scatter_impl="buffered")
        assert np.allclose(a.signal, b.signal)

    def test_bad_tile_rejected(self, grid):
        with pytest.raises(ValidationError, match="tile"):
            bin_events(Hist3(grid), _events(), IDENT, tile=0)


class TestValidation:
    def test_transform_shape(self, grid):
        with pytest.raises(ValidationError, match="transforms"):
            bin_events(Hist3(grid), _events(), np.eye(3))

    def test_accepts_raw_arrays(self, grid):
        raw = _events(spread=0.9).data
        h = Hist3(grid)
        bin_events(h, raw, IDENT, backend="vectorized")
        assert h.total() > 0

    def test_empty_events(self, grid):
        h = Hist3(grid)
        bin_events(h, EventTable.empty(), IDENT, backend="vectorized")
        assert h.total() == 0.0
