"""Tests for statistical error propagation through the division."""

import numpy as np
import pytest

from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3


@pytest.fixture()
def grid():
    return HKLGrid(basis=np.eye(3), minimum=(0, 0, 0), maximum=(1, 1, 1),
                   bins=(2, 2, 1))


class TestDivideErrors:
    def test_standard_propagation_formula(self, grid):
        num = Hist3(grid, track_errors=True)
        den = Hist3(grid, track_errors=True)
        num.push(0.25, 0.25, 0.5, 8.0, err_sq=8.0)   # Poisson: var == counts
        den.push(0.25, 0.25, 0.5, 2.0, err_sq=0.5)
        out = num.divide(den)
        c = 8.0 / 2.0
        expected_var = c**2 * (8.0 / 8.0**2 + 0.5 / 2.0**2)
        assert out.error_sq[0, 0, 0] == pytest.approx(expected_var)

    def test_no_errors_without_tracking(self, grid):
        out = Hist3(grid).divide(Hist3(grid))
        assert out.error_sq is None

    def test_zero_denominator_bins_have_zero_error(self, grid):
        num = Hist3(grid, track_errors=True)
        den = Hist3(grid, track_errors=True)
        num.push(0.25, 0.25, 0.5, 4.0, err_sq=4.0)
        out = num.divide(den)  # denominator all zero
        assert np.isnan(out.signal[0, 0, 0])
        assert np.all(out.error_sq == 0.0)

    def test_zero_numerator_bin_error_from_denominator_only(self, grid):
        num = Hist3(grid, track_errors=True)
        den = Hist3(grid, track_errors=True)
        den.push(0.25, 0.25, 0.5, 2.0, err_sq=0.5)
        out = num.divide(den)
        # ratio is 0, so the propagated variance is 0 too
        assert out.signal[0, 0, 0] == 0.0
        assert out.error_sq[0, 0, 0] == 0.0

    def test_errors_scale_with_statistics(self, grid):
        """More counts -> smaller relative error of the ratio."""
        def ratio_rel_err(counts):
            num = Hist3(grid, track_errors=True)
            den = Hist3(grid, track_errors=True)
            num.push(0.25, 0.25, 0.5, counts, err_sq=counts)
            den.push(0.25, 0.25, 0.5, 10.0, err_sq=0.0)
            out = num.divide(den)
            return np.sqrt(out.error_sq[0, 0, 0]) / out.signal[0, 0, 0]

        assert ratio_rel_err(10000.0) < ratio_rel_err(100.0)


class TestVanadiumMask:
    def test_mask_zeroes_weights(self):
        from repro.nexus.corrections import VanadiumData

        van = VanadiumData(detector_weights=np.ones(10))
        masked = van.with_mask(np.array([2, 5]))
        assert masked.n_masked == 2
        assert masked.detector_weights[2] == 0.0
        assert masked.detector_weights[5] == 0.0
        assert van.detector_weights[2] == 1.0  # original untouched

    def test_mask_out_of_range_rejected(self):
        from repro.nexus.corrections import VanadiumData

        van = VanadiumData(detector_weights=np.ones(4))
        with pytest.raises(Exception):
            van.with_mask(np.array([7]))

    def test_masked_detectors_contribute_nothing(self, tiny_experiment):
        """Masking every detector kills the normalization entirely."""
        from repro.core.hist3 import Hist3 as H
        from repro.core.mdnorm import mdnorm

        exp = tiny_experiment
        ws = exp.workspaces[0]
        traj = exp.grid.transforms_for(ws.ub_matrix, exp.point_group,
                                       goniometer=ws.goniometer)
        masked = exp.vanadium.with_mask(
            np.arange(exp.instrument.n_pixels)
        )
        h = H(exp.grid)
        mdnorm(h, traj, exp.instrument.directions, masked.detector_weights,
               exp.flux, ws.momentum_band, backend="vectorized")
        assert h.total() == 0.0

    def test_partial_mask_reduces_normalization(self, tiny_experiment):
        from repro.core.hist3 import Hist3 as H
        from repro.core.mdnorm import mdnorm

        exp = tiny_experiment
        ws = exp.workspaces[0]
        traj = exp.grid.transforms_for(ws.ub_matrix, exp.point_group,
                                       goniometer=ws.goniometer)
        full = H(exp.grid)
        mdnorm(full, traj, exp.instrument.directions,
               exp.vanadium.detector_weights, exp.flux, ws.momentum_band,
               backend="vectorized")
        masked = exp.vanadium.with_mask(np.arange(0, exp.instrument.n_pixels, 2))
        half = H(exp.grid)
        mdnorm(half, traj, exp.instrument.directions, masked.detector_weights,
               exp.flux, ws.momentum_band, backend="vectorized")
        assert 0 < half.total() < full.total()
