"""Property-based tests on the core reduction invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.binmd import bin_events
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.mdnorm import max_intersections, mdnorm
from repro.crystal.goniometer import rotation_about_axis
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.events import EventTable

BACKENDS = ("serial", "vectorized")


def _grid(bins=(8, 8, 4), extent=2.0):
    return HKLGrid(
        basis=np.eye(3),
        minimum=(-extent, -extent, -extent / 2),
        maximum=(extent, extent, extent / 2),
        bins=bins,
    )


class TestBinMdProperties:
    @given(seed=st.integers(0, 1000), n=st.integers(1, 300))
    @settings(max_examples=30, deadline=None)
    def test_total_conserved_when_all_inside(self, seed, n):
        """Any rotation preserves the histogrammed total when the grid
        comfortably contains the rotated events."""
        rng = np.random.default_rng(seed)
        grid = _grid(extent=4.0)
        q = rng.uniform(-0.9, 0.9, size=(n, 3))  # |coords| < sqrt(3) < 2
        events = EventTable.from_columns(signal=rng.random(n) + 0.1, q_sample=q)
        rot = rotation_about_axis(rng.normal(size=3) + 1e-3, rng.uniform(0, 360))
        h = Hist3(grid)
        bin_events(h, events, rot[None], backend="vectorized")
        assert h.total() == pytest.approx(events.total_signal())

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_backends_agree_on_random_inputs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        grid = _grid()
        q = rng.uniform(-3.0, 3.0, size=(n, 3))
        events = EventTable.from_columns(signal=rng.random(n), q_sample=q)
        ops = np.stack([np.eye(3), -np.eye(3), np.diag([1.0, -1.0, -1.0])])
        results = []
        for backend in BACKENDS:
            h = Hist3(grid)
            bin_events(h, events, ops, backend=backend)
            results.append(h.signal)
        assert np.allclose(results[0], results[1])

    @given(
        w1=st.floats(0.1, 5.0), w2=st.floats(0.1, 5.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_linearity_in_weights(self, w1, w2, seed):
        """BinMD is linear: hist(w1*e) + hist(w2*e) == hist((w1+w2)*e)."""
        rng = np.random.default_rng(seed)
        grid = _grid()
        q = rng.uniform(-1.5, 1.5, size=(50, 3))
        base = np.ones(50)
        h_sum = Hist3(grid)
        bin_events(h_sum, EventTable.from_columns(signal=w1 * base, q_sample=q),
                   np.eye(3)[None], backend="vectorized")
        bin_events(h_sum, EventTable.from_columns(signal=w2 * base, q_sample=q),
                   np.eye(3)[None], backend="vectorized")
        h_once = Hist3(grid)
        bin_events(h_once,
                   EventTable.from_columns(signal=(w1 + w2) * base, q_sample=q),
                   np.eye(3)[None], backend="vectorized")
        assert np.allclose(h_sum.signal, h_once.signal)


class TestMdNormProperties:
    def _flux(self):
        k = np.linspace(1.0, 10.0, 32)
        return FluxSpectrum(momentum=k, density=np.ones(32))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_flux_conservation_uniform_density(self, seed):
        """With uniform flux density, the normalization total equals
        sum_traj solid_angle * density * (in-box momentum length)."""
        from repro.core.intersections import k_window, trajectory_directions

        rng = np.random.default_rng(seed)
        grid = _grid()
        n_det = int(rng.integers(2, 30))
        dets = rng.normal(size=(n_det, 3))
        dets /= np.linalg.norm(dets, axis=1, keepdims=True)
        solid = rng.random(n_det)
        flux = self._flux()
        band = (2.0, 8.0)
        ops = np.stack([np.eye(3), -np.eye(3)])

        h = Hist3(grid)
        mdnorm(h, ops, dets, solid, flux, band, backend="vectorized")

        directions = trajectory_directions(ops, dets)
        lo, hi = k_window(directions, grid, *band)
        lengths = np.clip(hi - lo, 0.0, None)
        density = flux.total / (flux.k_max - flux.k_min)
        expected = float((np.broadcast_to(solid, lengths.shape) * lengths).sum()
                         * density)
        assert h.total() == pytest.approx(expected, rel=1e-9)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_prepass_bound_is_always_sufficient(self, seed):
        """fill never overflows a buffer sized by the pre-pass."""
        rng = np.random.default_rng(seed)
        grid = _grid(bins=(5, 7, 3))
        dets = rng.normal(size=(10, 3))
        dets /= np.linalg.norm(dets, axis=1, keepdims=True)
        band = (1.5, 9.0)
        ops = np.eye(3)[None]
        width = max_intersections(grid, ops, dets, band, backend="vectorized")
        h = Hist3(grid)
        # raises if the width is insufficient
        mdnorm(h, ops, dets, np.ones(10), self._flux(), band,
               backend="vectorized", width=width)

    @given(seed=st.integers(0, 300), charge=st.floats(0.1, 10.0))
    @settings(max_examples=15, deadline=None)
    def test_charge_linearity(self, seed, charge):
        rng = np.random.default_rng(seed)
        grid = _grid()
        dets = rng.normal(size=(8, 3))
        dets /= np.linalg.norm(dets, axis=1, keepdims=True)
        flux = self._flux()
        a = Hist3(grid)
        mdnorm(a, np.eye(3)[None], dets, np.ones(8), flux, (2.0, 8.0),
               charge=1.0, backend="vectorized")
        b = Hist3(grid)
        mdnorm(b, np.eye(3)[None], dets, np.ones(8), flux, (2.0, 8.0),
               charge=charge, backend="vectorized")
        assert np.allclose(b.signal, charge * a.signal)


class TestCrossSectionProperties:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_division_bounds(self, seed):
        """cross = binmd/mdnorm is NaN exactly where mdnorm == 0."""
        rng = np.random.default_rng(seed)
        grid = _grid(bins=(4, 4, 2))
        num = Hist3(grid, signal=rng.random((4, 4, 2)))
        den_signal = rng.random((4, 4, 2))
        den_signal[rng.random((4, 4, 2)) < 0.3] = 0.0
        den = Hist3(grid, signal=den_signal)
        out = num.divide(den)
        assert np.array_equal(np.isnan(out.signal), den_signal == 0.0)
        mask = den_signal != 0
        assert np.allclose(out.signal[mask], num.signal[mask] / den_signal[mask])
