"""Unit + property tests for the allocation-free comb sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.combsort import comb_sort, comb_sort_rows


class TestScalar:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 16, 100, 257])
    def test_sorts_random(self, n):
        rng = np.random.default_rng(n)
        a = rng.random(n)
        expected = np.sort(a)
        comb_sort(a)
        assert np.array_equal(a, expected)

    def test_prefix_only(self):
        a = np.array([3.0, 1.0, 2.0, -99.0, -98.0])
        comb_sort(a, n=3)
        assert np.array_equal(a, [1.0, 2.0, 3.0, -99.0, -98.0])

    def test_already_sorted(self):
        a = np.arange(50.0)
        comb_sort(a)
        assert np.array_equal(a, np.arange(50.0))

    def test_reverse_sorted(self):
        a = np.arange(50.0)[::-1].copy()
        comb_sort(a)
        assert np.array_equal(a, np.arange(50.0))

    def test_duplicates(self):
        a = np.array([2.0, 1.0, 2.0, 1.0, 1.0])
        comb_sort(a)
        assert np.array_equal(a, [1.0, 1.0, 1.0, 2.0, 2.0])

    @given(
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_library_sort(self, values):
        a = np.array(values, dtype=np.float64)
        expected = np.sort(a)
        comb_sort(a)
        assert np.array_equal(a, expected)


class TestRows:
    def test_sorts_each_row(self):
        rng = np.random.default_rng(0)
        m = rng.random((50, 37))
        expected = np.sort(m, axis=1)
        comb_sort_rows(m)
        assert np.array_equal(m, expected)

    def test_empty_and_tiny(self):
        assert comb_sort_rows(np.zeros((0, 5))) == 0
        assert comb_sort_rows(np.zeros((5, 1))) == 0
        one = np.array([[2.0, 1.0]])
        comb_sort_rows(one)
        assert np.array_equal(one, [[1.0, 2.0]])

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            comb_sort_rows(np.zeros(5))

    def test_partially_sorted_rows(self):
        """MDNorm rows are a few sorted runs concatenated — the common case."""
        a = np.sort(np.random.default_rng(1).random((20, 30)), axis=1)
        b = np.sort(np.random.default_rng(2).random((20, 30)), axis=1)
        m = np.concatenate([a, b], axis=1)
        expected = np.sort(m, axis=1)
        comb_sort_rows(m)
        assert np.array_equal(m, expected)

    def test_rows_with_padding_pattern(self):
        """The MDNorm layout: [k_lo, crossings..., k_hi, k_hi, ...]."""
        m = np.array(
            [
                [1.0, 5.0, 3.0, 2.0, 9.0, 9.0, 9.0],
                [0.0, 0.5, 0.25, 4.0, 4.0, 4.0, 4.0],
            ]
        )
        comb_sort_rows(m)
        assert np.array_equal(m[0], [1.0, 2.0, 3.0, 5.0, 9.0, 9.0, 9.0])
        assert np.array_equal(m[1], [0.0, 0.25, 0.5, 4.0, 4.0, 4.0, 4.0])

    @given(
        m=npst.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 20), st.integers(2, 40)),
            elements=st.floats(allow_nan=False, allow_infinity=False, width=32),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_library_sort_property(self, m):
        expected = np.sort(m, axis=1)
        comb_sort_rows(m)
        assert np.array_equal(m, expected)

    def test_pass_count_reported(self):
        m = np.random.default_rng(3).random((10, 64))
        passes = comb_sort_rows(m)
        assert passes > 0
