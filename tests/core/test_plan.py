"""Tests for reduction-plan files."""

import json

import numpy as np
import pytest

from repro.core.plan import ReductionPlan, load_plan, run_plan, save_plan
from repro.instruments.idf import write_instrument
from repro.util.validation import ValidationError


@pytest.fixture()
def plan_dir(tiny_experiment, tmp_path):
    """A self-contained dataset directory with a plan file."""
    exp = tiny_experiment
    idf = tmp_path / "instrument.h5"
    write_instrument(str(idf), exp.instrument)
    doc = {
        "runs": exp.md_paths,
        "flux": exp.flux_path,
        "vanadium": exp.vanadium_path,
        "instrument": str(idf),
        "point_group": "321",
        "grid": {
            "projections": [[1, 1, 0], [1, -1, 0], [0, 0, 1]],
            "minimum": [-6.0, -6.0, -0.5],
            "maximum": [6.0, 6.0, 0.5],
            "bins": [41, 41, 1],
        },
        "implementation": "minivates",
    }
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(doc))
    return path


class TestLoadPlan:
    def test_loads_and_validates(self, plan_dir):
        plan = load_plan(plan_dir)
        assert plan.implementation == "minivates"
        assert plan.point_group_symbol == "321"
        assert plan.grid.bins == (41, 41, 1)
        assert len(plan.runs) == 3

    def test_projections_become_basis_columns(self, plan_dir):
        plan = load_plan(plan_dir)
        assert np.allclose(plan.grid.basis[:, 0], [1, 1, 0])
        assert np.allclose(plan.grid.basis[:, 1], [1, -1, 0])

    def test_relative_paths_resolve_against_plan(self, plan_dir, tmp_path):
        doc = json.loads(plan_dir.read_text())
        doc["flux"] = "flux_rel.h5"
        p2 = tmp_path / "plan2.json"
        p2.write_text(json.dumps(doc))
        plan = load_plan(p2)
        assert plan.flux == str(tmp_path / "flux_rel.h5")

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"runs": ["a"]}))
        with pytest.raises(ValidationError, match="missing required key"):
            load_plan(path)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="cannot read plan"):
            load_plan(path)

    def test_bad_projections_rejected(self, plan_dir, tmp_path):
        doc = json.loads(plan_dir.read_text())
        doc["grid"]["projections"] = [[1, 0], [0, 1]]
        p2 = tmp_path / "bad.json"
        p2.write_text(json.dumps(doc))
        with pytest.raises(ValidationError, match="projections"):
            load_plan(p2)

    def test_unknown_implementation_rejected(self, plan_dir, tmp_path):
        doc = json.loads(plan_dir.read_text())
        doc["implementation"] = "fortran"
        p2 = tmp_path / "bad.json"
        p2.write_text(json.dumps(doc))
        with pytest.raises(ValidationError, match="implementation"):
            load_plan(p2)


class TestSavePlan:
    def test_roundtrip(self, plan_dir, tmp_path):
        plan = load_plan(plan_dir)
        out = tmp_path / "resaved.json"
        save_plan(out, plan)
        back = load_plan(out)
        assert back.runs == plan.runs
        assert back.grid.bins == plan.grid.bins
        assert np.allclose(back.grid.basis, plan.grid.basis)
        assert back.implementation == plan.implementation


class TestRunPlan:
    @pytest.mark.parametrize("impl", ["core", "cpp", "minivates"])
    def test_all_implementations_agree(self, plan_dir, tmp_path, impl):
        doc = json.loads(plan_dir.read_text())
        doc["implementation"] = impl
        if impl == "core":
            doc["backend_options"] = {"backend": "vectorized"}
        path = tmp_path / f"{impl}.json"
        path.write_text(json.dumps(doc))
        result = run_plan(load_plan(path))
        if not hasattr(TestRunPlan, "_reference"):
            TestRunPlan._reference = result.binmd.signal
        assert np.allclose(result.binmd.signal, TestRunPlan._reference)

    def test_backend_options_forwarded(self, plan_dir, tmp_path):
        doc = json.loads(plan_dir.read_text())
        doc["backend_options"] = {"sort_impl": "library", "cold_start": False}
        path = tmp_path / "opt.json"
        path.write_text(json.dumps(doc))
        result = run_plan(load_plan(path))
        assert result.backend == "minivates"
        assert result.binmd.total() > 0
