"""Unit + property tests for the atomic 3-D histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.util.validation import ValidationError


@pytest.fixture()
def grid():
    return HKLGrid(
        basis=np.eye(3), minimum=(-1.0, -1.0, -1.0), maximum=(1.0, 1.0, 1.0),
        bins=(4, 4, 4),
    )


class TestPush:
    def test_inside_accumulates(self, grid):
        h = Hist3(grid)
        assert h.push(0.1, 0.1, 0.1, 2.0)
        assert h.total() == 2.0

    def test_outside_rejected(self, grid):
        h = Hist3(grid)
        assert not h.push(1.5, 0.0, 0.0, 1.0)
        assert not h.push(0.0, -1.1, 0.0, 1.0)
        assert h.total() == 0.0

    def test_upper_boundary_outside(self, grid):
        h = Hist3(grid)
        assert not h.push(1.0, 0.0, 0.0, 1.0)

    def test_lower_boundary_inside(self, grid):
        h = Hist3(grid)
        assert h.push(-1.0, -1.0, -1.0, 1.0)
        assert h.signal[0, 0, 0] == 1.0

    def test_error_tracking(self, grid):
        h = Hist3(grid, track_errors=True)
        h.push(0.0, 0.0, 0.0, 1.0, err_sq=4.0)
        assert h.error_sq.sum() == 4.0

    def test_same_bin_accumulates(self, grid):
        h = Hist3(grid)
        h.push(0.1, 0.1, 0.1, 1.0)
        h.push(0.11, 0.12, 0.13, 2.0)
        assert np.count_nonzero(h.signal) == 1
        assert h.total() == 3.0


class TestPushMany:
    def test_matches_scalar_pushes(self, grid):
        rng = np.random.default_rng(0)
        coords = rng.uniform(-1.2, 1.2, size=(500, 3))
        weights = rng.random(500)
        a = Hist3(grid)
        n_in = a.push_many(coords, weights)
        b = Hist3(grid)
        count = sum(b.push(*c, w) for c, w in zip(coords, weights))
        assert n_in == count
        assert np.allclose(a.signal, b.signal)

    def test_scatter_impls_agree(self, grid):
        rng = np.random.default_rng(1)
        coords = rng.uniform(-1, 1, size=(300, 3))
        weights = rng.random(300)
        a = Hist3(grid)
        a.push_many(coords, weights, scatter_impl="atomic")
        b = Hist3(grid)
        b.push_many(coords, weights, scatter_impl="buffered")
        assert np.allclose(a.signal, b.signal)

    def test_unknown_scatter_rejected(self, grid):
        h = Hist3(grid)
        with pytest.raises(ValidationError, match="scatter_impl"):
            h.push_many(np.zeros((1, 3)), np.ones(1), scatter_impl="magic")

    def test_scalar_weight_broadcast(self, grid):
        h = Hist3(grid)
        h.push_many(np.zeros((5, 3)), 2.0)
        assert h.total() == 10.0

    def test_duplicate_bins_counted(self, grid):
        h = Hist3(grid)
        coords = np.tile([[0.1, 0.1, 0.1]], (7, 1))
        h.push_many(coords, np.ones(7))
        assert h.total() == 7.0

    def test_errors_accumulated(self, grid):
        h = Hist3(grid, track_errors=True)
        h.push_many(np.zeros((3, 3)), np.ones(3), err_sq=np.full(3, 2.0))
        assert h.error_sq.sum() == 6.0

    @given(n=st.integers(0, 100), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_total_preserved_for_inside_points(self, n, seed):
        g = HKLGrid(basis=np.eye(3), minimum=(-1, -1, -1), maximum=(1, 1, 1),
                    bins=(5, 5, 5))
        rng = np.random.default_rng(seed)
        coords = rng.uniform(-0.99, 0.99, size=(n, 3))
        w = rng.random(n)
        h = Hist3(g)
        n_in = h.push_many(coords, w)
        assert n_in == n
        assert h.total() == pytest.approx(w.sum())


class TestAlgebra:
    def test_add(self, grid):
        a = Hist3(grid)
        b = Hist3(grid)
        a.push(0, 0, 0, 1.0)
        b.push(0, 0, 0, 2.0)
        a.add(b)
        assert a.total() == 3.0

    def test_add_grid_mismatch(self, grid):
        other = HKLGrid(basis=np.eye(3), minimum=(-1, -1, -1), maximum=(1, 1, 1),
                        bins=(2, 2, 2))
        with pytest.raises(ValidationError, match="grids differ"):
            Hist3(grid).add(Hist3(other))

    def test_divide_guards_zero(self, grid):
        num = Hist3(grid)
        den = Hist3(grid)
        num.push(0, 0, 0, 6.0)
        den.push(0, 0, 0, 2.0)
        out = num.divide(den)
        idx = np.nonzero(~np.isnan(out.signal))
        assert out.signal[idx][0] == 3.0
        # all other bins had 0 denominator -> NaN fill
        assert np.isnan(out.signal).sum() == out.signal.size - 1

    def test_divide_custom_fill(self, grid):
        out = Hist3(grid).divide(Hist3(grid), fill=0.0)
        assert out.total() == 0.0

    def test_copy_is_deep(self, grid):
        a = Hist3(grid, track_errors=True)
        a.push(0, 0, 0, 1.0)
        b = a.copy()
        b.push(0, 0, 0, 1.0)
        assert a.total() == 1.0 and b.total() == 2.0

    def test_reset(self, grid):
        a = Hist3(grid, track_errors=True)
        a.push(0, 0, 0, 1.0, err_sq=1.0)
        a.reset()
        assert a.total() == 0.0 and a.error_sq.sum() == 0.0


class TestInspection:
    def test_nonzero_fraction(self, grid):
        h = Hist3(grid)
        assert h.nonzero_fraction() == 0.0
        h.push(0, 0, 0, 1.0)
        assert h.nonzero_fraction() == pytest.approx(1 / 64)

    def test_slice2d(self, grid):
        h = Hist3(grid)
        h.push(0.1, 0.1, -0.9, 5.0)  # lands in i2 == 0
        sl = h.slice2d(axis=2, index=0)
        assert sl.shape == (4, 4)
        assert sl.sum() == 5.0
        assert h.slice2d(axis=2, index=1).sum() == 0.0

    def test_signal_shape_validation(self, grid):
        with pytest.raises(ValidationError):
            Hist3(grid, signal=np.zeros((2, 2, 2)))
