"""Tests for the dynamic rebinning extension (and 3-D volumes)."""

import numpy as np
import pytest

from repro.core.grid import HKLGrid
from repro.core.rebin import InMemoryReducer
from repro.core.workflow import ReductionWorkflow, WorkflowConfig
from repro.util.validation import ValidationError


@pytest.fixture()
def reducer(tiny_experiment):
    exp = tiny_experiment
    return InMemoryReducer(
        md_paths=exp.md_paths,
        flux=exp.flux,
        instrument=exp.instrument,
        solid_angles=exp.vanadium.detector_weights,
        point_group=exp.point_group,
        backend="vectorized",
    )


class TestRebinning:
    def test_matches_file_workflow(self, tiny_experiment, reducer):
        exp = tiny_experiment
        res = reducer.reduce(exp.grid)
        wf = ReductionWorkflow(
            WorkflowConfig(
                md_paths=exp.md_paths,
                flux_path=exp.flux_path,
                vanadium_path=exp.vanadium_path,
                instrument=exp.instrument,
                grid=exp.grid,
                point_group=exp.point_group,
                backend="vectorized",
            )
        ).run()
        assert np.allclose(res.binmd.signal, wf.binmd.signal)
        assert np.allclose(res.mdnorm.signal, wf.mdnorm.signal, rtol=1e-10)

    def test_rebin_without_reloading(self, tiny_experiment, reducer):
        """The paper's data-movement claim: new bins, zero file reads."""
        loads_before = reducer.load_count
        coarse = reducer.reduce(HKLGrid.benzil_grid(bins=(21, 21, 1)))
        fine = reducer.reduce(HKLGrid.benzil_grid(bins=(81, 81, 1)))
        assert reducer.load_count == loads_before
        assert coarse.timings.seconds("UpdateEvents") == 0.0
        assert fine.timings.seconds("UpdateEvents") == 0.0
        # total signal is grid-independent for a fixed projection basis
        assert coarse.binmd.total() == pytest.approx(fine.binmd.total(), rel=0.05)

    def test_coarse_grid_is_aggregate_of_fine(self, tiny_experiment, reducer):
        """Halving the bin count must exactly merge neighbouring bins
        (BinMD is a pure histogram)."""
        fine = reducer.reduce(HKLGrid.benzil_grid(bins=(40, 40, 1)))
        coarse = reducer.reduce(HKLGrid.benzil_grid(bins=(20, 20, 1)))
        merged = fine.binmd.signal.reshape(20, 2, 20, 2, 1).sum(axis=(1, 3))
        assert np.allclose(merged, coarse.binmd.signal)

    def test_change_projection_basis(self, tiny_experiment, reducer):
        """Rebinning to a different reciprocal basis, still no reload."""
        hk_grid = HKLGrid(
            basis=np.eye(3),
            minimum=(-6.0, -6.0, -0.5),
            maximum=(6.0, 6.0, 0.5),
            bins=(41, 41, 1),
            names=("[H,0,0]", "[0,K,0]", "[0,0,L]"),
        )
        res = reducer.reduce(hk_grid)
        assert res.binmd.total() > 0
        assert res.cross_section.grid.names[0] == "[H,0,0]"


class TestVolumes:
    def test_3d_volume_reduction(self, reducer):
        """lBins > 1: the '3D volumes' option the paper motivates."""
        res = reducer.reduce_volume(bins=(24, 24, 24))
        assert res.binmd.signal.shape == (24, 24, 24)
        assert res.binmd.total() > 0
        assert res.mdnorm.total() > 0
        # the volume must contain more signal than any single L slice
        slice_totals = res.binmd.signal.sum(axis=(0, 1))
        assert res.binmd.total() > slice_totals.max()

    def test_volume_consistent_with_slice(self, tiny_experiment, reducer):
        """Summing the volume's central L bins reproduces the 2-D slice."""
        slice_res = reducer.reduce(
            HKLGrid(basis=np.eye(3), minimum=(-6, -6, -0.5),
                    maximum=(6, 6, 0.5), bins=(30, 30, 1))
        )
        vol_res = reducer.reduce(
            HKLGrid(basis=np.eye(3), minimum=(-6, -6, -0.5),
                    maximum=(6, 6, 0.5), bins=(30, 30, 4))
        )
        collapsed = vol_res.binmd.signal.sum(axis=2, keepdims=True)
        assert np.allclose(collapsed, slice_res.binmd.signal)


class TestValidation:
    def test_requires_paths(self, tiny_experiment):
        exp = tiny_experiment
        with pytest.raises(Exception):
            InMemoryReducer(
                md_paths=[],
                flux=exp.flux,
                instrument=exp.instrument,
                solid_angles=exp.vanadium.detector_weights,
                point_group=exp.point_group,
            )

    def test_counts(self, tiny_experiment, reducer):
        assert reducer.n_runs == 3
        assert reducer.total_events == sum(
            ws.n_events for ws in tiny_experiment.workspaces
        )
        assert reducer.load_count == 3
