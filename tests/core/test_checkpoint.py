"""Checkpoint manifest + per-run delta persistence."""

import json
import multiprocessing
import os
import threading

import numpy as np
import pytest

from repro.core.checkpoint import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    CheckpointMismatchError,
    RecoveryConfig,
    campaign_digest,
)
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.util import atomic_io
from repro.util.faults import RetryPolicy


@pytest.fixture
def grid():
    return HKLGrid(basis=np.eye(3), minimum=(-1, -1, -1),
                   maximum=(1, 1, 1), bins=(3, 3, 2))


def _delta(grid, seed):
    rng = np.random.default_rng(seed)
    binmd = Hist3(grid, track_errors=True)
    mdnorm = Hist3(grid)
    binmd.signal[...] = rng.random(binmd.signal.shape)
    binmd.error_sq[...] = rng.random(binmd.signal.shape)
    mdnorm.signal[...] = rng.random(mdnorm.signal.shape)
    return binmd, mdnorm


class TestCampaignDigest:
    def test_order_insensitive(self):
        assert campaign_digest(a=1, b="x") == campaign_digest(b="x", a=1)

    def test_field_sensitive(self):
        assert campaign_digest(a=1) != campaign_digest(a=2)

    def test_numpy_values_ok(self):
        d = campaign_digest(arr=np.arange(3), n=np.int64(5), x=np.float64(0.5))
        assert isinstance(d, str) and len(d) == 24


class TestSaveLoadRoundTrip:
    def test_round_trip_bit_identical(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck", config_digest="cfg")
        binmd, mdnorm = _delta(grid, 1)
        ck.save_run(4, binmd, mdnorm, attempts=2, rank=1)
        delta = ck.load_run(4, grid)
        assert delta.run_index == 4
        assert np.array_equal(delta.binmd_signal, binmd.signal)
        assert np.array_equal(delta.binmd_error_sq, binmd.error_sq)
        assert np.array_equal(delta.mdnorm_signal, mdnorm.signal)

    def test_manifest_records_disposition(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck", config_digest="cfg")
        binmd, mdnorm = _delta(grid, 2)
        ck.save_run(0, binmd, mdnorm, attempts=3, rank=2)
        rec = ck.run_record(0)
        assert rec["status"] == "done"
        assert rec["attempts"] == 3
        assert rec["rank"] == 2
        assert set(rec["digests"]) == {"binmd", "mdnorm", "binmd_error_sq"}
        assert ck.has_run(0) and not ck.has_run(1)
        assert ck.completed_runs() == [0]

    def test_no_error_sq_supported(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck")
        binmd = Hist3(grid)  # no error tracking
        mdnorm = Hist3(grid)
        binmd.signal[...] = 1.0
        ck.save_run(0, binmd, mdnorm)
        assert ck.load_run(0, grid).binmd_error_sq is None

    def test_quarantine_is_durable(self, tmp_path, grid):
        path = tmp_path / "ck"
        ck = CheckpointManager(path, config_digest="cfg")
        ck.quarantine_run(7, "injected kernel_error")
        again = CheckpointManager(path, config_digest="cfg")
        assert again.is_quarantined(7)
        assert again.quarantined_runs() == [7]

    def test_save_clears_prior_quarantine(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck")
        ck.quarantine_run(1, "flaky")
        binmd, mdnorm = _delta(grid, 3)
        ck.save_run(1, binmd, mdnorm)
        assert not ck.is_quarantined(1)
        assert ck.has_run(1)


class TestResumeSemantics:
    def test_fresh_manager_sees_prior_progress(self, tmp_path, grid):
        path = tmp_path / "ck"
        ck = CheckpointManager(path, config_digest="cfg")
        for i in (2, 0):
            binmd, mdnorm = _delta(grid, i)
            ck.save_run(i, binmd, mdnorm)
        again = CheckpointManager(path, config_digest="cfg")
        assert again.completed_runs() == [0, 2]  # ascending
        d0 = again.load_run(0, grid)
        assert np.array_equal(d0.binmd_signal, _delta(grid, 0)[0].signal)

    def test_config_digest_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck"
        ck = CheckpointManager(path, config_digest="campaign-A")
        ck.quarantine_run(0, "write the manifest")
        with pytest.raises(CheckpointMismatchError):
            CheckpointManager(path, config_digest="campaign-B")

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck"
        path.mkdir()
        (path / MANIFEST_NAME).write_text(json.dumps(
            {"schema": MANIFEST_SCHEMA + 1, "runs": {}, "quarantined": {}}))
        with pytest.raises(CheckpointError):
            CheckpointManager(path)

    def test_torn_manifest_rejected(self, tmp_path):
        path = tmp_path / "ck"
        path.mkdir()
        (path / MANIFEST_NAME).write_text('{"schema": 1, "runs"')
        with pytest.raises(CheckpointError):
            CheckpointManager(path)

    def test_campaign_complete_sentinel(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck")
        assert not ck.campaign_complete
        ck.mark_campaign_complete("done\n")
        assert ck.campaign_complete
        assert atomic_io.is_complete(ck.directory)


class TestCorruptionDetection:
    def test_bit_flip_in_delta_detected(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck")
        binmd, mdnorm = _delta(grid, 5)
        ck.save_run(0, binmd, mdnorm)
        victim = os.path.join(ck.directory, ck.run_record(0)["file"])
        raw = bytearray(open(victim, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(victim, "wb").write(bytes(raw))
        with pytest.raises(CheckpointCorruptError):
            ck.load_run(0, grid)

    def test_missing_delta_file_detected(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck")
        binmd, mdnorm = _delta(grid, 6)
        ck.save_run(0, binmd, mdnorm)
        os.unlink(os.path.join(ck.directory, ck.run_record(0)["file"]))
        with pytest.raises(CheckpointCorruptError):
            ck.load_run(0, grid)

    def test_grid_shape_mismatch_detected(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck")
        binmd, mdnorm = _delta(grid, 7)
        ck.save_run(0, binmd, mdnorm)
        other = HKLGrid(basis=np.eye(3), minimum=(-1, -1, -1),
                        maximum=(1, 1, 1), bins=(5, 5, 5))
        with pytest.raises(CheckpointMismatchError):
            ck.load_run(0, other)

    def test_unknown_run_rejected(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck")
        with pytest.raises(CheckpointError):
            ck.load_run(3, grid)


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def _job_grid():
    return HKLGrid(basis=np.eye(3), minimum=(-1, -1, -1),
                   maximum=(1, 1, 1), bins=(3, 3, 2))


def _job_seed(job):
    # stable across processes (hash() is salted per interpreter)
    return 100 * (sum(map(ord, job)) % 97)


def _job_worker(root, job, digest, runs):
    """Process entry point: one job writing its own checkpoint dir."""
    grid = _job_grid()
    ck = CheckpointManager(os.path.join(root, job, "ckpt"),
                           config_digest=digest)
    for i in runs:
        binmd, mdnorm = _delta(grid, _job_seed(job) + i)
        ck.save_run(i, binmd, mdnorm)
    ck.mark_campaign_complete(job + "\n")


def _complete_worker(directory, text):
    atomic_io.mark_complete(directory, text)


class TestConcurrentManagers:
    """Concurrent checkpoint use under the multi-tenant service layout.

    One store root holds many per-job checkpoint directories; a single
    manager may also be driven from several threads at once.  These
    tests pin the invariants the campaign service leans on: manifest
    updates are serialised, sibling jobs never cross-contaminate, and
    the COMPLETE sentinel appears atomically.
    """

    def test_threaded_saves_on_one_manager(self, tmp_path, grid):
        ck = CheckpointManager(tmp_path / "ck", config_digest="cfg")
        n = 8
        errors = []

        def save(i):
            try:
                binmd, mdnorm = _delta(grid, i)
                ck.save_run(i, binmd, mdnorm)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=save, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        again = CheckpointManager(tmp_path / "ck", config_digest="cfg")
        assert again.completed_runs() == list(range(n))
        for i in range(n):
            delta = again.load_run(i, grid)  # digest-verified
            assert np.array_equal(delta.binmd_signal, _delta(grid, i)[0].signal)

    def test_sibling_jobs_stay_isolated(self, tmp_path, grid):
        root = tmp_path / "store"
        jobs = {"job-a": "digest-a", "job-b": "digest-b"}
        managers = {
            name: CheckpointManager(root / name / "ckpt", config_digest=dig)
            for name, dig in jobs.items()
        }

        def drive(name, base):
            ck = managers[name]
            for i in range(4):
                binmd, mdnorm = _delta(grid, base + i)
                ck.save_run(i, binmd, mdnorm)

        threads = [threading.Thread(target=drive, args=(n, b))
                   for n, b in (("job-a", 10), ("job-b", 50))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for name, base in (("job-a", 10), ("job-b", 50)):
            again = CheckpointManager(root / name / "ckpt",
                                      config_digest=jobs[name])
            assert again.completed_runs() == [0, 1, 2, 3]
            d = again.load_run(2, grid)
            assert np.array_equal(d.binmd_signal, _delta(grid, base + 2)[0].signal)
        # digest binding: reopening one job's dir as the other campaign fails
        with pytest.raises(CheckpointMismatchError):
            CheckpointManager(root / "job-a" / "ckpt",
                              config_digest="digest-b")

    def test_complete_marker_atomic_under_thread_race(self, tmp_path):
        path = tmp_path / "ck"
        ck = CheckpointManager(path, config_digest="cfg")
        observed = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                if ck.campaign_complete:
                    marker = path / "COMPLETE"
                    observed.append(marker.read_text())

        watcher = threading.Thread(target=reader)
        watcher.start()
        writers = [
            threading.Thread(target=ck.mark_campaign_complete,
                             args=(f"writer-{i}\n",))
            for i in range(6)
        ]
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        watcher.join()
        assert ck.campaign_complete
        # every observation is a whole message from exactly one writer
        valid = {f"writer-{i}\n" for i in range(6)}
        assert observed, "reader never saw the sentinel"
        assert set(observed) <= valid

    def test_process_jobs_share_store_root(self, tmp_path):
        ctx = _mp_context()
        root = str(tmp_path / "store")
        jobs = {"job-a": "digest-a", "job-b": "digest-b", "job-c": "digest-c"}
        procs = [
            ctx.Process(target=_job_worker,
                        args=(root, name, dig, list(range(3))))
            for name, dig in jobs.items()
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        grid = _job_grid()
        for name, dig in jobs.items():
            jobdir = os.path.join(root, name, "ckpt")
            ck = CheckpointManager(jobdir, config_digest=dig)
            assert ck.completed_runs() == [0, 1, 2]
            assert ck.campaign_complete
            for i in range(3):
                want = _delta(grid, _job_seed(name) + i)[0].signal
                assert np.array_equal(ck.load_run(i, grid).binmd_signal, want)
            with pytest.raises(CheckpointMismatchError):
                CheckpointManager(jobdir, config_digest="somebody-else")

    def test_process_complete_marker_race(self, tmp_path):
        ctx = _mp_context()
        directory = str(tmp_path / "shared")
        os.makedirs(directory)
        procs = [
            ctx.Process(target=_complete_worker,
                        args=(directory, f"proc-{i}\n"))
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert atomic_io.is_complete(directory)
        text = (tmp_path / "shared" / "COMPLETE").read_text()
        assert text in {f"proc-{i}\n" for i in range(4)}


class TestRecoveryConfig:
    def test_defaults(self):
        cfg = RecoveryConfig()
        assert isinstance(cfg.retry, RetryPolicy)
        assert cfg.quarantine is True
        assert cfg.checkpoint is None
        assert cfg.resume is False
        assert cfg.retryable is None
