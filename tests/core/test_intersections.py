"""Unit + property tests for trajectory/grid intersection geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import HKLGrid
from repro.core.intersections import (
    count_crossings_batch,
    count_crossings_scalar,
    fill_crossings_batch,
    fill_crossings_scalar,
    k_window,
    trajectory_directions,
)


@pytest.fixture()
def grid():
    return HKLGrid(
        basis=np.eye(3), minimum=(-2.0, -2.0, -1.0), maximum=(2.0, 2.0, 1.0),
        bins=(8, 8, 4),
    )


class TestTrajectoryDirections:
    def test_formula(self):
        transforms = np.array([np.eye(3), 2.0 * np.eye(3)])
        dets = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        d = trajectory_directions(transforms, dets)
        assert d.shape == (2, 2, 3)
        # forward scattering: z - z = 0
        assert np.allclose(d[0, 0], 0.0)
        # 90 degrees: z - x
        assert np.allclose(d[0, 1], [-1.0, 0.0, 1.0])
        assert np.allclose(d[1, 1], [-2.0, 0.0, 2.0])

    def test_does_not_mutate_input(self):
        dets = np.array([[1.0, 0.0, 0.0]])
        before = dets.copy()
        trajectory_directions(np.eye(3)[None], dets)
        assert np.array_equal(dets, before)


class TestKWindow:
    def test_trajectory_through_box(self, grid):
        # direction (1,0,0): inside for k*1 in [-2, 2] -> k in [2, 2] given band
        d = np.array([[1.0, 0.0, 0.0]])
        lo, hi = k_window(d, grid, 1.0, 5.0)
        assert lo[0] == pytest.approx(1.0)
        assert hi[0] == pytest.approx(2.0)

    def test_trajectory_missing_box(self, grid):
        # direction purely +x with k >= 3 starts outside
        d = np.array([[1.0, 0.0, 0.0]])
        lo, hi = k_window(d, grid, 3.0, 5.0)
        assert not hi[0] > lo[0]

    def test_negative_direction(self, grid):
        d = np.array([[-1.0, 0.0, 0.0]])
        lo, hi = k_window(d, grid, 1.0, 5.0)
        assert lo[0] == pytest.approx(1.0)
        assert hi[0] == pytest.approx(2.0)

    def test_parallel_dimension_inside(self, grid):
        # d_z = 0 and the box straddles 0 in z -> unconstrained by z
        d = np.array([[0.5, 0.0, 0.0]])
        lo, hi = k_window(d, grid, 1.0, 3.0)
        assert hi[0] > lo[0]

    def test_parallel_dimension_outside(self):
        g = HKLGrid(basis=np.eye(3), minimum=(0.5, -1, -1), maximum=(2, 1, 1),
                    bins=(2, 2, 2))
        # d_x = 0 but box x-range excludes 0 -> never inside
        d = np.array([[0.0, 1.0, 0.0]])
        lo, hi = k_window(d, g, 0.1, 10.0)
        assert not hi[0] > lo[0]

    def test_batch_shape(self, grid):
        d = np.random.default_rng(0).normal(size=(3, 4, 3))
        lo, hi = k_window(d, grid, 1.0, 5.0)
        assert lo.shape == (3, 4) and hi.shape == (3, 4)


class TestCounting:
    def test_known_crossing_count(self, grid):
        """Direction (1,0,0), k in [1, 2): crosses x-edges in (1, 2)."""
        d = np.array([1.0, 0.0, 0.0])
        n = count_crossings_scalar(d, grid, 1.0, 2.0)
        # x edges at 1.5 (and 2.0 is excluded as the endpoint); edges are
        # -2,-1.5,...,2 with width 0.5
        edges_inside = [e for e in np.linspace(-2, 2, 9) if 1.0 < e < 2.0]
        assert n == len(edges_inside)

    def test_empty_window(self, grid):
        assert count_crossings_scalar(np.ones(3), grid, 2.0, 1.0) == 0

    def test_scalar_matches_batch(self, grid):
        rng = np.random.default_rng(7)
        d = rng.normal(size=(40, 3))
        lo, hi = k_window(d, grid, 0.5, 8.0)
        batch = count_crossings_batch(d, grid, lo, hi)
        for i in range(40):
            assert batch[i] == count_crossings_scalar(d[i], grid, lo[i], hi[i])


class TestFilling:
    def _check_row(self, row, count, lo, hi):
        assert row[0] == lo
        assert row[count - 1] == hi
        inner = row[1 : count - 1]
        assert np.all(inner > lo) and np.all(inner < hi)

    def test_scalar_fill_contents(self, grid):
        d = np.array([0.7, -0.3, 0.1])
        lo, hi = k_window(d[None, :], grid, 0.5, 8.0)
        lo, hi = float(lo[0]), float(hi[0])
        buf = np.empty(grid.max_plane_crossings)
        n = fill_crossings_scalar(buf, d, grid, lo, hi)
        assert n == count_crossings_scalar(d, grid, lo, hi) + 2
        self._check_row(buf, n, lo, hi)

    def test_scalar_fill_empty_window(self, grid):
        buf = np.empty(8)
        assert fill_crossings_scalar(buf, np.ones(3), grid, 2.0, 1.0) == 0

    def test_batch_fill_matches_scalar(self, grid):
        rng = np.random.default_rng(3)
        d = rng.normal(size=(30, 3))
        lo, hi = k_window(d, grid, 0.5, 8.0)
        counts = count_crossings_batch(d, grid, lo, hi)
        width = int(counts.max()) + 2
        padded = fill_crossings_batch(d, grid, lo, hi, width)
        buf = np.empty(grid.max_plane_crossings)
        for i in range(30):
            if not hi[i] > lo[i]:
                # empty window rows are all k_lo (zero-length segments)
                assert np.allclose(padded[i], lo[i])
                continue
            n = fill_crossings_scalar(buf, d[i], grid, lo[i], hi[i])
            assert np.allclose(np.sort(padded[i][: n]), np.sort(buf[:n]))
            # padding beyond the live region is k_hi
            assert np.allclose(padded[i][n:], hi[i])

    def test_batch_width_too_small_raises(self, grid):
        d = np.array([[0.31, 0.17, 0.05]])
        lo, hi = k_window(d, grid, 0.5, 9.0)
        if count_crossings_batch(d, grid, lo, hi)[0] > 0:
            with pytest.raises(ValueError, match="width"):
                fill_crossings_batch(d, grid, lo, hi, 2)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_all_crossings_found_property(self, seed):
        """Between consecutive sorted intersection values the bin index
        along each dimension must be constant (no crossing was missed)."""
        g = HKLGrid(basis=np.eye(3), minimum=(-2, -2, -1), maximum=(2, 2, 1),
                    bins=(6, 6, 3))
        rng = np.random.default_rng(seed)
        d = rng.normal(size=3)
        lo, hi = k_window(d[None, :], g, 0.5, 9.0)
        lo, hi = float(lo[0]), float(hi[0])
        if not hi > lo:
            return
        buf = np.empty(g.max_plane_crossings)
        n = fill_crossings_scalar(buf, d, g, lo, hi)
        ks = np.sort(buf[:n])
        widths = g.widths
        mins = np.array(g.minimum)
        for a, b in zip(ks[:-1], ks[1:]):
            if b - a < 1e-12:
                continue
            # sample three points inside the segment: same bin everywhere
            samples = np.array([a + t * (b - a) for t in (0.25, 0.5, 0.75)])
            coords = samples[:, None] * d[None, :]
            idx = np.floor((coords - mins) / widths)
            assert np.all(idx == idx[0]), f"crossing missed in segment ({a}, {b})"
