"""Additional grid coverage: slice thickness, transposed layouts, repr."""

import numpy as np
import pytest

from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3


class TestSliceThickness:
    def test_l_half_width_parameter(self):
        thin = HKLGrid.benzil_grid(bins=(11, 11, 1), l_half_width=0.05)
        thick = HKLGrid.benzil_grid(bins=(11, 11, 1), l_half_width=0.5)
        assert thin.minimum[2] == -0.05 and thin.maximum[2] == 0.05
        assert thick.minimum[2] == -0.5 and thick.maximum[2] == 0.5

    def test_thicker_slice_catches_more_events(self):
        rng = np.random.default_rng(0)
        coords = rng.uniform(-1, 1, size=(2000, 3))
        thin = HKLGrid(basis=np.eye(3), minimum=(-2, -2, -0.05),
                       maximum=(2, 2, 0.05), bins=(5, 5, 1))
        thick = HKLGrid(basis=np.eye(3), minimum=(-2, -2, -0.5),
                        maximum=(2, 2, 0.5), bins=(5, 5, 1))
        _, in_thin = thin.bin_index(coords)
        _, in_thick = thick.bin_index(coords)
        assert in_thick.sum() > in_thin.sum()

    def test_bixbyite_l_half_width(self):
        g = HKLGrid.bixbyite_grid(bins=(5, 5, 1), l_half_width=0.25)
        assert g.maximum[2] == 0.25


class TestExtent:
    def test_extent_parameter(self):
        g = HKLGrid.benzil_grid(bins=(5, 5, 1), extent=3.0)
        assert g.minimum[0] == -3.0 and g.maximum[1] == 3.0

    def test_widths_follow_extent(self):
        g = HKLGrid.benzil_grid(bins=(6, 6, 1), extent=3.0)
        assert g.widths[0] == pytest.approx(1.0)


class TestMisc:
    def test_repr_mentions_names(self):
        text = repr(HKLGrid.benzil_grid(bins=(5, 5, 1)))
        assert "[H,H,0]" in text

    def test_hist_repr(self):
        h = Hist3(HKLGrid.benzil_grid(bins=(5, 5, 1)))
        assert "coverage" in repr(h)

    def test_frozen(self):
        g = HKLGrid.benzil_grid(bins=(5, 5, 1))
        with pytest.raises(Exception):
            g.bins = (1, 1, 1)

    def test_custom_names_survive(self):
        g = HKLGrid(basis=np.eye(3), minimum=(0, 0, 0), maximum=(1, 1, 1),
                    bins=(2, 2, 2), names=("a", "b", "c"))
        assert g.names == ("a", "b", "c")
