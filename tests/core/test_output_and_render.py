"""Tests for reduced-data output files and terminal rendering."""

import numpy as np
import pytest

from repro.core.cross_section import compute_cross_section
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import load_md
from repro.core.output import load_reduced, save_reduced
from repro.core.render import SHADES, ascii_map, render_hist
from repro.nexus.h5lite import File, H5LiteError
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def result(tiny_experiment):
    exp = tiny_experiment
    return compute_cross_section(
        load_run=lambda i: load_md(exp.md_paths[i]),
        n_runs=len(exp.md_paths),
        grid=exp.grid,
        point_group=exp.point_group,
        flux=exp.flux,
        det_directions=exp.instrument.directions,
        solid_angles=exp.vanadium.detector_weights,
        backend="vectorized",
    )


class TestSaveLoadReduced:
    def test_roundtrip(self, result, tmp_path):
        path = str(tmp_path / "reduced.h5")
        save_reduced(path, result, notes="unit test")
        back = load_reduced(path)
        a = result.cross_section.signal
        b = back.cross_section.signal
        mask = ~np.isnan(a)
        assert np.array_equal(mask, ~np.isnan(b))
        assert np.allclose(a[mask], b[mask])
        assert np.allclose(back.binmd.signal, result.binmd.signal)
        assert np.allclose(back.mdnorm.signal, result.mdnorm.signal)

    def test_grid_restored(self, result, tmp_path):
        path = str(tmp_path / "reduced.h5")
        save_reduced(path, result)
        back = load_reduced(path)
        assert back.cross_section.grid.bins == result.cross_section.grid.bins
        assert back.cross_section.grid.names == result.cross_section.grid.names
        assert np.allclose(back.cross_section.grid.basis,
                           result.cross_section.grid.basis)

    def test_provenance_recorded(self, result, tmp_path):
        import repro

        path = str(tmp_path / "reduced.h5")
        save_reduced(path, result, notes="session 42")
        back = load_reduced(path)
        assert back.extras["package_version"] == repro.__version__
        assert back.extras["notes"] == "session 42"
        assert back.backend == result.backend
        assert back.n_runs == result.n_runs
        assert back.timings.seconds("MDNorm") > 0

    def test_non_root_result_rejected(self, result, tmp_path):
        from dataclasses import replace

        non_root = replace(result, cross_section=None)
        with pytest.raises(ValidationError, match="root rank"):
            save_reduced(str(tmp_path / "x.h5"), non_root)

    def test_wrong_file_rejected(self, tmp_path):
        path = str(tmp_path / "other.h5")
        with File(path, "w") as f:
            f.create_group("unrelated")
        with pytest.raises(H5LiteError, match="reduced"):
            load_reduced(path)

    def test_compression_shrinks_file(self, result, tmp_path):
        a = tmp_path / "compressed.h5"
        b = tmp_path / "raw.h5"
        save_reduced(str(a), result, compression="zlib")
        save_reduced(str(b), result, compression=None)
        assert a.stat().st_size < b.stat().st_size


class TestRender:
    def test_map_dimensions(self):
        data = np.random.default_rng(0).random((100, 100))
        art = ascii_map(data, width=40)
        lines = art.splitlines()
        assert 10 <= len(lines[0]) <= 60
        assert all(set(line) <= set(SHADES) for line in lines)

    def test_empty_and_nan_render_blank(self):
        art = ascii_map(np.full((20, 20), np.nan), width=20)
        assert set(art.replace("\n", "")) == {" "}

    def test_bright_spot_renders_bright(self):
        data = np.zeros((40, 40))
        data[20, 20] = 100.0
        art = ascii_map(data, width=40)
        assert "@" in art

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            ascii_map(np.zeros(10))

    def test_parameter_validation(self):
        with pytest.raises(Exception):
            ascii_map(np.zeros((4, 4)), width=1)
        with pytest.raises(Exception):
            ascii_map(np.zeros((4, 4)), percentile=0.0)

    def test_render_hist_banner(self, result):
        art = render_hist(result.binmd)
        first = art.splitlines()[0]
        assert "[H,H,0]" in first
        assert "coverage" in first
