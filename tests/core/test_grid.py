"""Unit tests for the HKL binning grid."""

import numpy as np
import pytest

from repro.core.grid import HKLGrid
from repro.crystal.goniometer import goniometer_omega_chi_phi
from repro.crystal.lattice import UnitCell
from repro.crystal.symmetry import point_group
from repro.crystal.ub import TWO_PI, UBMatrix
from repro.util.validation import ValidationError


@pytest.fixture()
def simple_grid():
    return HKLGrid(
        basis=np.eye(3),
        minimum=(-2.0, -2.0, -1.0),
        maximum=(2.0, 2.0, 1.0),
        bins=(4, 4, 2),
    )


class TestGeometry:
    def test_widths(self, simple_grid):
        assert np.allclose(simple_grid.widths, [1.0, 1.0, 1.0])

    def test_edges(self, simple_grid):
        e0, e1, e2 = simple_grid.edges
        assert np.allclose(e0, [-2, -1, 0, 1, 2])
        assert np.allclose(e2, [-1, 0, 1])

    def test_n_bins_total(self, simple_grid):
        assert simple_grid.n_bins_total == 32

    def test_max_plane_crossings_bound(self, simple_grid):
        # at most (bins_i + 1) edges per dim + 2 endpoints
        assert simple_grid.max_plane_crossings == 4 + 4 + 2 + 3 + 2

    def test_validation(self):
        with pytest.raises(ValidationError, match="empty"):
            HKLGrid(basis=np.eye(3), minimum=(0, 0, 0), maximum=(0, 1, 1), bins=(1, 1, 1))
        with pytest.raises(ValidationError, match=">= 1"):
            HKLGrid(basis=np.eye(3), minimum=(0, 0, 0), maximum=(1, 1, 1), bins=(0, 1, 1))
        with pytest.raises(ValidationError, match="linearly dependent"):
            HKLGrid(
                basis=np.array([[1, 1, 0], [1, 1, 0], [0, 0, 1]]).T,
                minimum=(0, 0, 0), maximum=(1, 1, 1), bins=(1, 1, 1),
            )


class TestBinIndex:
    def test_inside_points(self, simple_grid):
        flat, inside = simple_grid.bin_index(np.array([[-1.5, -1.5, -0.5]]))
        assert inside[0]
        assert flat[0] == 0  # corner bin

    def test_flat_index_layout(self, simple_grid):
        # c-order: i0 * (4*2) + i1 * 2 + i2
        flat, inside = simple_grid.bin_index(np.array([[0.5, -1.5, 0.5]]))
        assert inside[0]
        assert flat[0] == 2 * 8 + 0 * 2 + 1

    def test_outside_points_masked(self, simple_grid):
        coords = np.array([[5.0, 0.0, 0.0], [0.0, -3.0, 0.0], [0.0, 0.0, 2.0]])
        _, inside = simple_grid.bin_index(coords)
        assert not inside.any()

    def test_upper_boundary_excluded(self, simple_grid):
        """Matches Hist3.push floor semantics: c == max is outside."""
        _, inside = simple_grid.bin_index(np.array([[2.0, 0.0, 0.0]]))
        assert not inside[0]

    def test_lower_boundary_included(self, simple_grid):
        _, inside = simple_grid.bin_index(np.array([[-2.0, -2.0, -1.0]]))
        assert inside[0]

    def test_nd_batch_shape(self, simple_grid):
        coords = np.zeros((3, 5, 3))
        flat, inside = simple_grid.bin_index(coords)
        assert flat.shape == (3, 5)
        assert inside.shape == (3, 5)


class TestProjection:
    def test_benzil_basis_maps_110_to_first_axis(self):
        grid = HKLGrid.benzil_grid(bins=(10, 10, 1))
        c = grid.projection @ np.array([1.0, 1.0, 0.0])
        assert np.allclose(c, [1.0, 0.0, 0.0])
        c2 = grid.projection @ np.array([1.0, -1.0, 0.0])
        assert np.allclose(c2, [0.0, 1.0, 0.0])

    def test_bixbyite_grid_is_identity_projection(self):
        grid = HKLGrid.bixbyite_grid(bins=(10, 10, 1))
        assert np.allclose(grid.projection, np.eye(3))

    def test_paper_bin_counts_default(self):
        assert HKLGrid.benzil_grid().bins == (603, 603, 1)
        assert HKLGrid.bixbyite_grid().bins == (601, 601, 1)


class TestTransforms:
    cell = UnitCell(4.0, 4.0, 4.0)

    def test_identity_case_maps_q_to_hkl(self):
        ub = UBMatrix(cell=self.cell)
        grid = HKLGrid.bixbyite_grid(bins=(10, 10, 1))
        t = grid.transforms_for(ub)
        assert t.shape == (1, 3, 3)
        q = ub.hkl_to_q_sample([1.0, 2.0, -1.0])
        assert np.allclose(t[0] @ q, [1.0, 2.0, -1.0])

    def test_symmetry_op_count(self):
        ub = UBMatrix(cell=self.cell)
        grid = HKLGrid.bixbyite_grid(bins=(4, 4, 1))
        t = grid.transforms_for(ub, point_group("m-3"))
        assert t.shape == (24, 3, 3)

    def test_goniometer_composition(self):
        ub = UBMatrix(cell=self.cell)
        grid = HKLGrid.bixbyite_grid(bins=(4, 4, 1))
        r = goniometer_omega_chi_phi(37.0)
        t = grid.transforms_for(ub, goniometer=r)
        q_sample = ub.hkl_to_q_sample([2.0, 0.0, 1.0])
        q_lab = r @ q_sample
        assert np.allclose(t[0] @ q_lab, [2.0, 0.0, 1.0])

    def test_projection_composition(self):
        """Benzil's [H,H,0] basis: hkl (1,1,0) lands at grid coord (1,0,0)."""
        ub = UBMatrix(cell=self.cell)
        grid = HKLGrid.benzil_grid(bins=(10, 10, 1))
        t = grid.transforms_for(ub)
        q = ub.hkl_to_q_sample([1.0, 1.0, 0.0])
        assert np.allclose(t[0] @ q, [1.0, 0.0, 0.0])

    def test_accepts_raw_matrix(self):
        grid = HKLGrid.bixbyite_grid(bins=(4, 4, 1))
        raw = 0.25 * np.eye(3)
        t = grid.transforms_for(raw)
        assert np.allclose(t[0], np.linalg.inv(TWO_PI * raw))
