"""Unit tests for the Algorithm-1 driver."""

import numpy as np
import pytest

from repro.core.cross_section import compute_cross_section
from repro.core.md_event_workspace import load_md
from repro.mpi import run_world
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError


def _run_cs(exp, comm=None, backend="vectorized", **kw):
    return compute_cross_section(
        load_run=lambda i: load_md(exp.md_paths[i]),
        n_runs=len(exp.md_paths),
        grid=exp.grid,
        point_group=exp.point_group,
        flux=exp.flux,
        det_directions=exp.instrument.directions,
        solid_angles=exp.vanadium.detector_weights,
        comm=comm,
        backend=backend,
        **kw,
    )


class TestSingleRank:
    def test_result_structure(self, tiny_experiment):
        res = _run_cs(tiny_experiment)
        assert res.is_root
        assert res.n_runs == 3
        assert res.cross_section.grid.bins == tiny_experiment.grid.bins
        assert res.binmd.total() > 0
        assert res.mdnorm.total() > 0

    def test_cross_section_is_ratio(self, tiny_experiment):
        res = _run_cs(tiny_experiment)
        mask = res.mdnorm.signal != 0
        expected = res.binmd.signal[mask] / res.mdnorm.signal[mask]
        assert np.allclose(res.cross_section.signal[mask], expected)
        assert np.all(np.isnan(res.cross_section.signal[~mask]))

    def test_stage_timings_populated(self, tiny_experiment):
        timings = StageTimings(label="test")
        res = _run_cs(tiny_experiment, timings=timings)
        assert res.timings is timings
        for stage in ("UpdateEvents", "MDNorm", "BinMD", "Total"):
            assert timings.seconds(stage) > 0
        assert timings.timer("MDNorm").ncalls == 3  # one per run

    def test_backends_agree(self, tiny_experiment):
        a = _run_cs(tiny_experiment, backend="serial")
        b = _run_cs(tiny_experiment, backend="vectorized")
        assert np.allclose(a.binmd.signal, b.binmd.signal)
        assert np.allclose(a.mdnorm.signal, b.mdnorm.signal, rtol=1e-10)

    def test_zero_runs_rejected(self, tiny_experiment):
        with pytest.raises(ValidationError):
            compute_cross_section(
                load_run=lambda i: None,
                n_runs=0,
                grid=tiny_experiment.grid,
                point_group=tiny_experiment.point_group,
                flux=tiny_experiment.flux,
                det_directions=tiny_experiment.instrument.directions,
                solid_angles=tiny_experiment.vanadium.detector_weights,
            )

    def test_missing_ub_rejected(self, tiny_experiment):
        def load_no_ub(i):
            ws = load_md(tiny_experiment.md_paths[i])
            ws.ub_matrix = None
            return ws

        with pytest.raises(ValidationError, match="UB"):
            compute_cross_section(
                load_run=load_no_ub,
                n_runs=1,
                grid=tiny_experiment.grid,
                point_group=tiny_experiment.point_group,
                flux=tiny_experiment.flux,
                det_directions=tiny_experiment.instrument.directions,
                solid_angles=tiny_experiment.vanadium.detector_weights,
            )


class TestMPIDecomposition:
    @pytest.mark.parametrize("size", [2, 3])
    def test_matches_single_rank(self, tiny_experiment, size):
        single = _run_cs(tiny_experiment)

        def spmd(comm):
            res = _run_cs(tiny_experiment, comm=comm)
            if res.is_root:
                return res.binmd.signal, res.mdnorm.signal
            assert res.cross_section is None
            return None

        outs = run_world(size, spmd)
        binmd, mdnorm_sig = outs[0]
        assert np.allclose(binmd, single.binmd.signal)
        assert np.allclose(mdnorm_sig, single.mdnorm.signal, rtol=1e-10)
        assert all(o is None for o in outs[1:])

    def test_more_ranks_than_runs(self, tiny_experiment):
        single = _run_cs(tiny_experiment)

        def spmd(comm):
            res = _run_cs(tiny_experiment, comm=comm)
            return res.binmd.signal if res.is_root else None

        outs = run_world(5, spmd)  # ranks 3, 4 have no files
        assert np.allclose(outs[0], single.binmd.signal)


class TestImplInjection:
    def test_custom_impls_are_used(self, tiny_experiment):
        calls = {"binmd": 0, "mdnorm": 0}

        def binmd_impl(hist, events, transforms):
            calls["binmd"] += 1
            return hist

        def mdnorm_impl(hist, transforms, det_dirs, solid, flux, band, charge=1.0):
            calls["mdnorm"] += 1
            return hist

        res = _run_cs(
            tiny_experiment, binmd_impl=binmd_impl, mdnorm_impl=mdnorm_impl
        )
        assert calls == {"binmd": 3, "mdnorm": 3}
        assert res.binmd.total() == 0.0
