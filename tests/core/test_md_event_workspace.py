"""Unit tests for MDEvent conversion and SaveMD/LoadMD."""

import numpy as np
import pytest

from repro.core.md_event_workspace import (
    MDEventWorkspace,
    convert_to_md,
    load_md,
    save_md,
)
from repro.instruments.conversion import momentum_from_q_elastic
from repro.nexus.events import (
    COL_DETECTOR_ID,
    COL_Q,
    COL_RUN_INDEX,
    COL_SIGNAL,
    EventTable,
    RunData,
)
from repro.nexus.h5lite import File
from repro.util.validation import ValidationError


class TestConvertToMd:
    def test_basic_conversion(self, tiny_experiment):
        run = tiny_experiment.runs[0]
        ws = convert_to_md(run, tiny_experiment.instrument, run_index=4)
        assert ws.n_events == run.n_events
        assert np.all(ws.events.data[:, COL_RUN_INDEX] == 4)
        assert np.array_equal(
            ws.events.data[:, COL_DETECTOR_ID], run.detector_ids.astype(float)
        )
        assert np.array_equal(ws.events.data[:, COL_SIGNAL],
                              run.weights.astype(np.float64))

    def test_q_sample_is_goniometer_corrected(self, tiny_experiment):
        """Rotating Q_sample by the goniometer must give elastic Q_lab."""
        run = tiny_experiment.runs[1]  # omega = 40 deg
        ws = convert_to_md(run, tiny_experiment.instrument)
        q_lab = ws.events.q_sample @ run.goniometer.T
        k = momentum_from_q_elastic(q_lab)
        assert np.all(np.isfinite(k))
        k_lo, k_hi = ws.momentum_band
        assert np.all(k >= k_lo * (1 - 1e-9))
        assert np.all(k <= k_hi * (1 + 1e-9))

    def test_momentum_band_from_wavelength_band(self, tiny_experiment):
        run = tiny_experiment.runs[0]
        ws = convert_to_md(run, tiny_experiment.instrument)
        lam_lo, lam_hi = run.wavelength_band
        assert ws.momentum_band[0] == pytest.approx(2 * np.pi / lam_hi)
        assert ws.momentum_band[1] == pytest.approx(2 * np.pi / lam_lo)

    def test_invalid_pixel_rejected(self, tiny_experiment):
        run = tiny_experiment.runs[0]
        bad = RunData(
            run_number=0,
            detector_ids=np.array([10**6], dtype=np.uint32),
            tof=np.array([1000.0]),
            weights=np.array([1.0], dtype=np.float32),
            goniometer=np.eye(3),
            proton_charge=1.0,
            wavelength_band=run.wavelength_band,
        )
        with pytest.raises(ValidationError, match="references pixel"):
            convert_to_md(bad, tiny_experiment.instrument)


class TestWorkspaceValidation:
    def _ws(self, **over):
        kwargs = dict(
            events=EventTable.empty(),
            run_number=0,
            goniometer=np.eye(3),
            proton_charge=1.0,
            momentum_band=(2.0, 10.0),
        )
        kwargs.update(over)
        return MDEventWorkspace(**kwargs)

    def test_ok(self):
        assert self._ws().n_events == 0

    def test_bad_band(self):
        with pytest.raises(ValidationError, match="momentum_band"):
            self._ws(momentum_band=(10.0, 2.0))

    def test_bad_charge(self):
        with pytest.raises(ValidationError, match="proton_charge"):
            self._ws(proton_charge=-1.0)


class TestSaveLoad:
    def test_roundtrip(self, tiny_experiment, tmp_path):
        ws = tiny_experiment.workspaces[0]
        path = str(tmp_path / "ws.md.h5")
        save_md(path, ws)
        back = load_md(path)
        assert back.run_number == ws.run_number
        assert back.proton_charge == ws.proton_charge
        assert back.momentum_band == ws.momentum_band
        assert np.allclose(back.goniometer, ws.goniometer)
        assert np.allclose(back.ub_matrix, ws.ub_matrix)
        assert np.array_equal(back.events.data, ws.events.data)

    def test_on_disk_layout_is_transposed(self, tiny_experiment, tmp_path):
        """The file stores (8, n); loading performs the measured transpose."""
        ws = tiny_experiment.workspaces[0]
        path = str(tmp_path / "ws.md.h5")
        save_md(path, ws)
        with File(path, "r") as f:
            raw = f["MDEventWorkspace/event_data"]
            assert raw.shape == (8, ws.n_events)

    def test_loaded_table_is_c_contiguous(self, tiny_experiment, tmp_path):
        ws = tiny_experiment.workspaces[0]
        path = str(tmp_path / "ws.md.h5")
        save_md(path, ws)
        back = load_md(path)
        assert back.events.data.flags.c_contiguous

    def test_wrong_shape_rejected(self, tmp_path):
        path = str(tmp_path / "bad.md.h5")
        with File(path, "w") as f:
            grp = f.create_group("MDEventWorkspace")
            grp.create_dataset("event_data", data=np.zeros((5, 7)))
        with pytest.raises(ValidationError, match="event_data"):
            load_md(path)

    def test_roundtrip_without_ub(self, tmp_path):
        ws = MDEventWorkspace(
            events=EventTable.empty(),
            run_number=3,
            goniometer=np.eye(3),
            proton_charge=2.0,
            momentum_band=(1.0, 5.0),
        )
        path = str(tmp_path / "noub.md.h5")
        save_md(path, ws)
        assert load_md(path).ub_matrix is None
