"""Geometry/flux cache: unit tests + backend-equivalence properties.

Two layers of guarantees are enforced here:

1. **cache mechanics** — LRU byte budget, hit/miss/eviction counters,
   tag invalidation, content-digest keys (calibration or lattice change
   produces a different key, so stale reuse is impossible);
2. **bit-identity** — randomized property cases (50 seeds, cycling
   through the serial/threads/vectorized back ends) asserting that a
   cached reduction reproduces the uncached one *exactly*, cold and
   warm, for both MDNorm and BinMD, plus the documented cross-backend
   tolerance with the cache enabled.
"""

import numpy as np
import pytest

from repro.core import geom_cache as gc
from repro.core.binmd import bin_events
from repro.core.geom_cache import (
    DISABLED,
    FluxEntry,
    GeomCache,
    NullCache,
    default_cache,
    digest_array,
    freeze,
    set_default_cache,
)
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.mdnorm import _Scratch, mdnorm, prefetch_geometry
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.events import (
    COL_ERROR_SQ,
    COL_QX,
    COL_QY,
    COL_QZ,
    COL_SIGNAL,
    EventTable,
)

BACKENDS = ("serial", "threads", "vectorized")


# ---------------------------------------------------------------------------
# randomized case generation (deterministic per seed)
# ---------------------------------------------------------------------------

def _random_rotations(rng, n):
    ops = []
    for _ in range(n):
        q, r = np.linalg.qr(rng.normal(size=(3, 3)))
        q *= np.sign(np.diag(r))  # deterministic orientation
        ops.append(q)
    return np.stack(ops)


def _random_case(seed):
    rng = np.random.default_rng(seed)
    n_det = int(rng.integers(8, 40))
    n_ops = int(rng.integers(1, 4))
    dets = rng.normal(size=(n_det, 3))
    dets /= np.linalg.norm(dets, axis=1, keepdims=True)
    transforms = _random_rotations(rng, n_ops)
    grid = HKLGrid(
        basis=np.eye(3),
        minimum=(-2.0 - rng.random(), -2.0, -0.5),
        maximum=(2.0, 2.0 + rng.random(), 0.5),
        bins=(int(rng.integers(6, 20)), int(rng.integers(6, 20)), 1),
    )
    k = np.linspace(0.8, 10.0, 48)
    flux = FluxSpectrum(momentum=k, density=0.5 + rng.random(48))
    band = (1.0 + rng.random(), 6.0 + 3.0 * rng.random())
    solid = rng.random(n_det)
    charge = float(0.5 + rng.random())
    return grid, transforms, dets, solid, flux, band, charge


def _random_events(seed, n_events=300):
    rng = np.random.default_rng(10_000 + seed)
    data = np.zeros((n_events, 8), dtype=np.float64)
    data[:, COL_QX] = rng.uniform(-3.0, 3.0, n_events)
    data[:, COL_QY] = rng.uniform(-3.0, 3.0, n_events)
    data[:, COL_QZ] = rng.uniform(-0.8, 0.8, n_events)
    data[:, COL_SIGNAL] = rng.random(n_events)
    data[:, COL_ERROR_SQ] = rng.random(n_events)
    return data


def _flux_entry(key, nbytes, tag=None):
    """A cache entry of an exact byte size (for LRU accounting tests)."""
    n = max(nbytes // 16, 1)
    arr = np.zeros(n, dtype=np.float64)
    return FluxEntry(key=("flux-table", key), tag=tag,
                     momentum=arr, cumulative=arr.copy())


# ---------------------------------------------------------------------------
# cache mechanics
# ---------------------------------------------------------------------------

class TestDigestsAndKeys:
    def test_digest_sensitive_to_content(self):
        a = np.arange(10.0)
        b = a.copy()
        assert digest_array(a) == digest_array(b)
        b[3] += 1e-12
        assert digest_array(a) != digest_array(b)

    def test_digest_sensitive_to_dtype_and_shape(self):
        a = np.zeros(8, dtype=np.float64)
        assert digest_array(a) != digest_array(a.astype(np.float32))
        assert digest_array(a) != digest_array(a.reshape(2, 4))

    def test_calibration_change_changes_geometry_key(self):
        grid, transforms, dets, solid, flux, band, _ = _random_case(0)
        key = GeomCache.geometry_key(grid, transforms, dets, band, solid, flux)
        mutated = solid.copy()
        mutated[0] *= 1.0000001
        key2 = GeomCache.geometry_key(grid, transforms, dets, band, mutated, flux)
        assert key != key2

    def test_lattice_change_changes_geometry_key(self):
        grid, transforms, dets, solid, flux, band, _ = _random_case(1)
        key = GeomCache.geometry_key(grid, transforms, dets, band, solid, flux)
        rotated = transforms.copy()
        rotated[0] = -rotated[0]
        key2 = GeomCache.geometry_key(grid, rotated, dets, band, solid, flux)
        assert key != key2

    def test_backend_is_not_part_of_the_key(self):
        """Keys are content digests only — one entry serves all back ends."""
        grid, transforms, dets, solid, flux, band, _ = _random_case(2)
        keys = {
            GeomCache.geometry_key(grid, transforms, dets, band, solid, flux)
            for _ in BACKENDS
        }
        assert len(keys) == 1

    def test_freeze_is_read_only(self):
        arr = freeze(np.arange(4.0))
        with pytest.raises(ValueError):
            arr[0] = 1.0


class TestLRU:
    def test_hit_miss_counters(self):
        cache = GeomCache(byte_budget=1 << 20)
        e = _flux_entry("a", 256)
        assert cache.get(e.key) is None
        assert cache.stats.misses == 1
        assert cache.put(e)
        assert cache.get(e.key) is e
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_byte_accounting(self):
        cache = GeomCache(byte_budget=1 << 20)
        e = _flux_entry("a", 1024)
        cache.put(e)
        assert cache.current_bytes == e.nbytes
        cache.put(_flux_entry("a", 2048))  # replace same key
        assert len(cache) == 1
        assert cache.current_bytes != e.nbytes

    def test_eviction_is_lru_ordered(self):
        cache = GeomCache(byte_budget=3000)
        a, b, c = (_flux_entry(k, 1000) for k in "abc")
        for e in (a, b, c):
            cache.put(e)
        cache.get(a.key)  # touch a: b is now least recent
        cache.put(_flux_entry("d", 1000))
        assert a.key in cache
        assert b.key not in cache
        assert cache.stats.evictions == 1
        assert cache.current_bytes <= cache.byte_budget

    def test_oversize_entry_skipped(self):
        cache = GeomCache(byte_budget=128)
        assert not cache.put(_flux_entry("big", 100_000))
        assert cache.stats.oversize_skips == 1
        assert len(cache) == 0
        assert not cache.accepts(100_000)
        assert cache.accepts(16)

    def test_invalidate_by_tag(self):
        cache = GeomCache(byte_budget=1 << 20)
        cache.put(_flux_entry("a", 256, tag="run:0"))
        cache.put(_flux_entry("b", 256, tag="run:1"))
        cache.put(_flux_entry("c", 256, tag="run:0"))
        assert cache.invalidate("run:0") == 2
        assert len(cache) == 1
        assert cache.stats.invalidations == 2

    def test_clear(self):
        cache = GeomCache(byte_budget=1 << 20)
        cache.put(_flux_entry("a", 256))
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_note_update_reaccounts_growth(self):
        cache = GeomCache(byte_budget=1 << 20)
        e = _flux_entry("a", 256)
        cache.put(e)
        before = cache.current_bytes
        e.cumulative = np.zeros(1024, dtype=np.float64)  # entry grew in place
        assert cache.note_update(e)
        assert cache.current_bytes > before
        assert cache.stats.updates == 1

    def test_null_cache_never_stores(self):
        null = NullCache()
        assert not null.enabled
        e = _flux_entry("a", 16)
        assert not null.put(e)
        assert null.get(e.key) is None
        assert not null.accepts(1)

    def test_default_cache_swap_and_restore(self):
        original = default_cache()
        try:
            mine = GeomCache(byte_budget=4096)
            assert set_default_cache(mine) is mine
            assert gc.resolve(None) is mine
            assert gc.resolve(DISABLED) is DISABLED
        finally:
            set_default_cache(original)
        assert default_cache() is original


class TestFluxTable:
    def test_second_lookup_hits(self):
        _, _, _, _, flux, _, _ = _random_case(3)
        cache = GeomCache(byte_budget=1 << 20)
        k1, c1 = cache.flux_table(flux)
        k2, c2 = cache.flux_table(flux)
        assert k1 is k2 and c1 is c2
        assert cache.stats.hits == 1
        assert not k1.flags.writeable
        assert np.array_equal(k1, flux.momentum)
        assert np.array_equal(c1, flux._cumulative)

    def test_disabled_passthrough(self):
        _, _, _, _, flux, _, _ = _random_case(4)
        k, c = DISABLED.flux_table(flux)
        assert np.array_equal(k, flux.momentum)
        assert np.array_equal(c, flux._cumulative)


# ---------------------------------------------------------------------------
# backend-equivalence property tests (the ISSUE's >= 50 randomized cases)
# ---------------------------------------------------------------------------

class TestMdnormCachedEqualsUncached:
    @pytest.mark.parametrize("seed", range(50))
    def test_cold_and_warm_match_uncached_exactly(self, seed):
        """Cached (cold insert and warm replay) == uncached, bit for bit,
        on the back end this seed exercises."""
        grid, transforms, dets, solid, flux, band, charge = _random_case(seed)
        backend = BACKENDS[seed % len(BACKENDS)]

        ref = Hist3(grid)
        mdnorm(ref, transforms, dets, solid, flux, band, charge=charge,
               backend=backend, cache=DISABLED)

        cache = GeomCache()
        cold = Hist3(grid)
        mdnorm(cold, transforms, dets, solid, flux, band, charge=charge,
               backend=backend, cache=cache)
        warm = Hist3(grid)
        mdnorm(warm, transforms, dets, solid, flux, band, charge=charge,
               backend=backend, cache=cache)

        assert np.array_equal(cold.signal, ref.signal)
        assert np.array_equal(warm.signal, ref.signal)
        assert cache.stats.misses > 0
        assert cache.stats.hits > 0

    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_serial_vectorized_within_tolerance_with_cache(self, seed):
        """Documented cross-backend tolerance holds with caching on
        (shared cache: backend-agnostic keys serve both back ends)."""
        grid, transforms, dets, solid, flux, band, charge = _random_case(seed)
        cache = GeomCache()
        results = {}
        for backend in ("serial", "vectorized"):
            h = Hist3(grid)
            mdnorm(h, transforms, dets, solid, flux, band, charge=charge,
                   backend=backend, cache=cache)
            results[backend] = h.signal
        assert np.allclose(results["serial"], results["vectorized"],
                           rtol=1e-10, atol=1e-15)
        # the second back end reused the first's geometry entry
        assert cache.stats.hits > 0

    def test_charge_reuses_charge_independent_plan(self):
        """The deposit plan is charge-independent: a warm call at a new
        charge still matches its own uncached reduction exactly."""
        grid, transforms, dets, solid, flux, band, _ = _random_case(7)
        cache = GeomCache()
        warmup = Hist3(grid)
        mdnorm(warmup, transforms, dets, solid, flux, band, charge=1.0,
               backend="vectorized", cache=cache)
        for charge in (0.25, 3.5):
            ref = Hist3(grid)
            mdnorm(ref, transforms, dets, solid, flux, band, charge=charge,
                   backend="vectorized", cache=DISABLED)
            warm = Hist3(grid)
            mdnorm(warm, transforms, dets, solid, flux, band, charge=charge,
                   backend="vectorized", cache=cache)
            assert np.array_equal(warm.signal, ref.signal)

    def test_zero_charge_safe_with_cache(self):
        grid, transforms, dets, solid, flux, band, _ = _random_case(8)
        cache = GeomCache()
        for _ in range(2):
            h = Hist3(grid)
            mdnorm(h, transforms, dets, solid, flux, band, charge=0.0,
                   backend="vectorized", cache=cache)
            assert h.total() == 0.0

    def test_explicit_width_bypasses_plan_but_stays_exact(self):
        grid, transforms, dets, solid, flux, band, charge = _random_case(9)
        ref = Hist3(grid)
        mdnorm(ref, transforms, dets, solid, flux, band, charge=charge,
               backend="vectorized", cache=DISABLED, width=64)
        cache = GeomCache()
        for _ in range(2):
            h = Hist3(grid)
            mdnorm(h, transforms, dets, solid, flux, band, charge=charge,
                   backend="vectorized", cache=cache, width=64)
            assert np.array_equal(h.signal, ref.signal)

    def test_prefetch_then_reduce(self):
        grid, transforms, dets, solid, flux, band, charge = _random_case(11)
        cache = GeomCache()
        assert prefetch_geometry(grid, transforms, dets, band, solid, flux,
                                 backend="vectorized", cache=cache)
        # idempotent: already warmed
        assert not prefetch_geometry(grid, transforms, dets, band, solid, flux,
                                     backend="vectorized", cache=cache)
        ref = Hist3(grid)
        mdnorm(ref, transforms, dets, solid, flux, band, charge=charge,
               backend="vectorized", cache=DISABLED)
        h = Hist3(grid)
        before = cache.stats.hits
        mdnorm(h, transforms, dets, solid, flux, band, charge=charge,
               backend="vectorized", cache=cache)
        assert cache.stats.hits > before
        assert np.array_equal(h.signal, ref.signal)


class TestBinmdCachedEqualsUncached:
    @pytest.mark.parametrize("seed", range(0, 50, 2))
    def test_cold_and_warm_match_uncached_exactly(self, seed):
        grid, transforms, _, _, _, _, _ = _random_case(seed)
        events = _random_events(seed)
        backend = BACKENDS[seed % len(BACKENDS)]

        ref = Hist3(grid, track_errors=True)
        bin_events(ref, events, transforms, backend=backend, cache=DISABLED)

        cache = GeomCache()
        cold = Hist3(grid, track_errors=True)
        bin_events(cold, events, transforms, backend=backend, cache=cache)
        warm = Hist3(grid, track_errors=True)
        bin_events(warm, events, transforms, backend=backend, cache=cache)

        assert np.array_equal(cold.signal, ref.signal)
        assert np.array_equal(warm.signal, ref.signal)
        assert np.array_equal(cold.error_sq, ref.error_sq)
        assert np.array_equal(warm.error_sq, ref.error_sq)

    def test_warm_hit_counted_on_device_backend(self):
        grid, transforms, _, _, _, _, _ = _random_case(12)
        events = EventTable(_random_events(12))
        cache = GeomCache()
        a = Hist3(grid)
        bin_events(a, events, transforms, backend="vectorized", cache=cache)
        assert cache.stats.inserts >= 1
        b = Hist3(grid)
        bin_events(b, events, transforms, backend="vectorized", cache=cache)
        assert cache.stats.hits >= 1
        assert np.array_equal(a.signal, b.signal)

    def test_event_table_change_changes_key(self):
        grid, transforms, _, _, _, _, _ = _random_case(13)
        events = _random_events(13)
        cache = GeomCache()
        bin_events(Hist3(grid), events, transforms, backend="vectorized",
                   cache=cache)
        mutated = events.copy()
        mutated[0, COL_SIGNAL] += 1.0
        before = cache.stats.misses
        bin_events(Hist3(grid), mutated, transforms, backend="vectorized",
                   cache=cache)
        assert cache.stats.misses > before


# ---------------------------------------------------------------------------
# scratch-buffer reuse safety (the audited latent bug class)
# ---------------------------------------------------------------------------

class TestScratchSafety:
    def test_get_reallocates_when_width_grows(self):
        """A retained _Scratch asked for a wider buffer must re-allocate,
        never hand back the old (too small) one."""
        scratch = _Scratch(4)
        small = scratch.get()
        assert small.size >= 4
        scratch.width = 16  # simulate unsafe cross-call reuse
        grown = scratch.get()
        assert grown.size >= 16

    def test_get_is_thread_local(self):
        import threading

        scratch = _Scratch(8)
        main_buf = scratch.get()
        seen = {}

        def worker():
            seen["buf"] = scratch.get()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["buf"] is not main_buf

    def test_interleaved_grids_do_not_alias_state(self):
        """Two grids with different widths reduced alternately against
        one shared cache must each match their isolated reduction —
        no scratch buffer, cache entry or width leaks across calls."""
        grid_a, transforms, dets, solid, flux, band, charge = _random_case(20)
        grid_b = HKLGrid(
            basis=np.eye(3),
            minimum=(-1.5, -1.5, -0.5),
            maximum=(1.5, 1.5, 0.5),
            bins=(29, 5, 1),
        )
        refs = {}
        for name, grid in (("a", grid_a), ("b", grid_b)):
            h = Hist3(grid)
            mdnorm(h, transforms, dets, solid, flux, band, charge=charge,
                   backend="serial", cache=DISABLED)
            refs[name] = h.signal

        cache = GeomCache()
        for _ in range(2):  # interleave: a, b, a, b
            for name, grid in (("a", grid_a), ("b", grid_b)):
                h = Hist3(grid)
                mdnorm(h, transforms, dets, solid, flux, band, charge=charge,
                       backend="serial", cache=cache)
                assert np.array_equal(h.signal, refs[name]), name

    def test_interleaved_grids_vectorized_plans_do_not_alias(self):
        """Same interleave on the device back end, where the deposit
        plans (not scratch buffers) carry the per-grid state."""
        grid_a, transforms, dets, solid, flux, band, charge = _random_case(21)
        grid_b = HKLGrid(
            basis=np.eye(3),
            minimum=(-1.0, -2.5, -0.5),
            maximum=(2.5, 1.0, 0.5),
            bins=(7, 33, 1),
        )
        refs = {}
        for name, grid in (("a", grid_a), ("b", grid_b)):
            h = Hist3(grid)
            mdnorm(h, transforms, dets, solid, flux, band, charge=charge,
                   backend="vectorized", cache=DISABLED)
            refs[name] = h.signal

        cache = GeomCache()
        for _ in range(2):
            for name, grid in (("a", grid_a), ("b", grid_b)):
                h = Hist3(grid)
                mdnorm(h, transforms, dets, solid, flux, band, charge=charge,
                       backend="vectorized", cache=cache)
                assert np.array_equal(h.signal, refs[name]), name
        assert cache.stats.hits >= 2
