"""Tests for the near-real-time streaming reduction extension."""

import numpy as np
import pytest

from repro.core.cross_section import compute_cross_section
from repro.core.geom_cache import DISABLED, GeomCache
from repro.core.md_event_workspace import load_md
from repro.core.streaming import EventStream, StreamBatch, StreamingReduction
from repro.util.validation import ReproError, ValidationError


def _reduction(exp, backend="vectorized", geom_cache=None):
    return StreamingReduction(
        grid=exp.grid,
        point_group=exp.point_group,
        flux=exp.flux,
        instrument=exp.instrument,
        solid_angles=exp.vanadium.detector_weights,
        backend=backend,
        geom_cache=geom_cache,
    )


def _batch_reference(exp):
    return compute_cross_section(
        load_run=lambda i: load_md(exp.md_paths[i]),
        n_runs=len(exp.md_paths),
        grid=exp.grid,
        point_group=exp.point_group,
        flux=exp.flux,
        det_directions=exp.instrument.directions,
        solid_angles=exp.vanadium.detector_weights,
        backend="vectorized",
    )


class TestEventStream:
    def test_batches_partition_the_run(self, tiny_experiment):
        run = tiny_experiment.runs[0]
        stream = EventStream(run, batch_size=100)
        ids = np.concatenate([b.detector_ids for b in stream])
        tof = np.concatenate([b.tof for b in stream])
        assert np.array_equal(ids, run.detector_ids)
        assert np.array_equal(tof, run.tof)

    def test_n_batches(self, tiny_experiment):
        run = tiny_experiment.runs[0]
        stream = EventStream(run, batch_size=500)
        assert stream.n_batches == -(-run.n_events // 500)
        assert len(list(stream)) == stream.n_batches

    def test_batch_size_validated(self, tiny_experiment):
        with pytest.raises(Exception):
            EventStream(tiny_experiment.runs[0], batch_size=0)


class TestStreamingReduction:
    def test_final_state_equals_batch_workflow(self, tiny_experiment):
        """The defining invariant: streaming == batch, bit for bit."""
        exp = tiny_experiment
        streaming = _reduction(exp)
        for run in exp.runs:
            streaming.open_run(run)
            for batch in EventStream(run, batch_size=177):
                streaming.consume(batch)
            streaming.close_run(run.run_number)
        reference = _batch_reference(exp)
        assert np.allclose(streaming.binmd.signal, reference.binmd.signal)
        assert np.allclose(streaming.mdnorm_hist.signal,
                           reference.mdnorm.signal, rtol=1e-10)
        a = streaming.snapshot().signal
        b = reference.cross_section.signal
        mask = ~np.isnan(b)
        assert np.array_equal(mask, ~np.isnan(a))
        assert np.allclose(a[mask], b[mask])

    def test_batch_size_does_not_matter(self, tiny_experiment):
        exp = tiny_experiment
        results = []
        for batch_size in (37, 1200):
            streaming = _reduction(exp)
            for run in exp.runs[:1]:
                streaming.open_run(run)
                for batch in EventStream(run, batch_size=batch_size):
                    streaming.consume(batch)
            results.append(streaming.binmd.signal.copy())
        assert np.allclose(results[0], results[1])

    @pytest.mark.parametrize("cached", [False, True], ids=["nocache", "cache"])
    def test_batch_size_invariance_with_and_without_cache(
        self, tiny_experiment, cached
    ):
        """Results are independent of batch size (1 vs 4096), with and
        without the geometry cache — no batch-boundary state may leak
        into (or out of) cached geometry."""
        exp = tiny_experiment
        run = exp.runs[0]
        signals = {}
        norms = {}
        for batch_size in (1, 4096):
            cache = GeomCache() if cached else DISABLED
            streaming = _reduction(exp, geom_cache=cache)
            streaming.open_run(run)
            for batch in EventStream(run, batch_size=batch_size):
                streaming.consume(batch)
            signals[batch_size] = streaming.binmd.signal.copy()
            norms[batch_size] = streaming.mdnorm_hist.signal.copy()
            if cached:
                # one geometry computation at open_run; consuming event
                # batches must never insert per-batch entries
                assert streaming.cache_stats["hits"] == 0
                assert len(cache) >= 1
        assert np.array_equal(signals[1], signals[4096])
        assert np.array_equal(norms[1], norms[4096])

    def test_cache_shared_across_restreams(self, tiny_experiment):
        """Re-streaming the same run against one cache hits warm
        geometry and reproduces the cold stream bit for bit."""
        exp = tiny_experiment
        run = exp.runs[0]
        cache = GeomCache()
        results = []
        for _ in range(2):
            streaming = _reduction(exp, geom_cache=cache)
            streaming.open_run(run)
            for batch in EventStream(run, batch_size=256):
                streaming.consume(batch)
            results.append(
                (streaming.binmd.signal.copy(),
                 streaming.mdnorm_hist.signal.copy())
            )
        assert cache.stats.hits > 0
        assert np.array_equal(results[0][0], results[1][0])
        assert np.array_equal(results[0][1], results[1][1])

    def test_arbitrary_batch_sizes_property(self, tiny_experiment):
        """hypothesis: any batch size yields the reference histogram."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        exp = tiny_experiment
        reference = _reduction(exp)
        reference.open_run(exp.runs[0])
        for batch in EventStream(exp.runs[0], batch_size=10**9):
            reference.consume(batch)
        expected = reference.binmd.signal.copy()

        @given(batch_size=st.integers(1, 2000))
        @settings(max_examples=10, deadline=None)
        def check(batch_size):
            streaming = _reduction(exp)
            streaming.open_run(exp.runs[0])
            for batch in EventStream(exp.runs[0], batch_size=batch_size):
                streaming.consume(batch)
            assert np.allclose(streaming.binmd.signal, expected)

        check()

    def test_snapshots_accumulate_monotonically(self, tiny_experiment):
        exp = tiny_experiment
        streaming = _reduction(exp)
        run = exp.runs[0]
        streaming.open_run(run)
        coverage = []
        totals = []
        for batch in EventStream(run, batch_size=300):
            streaming.consume(batch)
            coverage.append(streaming.binmd.nonzero_fraction())
            totals.append(streaming.binmd.total())
        assert all(b >= a for a, b in zip(coverage, coverage[1:]))
        assert all(b >= a for a, b in zip(totals, totals[1:]))
        assert streaming.events_seen == run.n_events

    def test_normalization_available_before_events(self, tiny_experiment):
        """MDNorm is geometry-only: it lands at open_run time."""
        exp = tiny_experiment
        streaming = _reduction(exp)
        streaming.open_run(exp.runs[0])
        assert streaming.mdnorm_hist.total() > 0
        assert streaming.binmd.total() == 0.0

    def test_batch_before_open_rejected(self, tiny_experiment):
        exp = tiny_experiment
        streaming = _reduction(exp)
        batch = next(iter(EventStream(exp.runs[0], batch_size=10)))
        with pytest.raises(ReproError, match="before open_run"):
            streaming.consume(batch)

    def test_double_open_rejected(self, tiny_experiment):
        exp = tiny_experiment
        streaming = _reduction(exp)
        streaming.open_run(exp.runs[0])
        with pytest.raises(ValidationError, match="already open"):
            streaming.open_run(exp.runs[0])

    def test_open_without_ub_rejected(self, tiny_experiment):
        exp = tiny_experiment
        streaming = _reduction(exp)
        import copy

        run = copy.copy(exp.runs[0])
        run.ub_matrix = None
        with pytest.raises(ValidationError, match="UB"):
            streaming.open_run(run)

    def test_empty_batch_is_noop(self, tiny_experiment):
        exp = tiny_experiment
        streaming = _reduction(exp)
        streaming.open_run(exp.runs[0])
        empty = StreamBatch(
            run_number=exp.runs[0].run_number,
            detector_ids=np.empty(0, dtype=np.uint32),
            tof=np.empty(0),
            weights=np.empty(0, dtype=np.float32),
        )
        streaming.consume(empty)
        assert streaming.events_seen == 0

    def test_solid_angle_mismatch_rejected(self, tiny_experiment):
        exp = tiny_experiment
        with pytest.raises(Exception):
            StreamingReduction(
                grid=exp.grid,
                point_group=exp.point_group,
                flux=exp.flux,
                instrument=exp.instrument,
                solid_angles=np.ones(3),
            )
