"""Unit tests for the file-driven reduction workflow."""

import numpy as np
import pytest

from repro.core.cross_section import compute_cross_section
from repro.core.md_event_workspace import load_md
from repro.core.workflow import ReductionWorkflow, WorkflowConfig
from repro.instruments.corelli import make_corelli
from repro.util.validation import ValidationError


def _config(exp, **over):
    kwargs = dict(
        md_paths=exp.md_paths,
        flux_path=exp.flux_path,
        vanadium_path=exp.vanadium_path,
        instrument=exp.instrument,
        grid=exp.grid,
        point_group=exp.point_group,
        backend="vectorized",
    )
    kwargs.update(over)
    return WorkflowConfig(**kwargs)


class TestWorkflow:
    def test_matches_direct_compute(self, tiny_experiment):
        wf = ReductionWorkflow(_config(tiny_experiment))
        res = wf.run()
        direct = compute_cross_section(
            load_run=lambda i: load_md(tiny_experiment.md_paths[i]),
            n_runs=3,
            grid=tiny_experiment.grid,
            point_group=tiny_experiment.point_group,
            flux=tiny_experiment.flux,
            det_directions=tiny_experiment.instrument.directions,
            solid_angles=tiny_experiment.vanadium.detector_weights,
            backend="vectorized",
        )
        assert np.allclose(res.binmd.signal, direct.binmd.signal)
        assert np.allclose(res.mdnorm.signal, direct.mdnorm.signal, rtol=1e-10)

    def test_reads_corrections_from_files(self, tiny_experiment):
        wf = ReductionWorkflow(_config(tiny_experiment))
        assert wf.flux.total == pytest.approx(tiny_experiment.flux.total)
        assert np.allclose(
            wf.solid_angles, tiny_experiment.vanadium.detector_weights
        )

    def test_empty_paths_rejected(self, tiny_experiment):
        with pytest.raises(ValidationError):
            _config(tiny_experiment, md_paths=[])

    def test_vanadium_instrument_mismatch_rejected(self, tiny_experiment):
        wrong = make_corelli(n_pixels=100)
        with pytest.raises(ValidationError, match="vanadium"):
            ReductionWorkflow(_config(tiny_experiment, instrument=wrong))

    def test_sort_impl_flows_through(self, tiny_experiment):
        comb = ReductionWorkflow(_config(tiny_experiment, sort_impl="comb")).run()
        lib = ReductionWorkflow(_config(tiny_experiment, sort_impl="library")).run()
        assert np.allclose(comb.mdnorm.signal, lib.mdnorm.signal)
