"""Unit tests for the SPMD world launcher."""

import threading

import numpy as np
import pytest

from repro.mpi import MPIError, SUM, run_world
from repro.util import trace as trace_mod


class TestRunWorld:
    def test_results_in_rank_order(self):
        assert run_world(4, lambda comm: comm.rank * 2) == [0, 2, 4, 6]

    def test_single_rank(self):
        assert run_world(1, lambda comm: comm.size) == [1]

    def test_args_forwarded(self):
        out = run_world(2, lambda comm, a, b=0: a + b + comm.rank, 10, b=5)
        assert out == [15, 16]

    def test_invalid_size(self):
        with pytest.raises(MPIError):
            run_world(0, lambda comm: None)

    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 failed")
            return comm.rank

        with pytest.raises(ValueError, match="rank 1 failed"):
            run_world(3, fn)

    def test_failing_rank_does_not_deadlock_collectives(self):
        """A rank that dies mid-collective must not hang the world."""

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("dead before the barrier")
            return comm.allreduce(1, SUM)

        with pytest.raises(RuntimeError, match="dead before the barrier"):
            run_world(3, fn)

    def test_concurrent_ranks_see_consistent_world(self):
        def fn(comm):
            gathered = comm.allgather(comm.rank**2)
            return sum(gathered)

        assert run_world(4, fn) == [14, 14, 14, 14]


class TestAbortAttribution:
    """Error semantics of the MPI_Abort analogue."""

    def test_single_rank_failure_is_root_cause(self):
        """The failing rank's exception comes back, not its peers'
        broken-barrier fallout."""

        def fn(comm):
            if comm.rank == 2:
                raise KeyError("rank 2 root cause")
            return comm.allreduce(comm.rank, SUM)

        with pytest.raises(KeyError, match="rank 2 root cause"):
            run_world(4, fn)

    def test_first_failing_rank_by_rank_order_wins(self):
        """Two root causes -> the lowest rank's exception is raised."""
        gate = threading.Barrier(2)

        def fn(comm):
            if comm.rank in (1, 3):
                gate.wait(timeout=10)  # both fail, deterministically
                raise ValueError(f"rank {comm.rank} failed")
            return comm.rank

        with pytest.raises(ValueError, match="rank 1 failed"):
            run_world(4, fn)

    def test_all_rank_barrier_abort_raises_mpierror(self):
        """When only broken-barrier errors remain (no root cause survived
        as a regular exception), the launcher raises an attributed
        MPIError instead of a bare BrokenBarrierError."""

        def fn(comm):
            if comm.rank == 0:
                # break the collective machinery directly: peers see
                # BrokenBarrierError, and so does this rank
                comm._world.barrier.abort()
            return comm.barrier()

        with pytest.raises(MPIError, match="aborted inside a collective"):
            run_world(3, fn)

    def test_mpierror_chains_first_broken_barrier(self):
        def fn(comm):
            comm._world.barrier.abort()
            return comm.barrier()

        with pytest.raises(MPIError) as excinfo:
            run_world(2, fn)
        assert isinstance(excinfo.value.__cause__, threading.BrokenBarrierError)


class TestRankAttribution:
    """run_world attributes each rank's spans to its rank stream."""

    def test_ranks_carry_rank_spans(self):
        tracer = trace_mod.Tracer(label="runner-test")

        def fn(comm):
            with trace_mod.active_tracer().span("work", kind="test"):
                pass
            return comm.rank

        with trace_mod.use_tracer(tracer):
            run_world(3, fn)

        spans = tracer.records
        rank_spans = [r for r in spans if r["name"] == "rank"]
        assert sorted(r["attrs"]["rank"] for r in rank_spans) == [0, 1, 2]
        work = [r for r in spans if r["name"] == "work"]
        assert sorted(r["rank"] for r in work) == [0, 1, 2]
        # every work span nests inside its own rank's 'rank' span
        by_id = {r["span_id"]: r for r in spans}
        for w in work:
            parent = by_id[w["parent_id"]]
            assert parent["name"] == "rank"
            assert parent["rank"] == w["rank"]

    def test_rank_context_cleared_after_world(self):
        run_world(2, lambda comm: comm.rank)
        assert trace_mod.current_rank() is None
