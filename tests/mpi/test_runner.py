"""Unit tests for the SPMD world launcher."""

import numpy as np
import pytest

from repro.mpi import MPIError, SUM, run_world


class TestRunWorld:
    def test_results_in_rank_order(self):
        assert run_world(4, lambda comm: comm.rank * 2) == [0, 2, 4, 6]

    def test_single_rank(self):
        assert run_world(1, lambda comm: comm.size) == [1]

    def test_args_forwarded(self):
        out = run_world(2, lambda comm, a, b=0: a + b + comm.rank, 10, b=5)
        assert out == [15, 16]

    def test_invalid_size(self):
        with pytest.raises(MPIError):
            run_world(0, lambda comm: None)

    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 failed")
            return comm.rank

        with pytest.raises(ValueError, match="rank 1 failed"):
            run_world(3, fn)

    def test_failing_rank_does_not_deadlock_collectives(self):
        """A rank that dies mid-collective must not hang the world."""

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("dead before the barrier")
            return comm.allreduce(1, SUM)

        with pytest.raises(RuntimeError, match="dead before the barrier"):
            run_world(3, fn)

    def test_concurrent_ranks_see_consistent_world(self):
        def fn(comm):
            gathered = comm.allgather(comm.rank**2)
            return sum(gathered)

        assert run_world(4, fn) == [14, 14, 14, 14]
