"""Fault tolerance of the in-process MPI layer: barrier timeouts,
party shrinkage on rank death, dead-slot masking in collectives, and
the runner's error attribution (satellite: ranks must not hang after a
peer dies).  The elastic-executor cases at the bottom pin the stealing
queue's exactly-once accounting under rank death and quarantine, read
back from the shard ids in the trace stream."""

import threading
import time

import numpy as np
import pytest

from repro.mpi import (
    SUM,
    BarrierTimeoutError,
    FaultTolerantBarrier,
    MPIError,
    run_world,
)
from repro.util import trace as trace_mod
from repro.util.faults import RankCrashError


class TestFaultTolerantBarrier:
    def test_plain_rendezvous(self):
        barrier = FaultTolerantBarrier(3)
        out = []

        def worker():
            out.append(barrier.wait(timeout=10.0))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert sorted(out) == [0, 1, 2]

    def test_reusable_generations(self):
        barrier = FaultTolerantBarrier(2)
        hits = []

        def worker():
            for _ in range(5):
                barrier.wait(timeout=10.0)
                hits.append(1)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(hits) == 10

    def test_timeout_raises_in_expiring_thread(self):
        barrier = FaultTolerantBarrier(2)
        t0 = time.monotonic()
        with pytest.raises(BarrierTimeoutError, match="timed out"):
            barrier.wait(timeout=0.05)
        assert time.monotonic() - t0 < 5.0
        assert barrier.broken

    def test_timeout_breaks_barrier_for_peers(self):
        barrier = FaultTolerantBarrier(3)
        errors = []

        def early_waiter():
            try:
                barrier.wait(timeout=10.0)
            except threading.BrokenBarrierError:
                errors.append("broken")

        t = threading.Thread(target=early_waiter)
        t.start()
        time.sleep(0.02)
        with pytest.raises(BarrierTimeoutError):
            barrier.wait(timeout=0.05)
        t.join(timeout=10.0)
        assert errors == ["broken"]

    def test_default_timeout_used(self):
        barrier = FaultTolerantBarrier(2, default_timeout=0.05)
        with pytest.raises(BarrierTimeoutError):
            barrier.wait()

    def test_abort_matches_threading_barrier(self):
        barrier = FaultTolerantBarrier(2)
        barrier.abort()
        with pytest.raises(threading.BrokenBarrierError):
            barrier.wait(timeout=1.0)

    def test_mark_failed_shrinks_parties(self):
        barrier = FaultTolerantBarrier(3)
        barrier.mark_failed(2)
        assert barrier.alive == 2
        assert barrier.parties == 3

    def test_mark_failed_releases_pending_waiters(self):
        """The un-hang property: a waiter blocked on a rank that dies
        before the rendezvous is released when the death is declared."""
        barrier = FaultTolerantBarrier(3)
        released = threading.Event()

        def waiter():
            barrier.wait(timeout=30.0)
            released.set()

        t1 = threading.Thread(target=waiter)
        t2 = threading.Thread(target=waiter)
        t1.start(), t2.start()
        time.sleep(0.02)
        assert not released.is_set()
        barrier.mark_failed(2)  # 2 waiters now satisfy the reduced count
        t1.join(timeout=10.0), t2.join(timeout=10.0)
        assert released.is_set()
        assert not barrier.broken

    def test_mark_failed_never_drops_last_party(self):
        barrier = FaultTolerantBarrier(1)
        barrier.mark_failed(0)
        assert barrier.alive == 1


class TestDeadRankCollectives:
    """Collectives over a world with a marked-dead rank."""

    def _world(self, size, fn, **kw):
        return run_world(size, fn, barrier_timeout=30.0, **kw)

    def test_allreduce_skips_dead_rank(self):
        def fn(comm):
            if comm.rank == 1:
                comm.mark_failed({"runs": [1]})
                return None
            return comm.allreduce(10 + comm.rank, SUM)

        out = self._world(3, fn)
        assert out[0] == out[2] == 22  # 10 + 12, rank 1 masked
        assert out[1] is None

    def test_allgather_maps_dead_to_none(self):
        def fn(comm):
            if comm.rank == 0:
                comm.mark_failed()
                return None
            return comm.allgather(comm.rank)

        out = self._world(3, fn)
        assert out[1] == out[2] == [None, 1, 2]

    def test_array_reduce_skips_dead_rank(self):
        def fn(comm):
            send = np.full(4, float(comm.rank + 1))
            if comm.rank == 2:
                comm.mark_failed()
                return None
            recv = np.zeros(4) if comm.rank == 0 else None
            comm.Reduce(send, recv, SUM, root=0)
            return recv

        out = self._world(3, fn)
        assert np.array_equal(out[0], np.full(4, 3.0))  # 1 + 2, rank 2 dead

    def test_bcast_from_dead_root_raises(self):
        def fn(comm):
            if comm.rank == 0:
                comm.mark_failed()
                return None
            with pytest.raises(MPIError, match="root rank 0 is dead"):
                comm.bcast("payload", root=0)
            return "survived"

        out = self._world(2, fn)
        assert out[1] == "survived"

    def test_survivors_see_failed_disposition(self):
        def fn(comm):
            if comm.rank == 1:
                comm.mark_failed({"runs": [4, 5]})
                return None
            comm.barrier()  # completes with the shrunk party count
            return (comm.failed_ranks(), comm.alive_ranks(),
                    comm.is_alive(1))

        out = self._world(3, fn)
        failed, alive, one_alive = out[0]
        assert failed == {1: {"runs": [4, 5]}}
        assert alive == [0, 2]
        assert one_alive is False


class TestKillOneRank:
    """The satellite scenario: one rank dies mid-campaign and the rest
    of the world finishes instead of hanging."""

    def test_world_completes_after_rank_death(self):
        def fn(comm):
            if comm.rank == 1:
                # simulated node failure before this rank's collectives
                comm.mark_failed({"runs": list(range(2, 4))})
                return None
            # survivors: pick up the dead rank's leftovers, then reduce
            comm.barrier()
            leftovers = sorted(
                r for info in comm.failed_ranks().values()
                for r in info.get("runs", ())
            )
            share = [r for i, r in enumerate(leftovers)
                     if i % len(comm.alive_ranks())
                     == comm.alive_ranks().index(comm.rank)]
            return comm.allreduce(len(share), SUM)

        out = run_world(3, fn, barrier_timeout=30.0)
        assert out[1] is None
        assert out[0] == out[2] == 2  # both leftover runs reassigned

    def test_rank_crash_error_is_not_retried_into_hang(self):
        """A RankCrashError escaping a rank propagates as the root cause
        (single-rank worlds have no survivors to degrade to)."""
        def fn(comm):
            raise RankCrashError("run", "rank_crash", 1)

        with pytest.raises(RankCrashError):
            run_world(1, fn, barrier_timeout=10.0)

    def test_silent_death_times_out_not_hangs(self):
        """A rank that simply never shows up (no mark_failed — the crash
        was too hard to announce) must produce a timeout, not a hang."""
        def fn(comm):
            if comm.rank == 0:
                return None  # vanishes without declaring death
            comm.barrier()
            return comm.rank

        t0 = time.monotonic()
        with pytest.raises(BarrierTimeoutError):
            run_world(2, fn, barrier_timeout=0.2)
        assert time.monotonic() - t0 < 30.0

    def test_timeout_attribution_beats_broken_barrier(self):
        """Peers of the timing-out rank see BrokenBarrierError; the
        launcher must surface the BarrierTimeoutError as the cause."""
        def fn(comm):
            if comm.rank == 2:
                return None  # never reaches the rendezvous
            comm.barrier()
            return comm.rank

        with pytest.raises(BarrierTimeoutError):
            run_world(3, fn, barrier_timeout=0.2)


# ---------------------------------------------------------------------------
# elastic executor under rank death / quarantine (ISSUE 7 satellite)
# ---------------------------------------------------------------------------

N_STEAL_RUNS = 3
N_STEAL_SHARDS = 2


@pytest.fixture(scope="module")
def steal_exp(tmp_path_factory):
    """A 3-run micro experiment for the stealing fault scenarios."""
    from repro.core.grid import HKLGrid
    from repro.core.md_event_workspace import convert_to_md, load_md, save_md
    from repro.crystal.goniometer import Goniometer
    from repro.crystal.structures import benzil
    from repro.crystal.symmetry import point_group
    from repro.crystal.ub import UBMatrix
    from repro.instruments.corelli import make_corelli
    from repro.instruments.synth import (
        make_flux,
        make_vanadium,
        synthesize_run,
    )

    base = tmp_path_factory.mktemp("steal_ft")
    structure = benzil()
    instrument = make_corelli(n_pixels=18)
    ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0],
                                 [1.0, 0.0, 0.0])
    paths = []
    for i, omega in enumerate((0.0, 45.0, 90.0)):
        run = synthesize_run(
            instrument=instrument, structure=structure, ub=ub,
            goniometer=Goniometer(omega).rotation, n_events=60,
            rng=np.random.default_rng(6400 + i), run_number=i,
        )
        path = str(base / f"run_{i}.md.h5")
        save_md(path, convert_to_md(run, instrument, run_index=i))
        paths.append(path)
    return dict(
        loader=lambda i: load_md(paths[i]),
        kw=dict(
            n_runs=N_STEAL_RUNS,
            grid=HKLGrid.benzil_grid(bins=(5, 5, 1)),
            point_group=point_group("321"),
            flux=make_flux(instrument),
            det_directions=instrument.directions,
            solid_angles=make_vanadium(instrument).detector_weights,
        ),
    )


class TestStealingExactlyOnce:
    """Rank death and quarantine against the shared steal queue: the
    trace stream's shard ids prove no cell is lost or double-counted."""

    def _campaign(self, steal_exp, schedule, *, size=3, plan=None):
        from repro.core.checkpoint import RecoveryConfig
        from repro.core.sharding import ShardConfig
        from repro.mpi.stealing import run_stealing_campaign
        from repro.util.faults import RetryPolicy, use_fault_plan

        recovery = RecoveryConfig(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0))

        def body(comm):
            return run_stealing_campaign(
                steal_exp["loader"], comm=comm, recovery=recovery,
                shards=ShardConfig(n_shards=N_STEAL_SHARDS, workers=1),
                schedule=schedule, **steal_exp["kw"])

        if plan is not None:
            with use_fault_plan(plan):
                out = run_world(size, body, barrier_timeout=60.0)
        else:
            out = run_world(size, body, barrier_timeout=60.0)
        roots = [r for r in out if r is not None
                 and r.cross_section is not None]
        assert len(roots) == 1
        return roots[0]

    @staticmethod
    def _completed_cells(records):
        cells = {}
        for rec in trace_mod.iter_spans(records):
            if (rec["name"].startswith("steal:")
                    and rec["attrs"].get("completed")):
                key = (rec["attrs"]["run"], rec["name"].split(":", 1)[1],
                       rec["attrs"]["shard"])
                cells[key] = cells.get(key, 0) + 1
        return cells

    @staticmethod
    def _cells_of(runs):
        return {
            (run, stage, idx)
            for run in runs
            for stage in ("mdnorm", "binmd")
            for idx in range(N_STEAL_SHARDS)
        }

    def test_kill_rank_mid_steal_no_lost_no_double(self, steal_exp):
        """Rank 1 dies holding a claimed (stolen) task: the claim
        requeues and every planned shard completes exactly once on a
        survivor; the result matches the no-faults reference."""
        from repro.util import trace as trace_mod
        from repro.util.faults import FaultPlan, FaultSpec
        from repro.util.schedule import ScheduleController

        reference = self._campaign(
            steal_exp, ScheduleController(seed=0, policy="no-steal"), size=3)
        plan = FaultPlan(
            [FaultSpec(site="steal.task", kind="rank_crash",
                       probability=1.0, ranks=(1,), max_hits=1)],
            seed=3,
        )
        tracer = trace_mod.Tracer()
        with trace_mod.use_tracer(tracer):
            res = self._campaign(
                steal_exp, ScheduleController(seed=3, policy="all-steal"),
                size=3, plan=plan)
        assert plan.stats()["injected"] == 1
        assert res.extras["recovery"]["failed_ranks"] == [1]
        cells = self._completed_cells(tracer.records)
        assert cells == {c: 1 for c in self._cells_of(range(N_STEAL_RUNS))}
        # the fault fires inside the task body, before q.complete(): the
        # span the crash interrupted must not be marked completed
        crashed = [
            rec for rec in trace_mod.iter_spans(tracer.records)
            if rec["name"].startswith("steal:")
            and rec["attrs"]["exec_rank"] == 1
            and not rec["attrs"].get("completed")
        ]
        assert len(crashed) == 1
        assert np.array_equal(res.binmd.signal, reference.binmd.signal)
        assert np.array_equal(res.cross_section.signal,
                              reference.cross_section.signal, equal_nan=True)

    def test_birth_after_quarantine_accounting_stays_exact(self, steal_exp):
        """A run quarantines (persistent kernel fault), then a new rank
        is born: the late joiner must not resurrect dropped cells, and
        the surviving runs' cells still complete exactly once."""
        from repro.util import trace as trace_mod
        from repro.util.faults import FaultPlan, FaultSpec
        from repro.util.schedule import ScheduleController

        plan = FaultPlan(
            [FaultSpec(site="kernel.binmd", kind="kernel_error",
                       probability=1.0, runs=(1,))],
            seed=7,
        )
        tracer = trace_mod.Tracer()
        with trace_mod.use_tracer(tracer):
            res = self._campaign(
                steal_exp,
                ScheduleController(seed=7, policy="random", births=(1,)),
                size=2, plan=plan)
        assert res.degraded
        assert res.quarantined_runs == (1,)
        assert res.extras["stealing"]["births"] == 1
        cells = self._completed_cells(tracer.records)
        # no cell ever completes twice, quarantine and birth included
        assert all(n == 1 for n in cells.values()), cells
        # every cell of the surviving runs is present
        assert self._cells_of((0, 2)) <= set(cells)
        # run 1's binmd cells never complete (dropped, not lost)
        assert not any(
            run == 1 and stage == "binmd" for run, stage, _ in cells
        )
