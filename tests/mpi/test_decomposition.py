"""Unit + property tests for the Algorithm-1 rank decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MPIError, rank_range


class TestRankRange:
    def test_even_split(self):
        assert [rank_range(8, r, 4) for r in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8),
        ]

    def test_remainder_goes_to_low_ranks(self):
        ranges = [rank_range(10, r, 4) for r in range(4)]
        sizes = [e - s for s, e in ranges]
        assert sizes == [3, 3, 2, 2]

    def test_more_ranks_than_items(self):
        ranges = [rank_range(2, r, 4) for r in range(4)]
        sizes = [e - s for s, e in ranges]
        assert sizes == [1, 1, 0, 0]

    def test_zero_items(self):
        assert rank_range(0, 0, 3) == (0, 0)

    def test_invalid_inputs(self):
        with pytest.raises(MPIError):
            rank_range(-1, 0, 2)
        with pytest.raises(MPIError):
            rank_range(5, 2, 2)
        with pytest.raises(MPIError):
            rank_range(5, 0, 0)

    @given(n=st.integers(0, 500), size=st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, n, size):
        """Every item assigned exactly once; block sizes differ by <= 1."""
        ranges = [rank_range(n, r, size) for r in range(size)]
        covered = [i for s, e in ranges for i in range(s, e)]
        assert covered == list(range(n))
        sizes = [e - s for s, e in ranges]
        assert max(sizes) - min(sizes) <= 1
        # blocks are contiguous and ordered
        for (s1, e1), (s2, _) in zip(ranges, ranges[1:]):
            assert e1 == s2
