"""Unit + property tests for the hierarchical decomposition.

Level 1 is Algorithm 1's rank split over runs (:func:`rank_range`,
weight-aware via :func:`balanced_rank_runs`); level 2 is the intra-run
shard planner (:func:`shard_ranges` / :func:`weighted_shard_ranges`)
ISSUE 5 adds below it; :func:`plan_campaign` composes the two into the
full runs × shards map.  Everything here is pure planning, so the
properties are exact: partitions are contiguous, disjoint, exhaustive,
and deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import (
    MPIError,
    RunShard,
    balanced_rank_runs,
    budget_max_rows,
    chunk_aligned_event_ranges,
    lazy_table_ranges,
    plan_campaign,
    range_stored_nbytes,
    rank_range,
    shard_ranges,
    weighted_shard_ranges,
)


class TestRankRange:
    def test_even_split(self):
        assert [rank_range(8, r, 4) for r in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8),
        ]

    def test_remainder_goes_to_low_ranks(self):
        ranges = [rank_range(10, r, 4) for r in range(4)]
        sizes = [e - s for s, e in ranges]
        assert sizes == [3, 3, 2, 2]

    def test_more_ranks_than_items(self):
        ranges = [rank_range(2, r, 4) for r in range(4)]
        sizes = [e - s for s, e in ranges]
        assert sizes == [1, 1, 0, 0]

    def test_zero_items(self):
        assert rank_range(0, 0, 3) == (0, 0)

    def test_invalid_inputs(self):
        with pytest.raises(MPIError):
            rank_range(-1, 0, 2)
        with pytest.raises(MPIError):
            rank_range(5, 2, 2)
        with pytest.raises(MPIError):
            rank_range(5, 0, 0)

    @given(n=st.integers(0, 500), size=st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, n, size):
        """Every item assigned exactly once; block sizes differ by <= 1."""
        ranges = [rank_range(n, r, size) for r in range(size)]
        covered = [i for s, e in ranges for i in range(s, e)]
        assert covered == list(range(n))
        sizes = [e - s for s, e in ranges]
        assert max(sizes) - min(sizes) <= 1
        # blocks are contiguous and ordered
        for (s1, e1), (s2, _) in zip(ranges, ranges[1:]):
            assert e1 == s2


class TestShardRanges:
    def test_matches_rank_range_convention(self):
        assert shard_ranges(10, 4) == [rank_range(10, s, 4) for s in range(4)]

    def test_more_shards_than_items_yields_empty_tails(self):
        ranges = shard_ranges(3, 7)
        assert len(ranges) == 7
        sizes = [b - a for a, b in ranges]
        assert sizes == [1, 1, 1, 0, 0, 0, 0]

    def test_zero_items(self):
        assert shard_ranges(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_invalid_inputs(self):
        with pytest.raises(MPIError):
            shard_ranges(-1, 2)
        with pytest.raises(MPIError):
            shard_ranges(5, 0)

    @given(n=st.integers(0, 500), shards=st.integers(1, 40))
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, n, shards):
        """Constant-length partition: contiguous, exact, ordered,
        sizes within 1 — empty shards allowed past the item count."""
        ranges = shard_ranges(n, shards)
        assert len(ranges) == shards
        covered = [i for a, b in ranges for i in range(a, b)]
        assert covered == list(range(n))
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestWeightedShardRanges:
    def test_uniform_weights_match_block_split(self):
        assert weighted_shard_ranges([1.0] * 12, 4) == shard_ranges(12, 4)

    def test_heavy_head_gets_small_shard(self):
        # one item carries ~all the weight: it should sit alone
        ranges = weighted_shard_ranges([100.0, 1.0, 1.0, 1.0, 1.0], 2)
        assert ranges[0] == (0, 1)
        assert ranges[1] == (1, 5)

    def test_balances_within_one_item(self):
        weights = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 1.0]
        ranges = weighted_shard_ranges(weights, 3)
        loads = [sum(weights[a:b]) for a, b in ranges]
        # contiguous optimum here is ~5.33 per shard; each load is
        # within one max item of that
        assert max(loads) <= (sum(weights) / 3) + max(weights)

    def test_negative_weights_rejected(self):
        with pytest.raises(MPIError, match=">= 0"):
            weighted_shard_ranges([1.0, -0.5], 2)
        with pytest.raises(MPIError, match="n_shards"):
            weighted_shard_ranges([1.0], 0)

    @given(
        weights=st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=60),
        shards=st.integers(1, 12),
    )
    @settings(max_examples=150, deadline=None)
    def test_partition_properties(self, weights, shards):
        """Always a constant-length contiguous exact partition, for any
        weight profile (zeros, spikes, empty input)."""
        ranges = weighted_shard_ranges(weights, shards)
        assert len(ranges) == shards
        covered = [i for a, b in ranges for i in range(a, b)]
        assert covered == list(range(len(weights)))
        assert ranges == weighted_shard_ranges(weights, shards)  # deterministic

    @given(
        weights=st.lists(st.floats(0.1, 100.0, allow_nan=False),
                         min_size=1, max_size=60),
        shards=st.integers(1, 12),
    )
    @settings(max_examples=150, deadline=None)
    def test_no_shard_exceeds_ideal_plus_one_item(self, weights, shards):
        """The greedy prefix cut's quality bound: a shard overshoots the
        ideal share by at most its own last item."""
        ranges = weighted_shard_ranges(weights, shards)
        ideal = sum(weights) / shards
        for a, b in ranges:
            if b - a > 1:
                assert sum(weights[a:b]) <= ideal + max(weights[a:b]) + 1e-9


class TestBalancedRankRuns:
    def test_degenerates_to_block_split_when_uniform(self):
        blocks = balanced_rank_runs([1.0] * 8, 4)
        assert blocks == [rank_range(8, r, 4) for r in range(4)]

    def test_heavy_runs_narrow_their_rank(self):
        # run 0 is as heavy as all others combined: rank 0 takes it alone
        blocks = balanced_rank_runs([7.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 2)
        assert blocks[0] == (0, 1)
        assert blocks[1] == (1, 8)

    def test_invalid_size(self):
        with pytest.raises(MPIError, match="size"):
            balanced_rank_runs([1.0], 0)


class TestPlanCampaign:
    def test_full_matrix_shape(self):
        plan = plan_campaign(4, 2, 3)
        assert sorted(plan) == [0, 1]
        # every (run, shard) cell appears exactly once, on its owner
        cells = [c for rank in plan.values() for c in rank]
        assert len(cells) == 4 * 3
        assert {(c.run, c.shard) for c in cells} == {
            (r, s) for r in range(4) for s in range(3)
        }
        for rank, owned in plan.items():
            assert all(c.rank == rank for c in owned)

    def test_labels(self):
        cell = RunShard(run=2, shard=1, n_shards=4, rank=0)
        assert cell.label == "run2/shard1of4"

    def test_weighted_outer_level(self):
        plan = plan_campaign(3, 2, 2, run_weights=[10.0, 1.0, 1.0])
        assert [c.run for c in plan[0]] == [0, 0]
        assert [c.run for c in plan[1]] == [1, 1, 2, 2]

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(MPIError, match="run_weights"):
            plan_campaign(3, 2, 2, run_weights=[1.0])

    def test_invalid_inputs(self):
        with pytest.raises(MPIError):
            plan_campaign(-1, 2, 2)
        with pytest.raises(MPIError):
            plan_campaign(3, 2, 0)

    @given(
        n_runs=st.integers(0, 30),
        size=st.integers(1, 6),
        n_shards=st.integers(1, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_cell_assigned_exactly_once(self, n_runs, size, n_shards):
        plan = plan_campaign(n_runs, size, n_shards)
        cells = [(c.run, c.shard) for rank in plan.values() for c in rank]
        assert sorted(cells) == [
            (r, s) for r in range(n_runs) for s in range(n_shards)
        ]


class TestChunkAlignedEventRanges:
    """ISSUE 6: the out-of-core planner — shard boundaries land on chunk
    boundaries, stored-byte weights balance skewed compression, and the
    memory-budget cap re-splits groups without ever splitting a chunk."""

    def test_simple_alignment(self):
        # 4 chunks of 10 rows, 2 shards -> the cut lands on row 20
        assert chunk_aligned_event_ranges([0, 10, 20, 30, 40], 2) == [
            (0, 20), (20, 40),
        ]

    def test_boundaries_are_chunk_boundaries(self):
        bounds = [0, 7, 19, 19, 40, 55]
        for n_shards in (1, 2, 3, 5, 9):
            for a, b in chunk_aligned_event_ranges(bounds, n_shards):
                assert a in bounds and b in bounds

    def test_more_shards_than_chunks(self):
        ranges = chunk_aligned_event_ranges([0, 10, 20], 5)
        covered = [r for r in ranges if r[0] < r[1]]
        assert covered == [(0, 10), (10, 20)]

    def test_max_rows_resplits_groups(self):
        # one shard over 6 x 10-row chunks, capped at 25 rows per window
        ranges = chunk_aligned_event_ranges(
            [0, 10, 20, 30, 40, 50, 60], 1, max_rows=25)
        assert ranges == [(0, 20), (20, 40), (40, 60)]
        for a, b in ranges:
            assert b - a <= 25

    def test_single_oversized_chunk_stays_whole(self):
        # a 100-row chunk cannot be split below the chunk floor
        ranges = chunk_aligned_event_ranges([0, 100, 110], 1, max_rows=30)
        assert ranges == [(0, 100), (100, 110)]

    def test_skewed_compression_weights_balance_bytes(self):
        # 8 chunks, equal rows, but the first compresses 50x worse:
        # byte-weighted planning gives it a shard of its own
        bounds = list(range(0, 90, 10))
        weights = [500.0] + [10.0] * 7
        ranges = chunk_aligned_event_ranges(bounds, 2, chunk_weights=weights)
        assert ranges[0] == (0, 10)
        assert ranges[-1][1] == 80

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(MPIError, match="chunk_weights"):
            chunk_aligned_event_ranges([0, 10, 20], 2, chunk_weights=[1.0])

    def test_invalid_inputs(self):
        with pytest.raises(MPIError):
            chunk_aligned_event_ranges([], 1)
        with pytest.raises(MPIError):
            chunk_aligned_event_ranges([5, 10], 1)  # must start at 0
        with pytest.raises(MPIError):
            chunk_aligned_event_ranges([0, 10, 5], 1)  # decreasing
        with pytest.raises(MPIError):
            chunk_aligned_event_ranges([0, 10], 0)
        with pytest.raises(MPIError):
            chunk_aligned_event_ranges([0, 10], 1, max_rows=0)

    @given(
        rows=st.lists(st.integers(0, 50), min_size=0, max_size=30),
        n_shards=st.integers(1, 8),
        max_rows=st.one_of(st.none(), st.integers(1, 100)),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_properties(self, rows, n_shards, max_rows):
        bounds = [0]
        for r in rows:
            bounds.append(bounds[-1] + r)
        ranges = chunk_aligned_event_ranges(
            bounds, n_shards, max_rows=max_rows)
        # exact ordered partition of [0, n)
        covered = [i for a, b in ranges for i in range(a, b)]
        assert covered == list(range(bounds[-1]))
        bound_set = set(bounds)
        for a, b in ranges:
            assert a <= b
            # every boundary is a chunk boundary
            assert a in bound_set and b in bound_set
            if max_rows is not None and b - a > max_rows:
                # only an indivisible single chunk may exceed the cap
                inner = [x for x in bounds if a < x < b]
                assert inner == []
        if max_rows is None:
            assert len(ranges) == n_shards

    @given(
        rows=st.lists(st.integers(1, 40), min_size=1, max_size=20),
        weights=st.data(),
        n_shards=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_weighted_partition_and_determinism(self, rows, weights, n_shards):
        bounds = [0]
        for r in rows:
            bounds.append(bounds[-1] + r)
        w = weights.draw(st.lists(
            st.floats(0.0, 1e6, allow_nan=False),
            min_size=len(rows), max_size=len(rows),
        ))
        a = chunk_aligned_event_ranges(bounds, n_shards, chunk_weights=w)
        b = chunk_aligned_event_ranges(bounds, n_shards, chunk_weights=w)
        assert a == b  # deterministic
        covered = [i for s, e in a for i in range(s, e)]
        assert covered == list(range(bounds[-1]))

    @given(
        rows=st.lists(st.integers(1, 40), min_size=1, max_size=20),
        n_shards=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_group_weight_balance(self, rows, n_shards):
        """Default (row) weights inherit weighted_shard_ranges' balance
        bound: no group exceeds ideal + the largest single chunk."""
        bounds = [0]
        for r in rows:
            bounds.append(bounds[-1] + r)
        ranges = chunk_aligned_event_ranges(bounds, n_shards)
        total = bounds[-1]
        ideal = total / n_shards
        assert max(b - a for a, b in ranges) <= ideal + max(rows)


class TestZeroWeightFallback:
    """Regression: all-zero weights must not degenerate to a mega-shard.

    The greedy prefix cut's target share is 0 when every weight is 0,
    so each leading shard used to close after one item and the tail
    append dumped everything else into the *last* shard — silently
    serializing an empty-run campaign onto one worker.
    """

    def test_all_zero_weights_fall_back_to_count_split(self):
        assert weighted_shard_ranges([0.0] * 12, 4) == shard_ranges(12, 4)

    def test_all_zero_weights_no_mega_shard(self):
        ranges = weighted_shard_ranges([0.0] * 10, 3)
        sizes = [b - a for a, b in ranges]
        # count-balanced: 4/3/3 — NOT the old 1/1/8 degeneration
        assert sizes == [4, 3, 3]
        assert max(sizes) <= -(-10 // 3)

    def test_zero_weight_chunks_through_chunk_aligned_planner(self):
        """The PR 6 planner inherits the fix: stored-byte weights of
        empty chunks are all zero."""
        bounds = [0, 10, 20, 30, 40, 50, 60]
        ranges = chunk_aligned_event_ranges(
            bounds, 3, chunk_weights=[0.0] * 6)
        sizes = [b - a for a, b in ranges]
        assert sizes == [20, 20, 20]

    def test_single_nonzero_weight_still_weighted(self):
        """The fallback triggers only for the genuinely degenerate
        all-zero profile, not merely mostly-zero ones."""
        ranges = weighted_shard_ranges([0.0, 0.0, 5.0, 0.0], 2)
        # the heavy item must not share a shard with every other item
        assert ranges[0][1] <= 3

    @given(
        n=st.integers(0, 60),
        shards=st.integers(1, 12),
    )
    @settings(max_examples=100, deadline=None)
    def test_zero_weights_match_count_split_everywhere(self, n, shards):
        assert weighted_shard_ranges([0.0] * n, shards) == shard_ranges(n, shards)


class _FakeLazyTable:
    """Duck-typed LazyEventTable surface for the planning helpers."""

    def __init__(self, bounds, stored, memory_budget=None, row_nbytes=24):
        self._bounds = list(bounds)
        self._stored = list(stored)
        self.memory_budget = memory_budget
        self.row_nbytes = row_nbytes

    def chunk_bounds(self):
        return list(self._bounds)

    def chunk_stored_nbytes(self):
        return list(self._stored)


class TestLazyTablePlanningHelpers:
    """Units for the deduplicated shard-weight estimation (satellite f):
    one helper now serves the static executor, the stealing executor
    and the out-of-core planner."""

    def test_budget_max_rows_none_budget(self):
        assert budget_max_rows(None, 24) is None

    def test_budget_max_rows_floor_division(self):
        assert budget_max_rows(1000, 24) == 41

    def test_budget_max_rows_floor_of_one(self):
        assert budget_max_rows(5, 24) == 1

    def test_budget_max_rows_invalid_row_size(self):
        with pytest.raises(MPIError, match="row_nbytes"):
            budget_max_rows(1000, 0)

    def test_lazy_table_ranges_weights_by_stored_bytes(self):
        # equal rows, skewed compression: the heavy chunk sits alone
        events = _FakeLazyTable([0, 10, 20, 30], [1000.0, 10.0, 10.0])
        assert lazy_table_ranges(events, 2) == [(0, 10), (10, 30)]

    def test_lazy_table_ranges_applies_budget_cap(self):
        events = _FakeLazyTable(
            [0, 10, 20, 30, 40], [10.0] * 4,
            memory_budget=20 * 24, row_nbytes=24,
        )
        ranges = lazy_table_ranges(events, 1)
        assert all(b - a <= 20 for a, b in ranges)
        covered = [i for a, b in ranges for i in range(a, b)]
        assert covered == list(range(40))

    def test_lazy_table_ranges_empty_chunks_balance_by_count(self):
        """Zero stored bytes everywhere (satellite a, through the
        helper): falls back to a count-balanced cut."""
        events = _FakeLazyTable([0, 10, 20, 30, 40], [0.0] * 4)
        assert lazy_table_ranges(events, 2) == [(0, 20), (20, 40)]

    def test_range_stored_nbytes_whole_chunks(self):
        events = _FakeLazyTable([0, 10, 20, 30], [100.0, 50.0, 25.0])
        assert range_stored_nbytes(events, [(0, 10), (10, 30)]) == [100.0, 75.0]

    def test_range_stored_nbytes_pro_rata_split(self):
        events = _FakeLazyTable([0, 10], [100.0])
        assert range_stored_nbytes(events, [(0, 5), (5, 10)]) == [50.0, 50.0]

    def test_range_stored_nbytes_empty_range(self):
        events = _FakeLazyTable([0, 10], [100.0])
        assert range_stored_nbytes(events, [(3, 3)]) == [0.0]
