"""Unit tests for the simulated MPI communicator and collectives."""

import numpy as np
import pytest

from repro.mpi import MAX, MIN, PROD, SUM, Comm, MPIError, SequentialComm, run_world
from repro.mpi.comm import World


class TestIntrospection:
    def test_rank_and_size(self):
        world = World(3)
        comms = [Comm(world, r) for r in range(3)]
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)
        assert comms[1].Get_rank() == 1
        assert comms[1].Get_size() == 3

    def test_invalid_rank_rejected(self):
        with pytest.raises(MPIError):
            Comm(World(2), 5)

    def test_invalid_size_rejected(self):
        with pytest.raises(MPIError):
            World(0)


class TestSequentialComm:
    def test_degenerate_collectives(self):
        comm = SequentialComm()
        assert comm.size == 1 and comm.rank == 0
        assert comm.bcast("hello") == "hello"
        assert comm.allreduce(5, SUM) == 5
        assert comm.gather("x") == ["x"]
        assert comm.allgather(1) == [1]
        assert comm.scatter(["only"]) == "only"

    def test_buffer_reduce(self):
        comm = SequentialComm()
        send = np.arange(4.0)
        recv = np.empty(4)
        comm.Reduce(send, recv, op=SUM, root=0)
        assert np.array_equal(recv, send)


class TestObjectCollectives:
    def test_bcast(self):
        def fn(comm):
            value = {"payload": 42} if comm.rank == 0 else None
            return comm.bcast(value, root=0)

        results = run_world(4, fn)
        assert all(r == {"payload": 42} for r in results)

    def test_gather_only_root_receives(self):
        def fn(comm):
            return comm.gather(comm.rank * 10, root=1)

        results = run_world(3, fn)
        assert results[0] is None and results[2] is None
        assert results[1] == [0, 10, 20]

    def test_allgather(self):
        results = run_world(3, lambda comm: comm.allgather(comm.rank))
        assert results == [[0, 1, 2]] * 3

    def test_scatter(self):
        def fn(comm):
            chunks = ["a", "b", "c"] if comm.rank == 0 else None
            return comm.scatter(chunks, root=0)

        assert run_world(3, fn) == ["a", "b", "c"]

    def test_scatter_wrong_length_rejected(self):
        def fn(comm):
            chunks = ["a"] if comm.rank == 0 else None
            return comm.scatter(chunks, root=0)

        with pytest.raises(MPIError, match="scatter"):
            run_world(2, fn)

    @pytest.mark.parametrize(
        "op,expected", [(SUM, 6), (PROD, 0), (MAX, 3), (MIN, 0)]
    )
    def test_allreduce_ops(self, op, expected):
        results = run_world(4, lambda comm: comm.allreduce(comm.rank, op))
        assert results == [expected] * 4

    def test_reduce_root_only(self):
        results = run_world(3, lambda comm: comm.reduce(comm.rank + 1, SUM, root=2))
        assert results == [None, None, 6]


class TestBufferCollectives:
    def test_Reduce_sums_arrays(self):
        def fn(comm):
            send = np.full(5, float(comm.rank + 1))
            recv = np.empty(5) if comm.rank == 0 else None
            comm.Reduce(send, recv, op=SUM, root=0)
            return recv

        results = run_world(3, fn)
        assert np.array_equal(results[0], np.full(5, 6.0))
        assert results[1] is None

    def test_Reduce_needs_recvbuf_on_root(self):
        def fn(comm):
            comm.Reduce(np.ones(2), None, op=SUM, root=0)

        with pytest.raises(MPIError, match="recvbuf"):
            run_world(2, fn)

    def test_Reduce_shape_mismatch(self):
        def fn(comm):
            recv = np.empty(3) if comm.rank == 0 else None
            comm.Reduce(np.ones(2), recv, op=SUM, root=0)

        with pytest.raises(MPIError, match="shape"):
            run_world(2, fn)

    def test_Allreduce(self):
        def fn(comm):
            recv = np.empty(4)
            comm.Allreduce(np.full(4, 2.0), recv, op=SUM)
            return recv

        for r in run_world(3, fn):
            assert np.array_equal(r, np.full(4, 6.0))

    def test_Allreduce_max(self):
        def fn(comm):
            recv = np.empty(2)
            comm.Allreduce(np.array([comm.rank, -comm.rank], dtype=float), recv, op=MAX)
            return recv

        for r in run_world(4, fn):
            assert np.array_equal(r, [3.0, 0.0])

    def test_Bcast_overwrites_non_root(self):
        def fn(comm):
            buf = np.arange(3.0) if comm.rank == 0 else np.zeros(3)
            comm.Bcast(buf, root=0)
            return buf

        for r in run_world(3, fn):
            assert np.array_equal(r, [0.0, 1.0, 2.0])


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("ping", dest=1, tag=7)
                return comm.recv(source=1, tag=8)
            comm.send("pong", dest=0, tag=8)
            return comm.recv(source=0, tag=7)

        assert run_world(2, fn) == ["pong", "ping"]

    def test_tag_matching_holds_unmatched(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("late", dest=1, tag=2)
                comm.send("early", dest=1, tag=1)
                return None
            first = comm.recv(source=0, tag=1)
            second = comm.recv(source=0, tag=2)
            return (first, second)

        assert run_world(2, fn)[1] == ("early", "late")

    def test_any_source_any_tag(self):
        def fn(comm):
            if comm.rank == 0:
                return comm.recv()
            comm.send(f"from{comm.rank}", dest=0)
            return None

        out = run_world(2, fn)
        assert out[0] == "from1"

    def test_invalid_dest(self):
        comm = SequentialComm()
        with pytest.raises(MPIError, match="destination"):
            comm.send("x", dest=5)

    def test_recv_timeout(self):
        comm = SequentialComm()
        with pytest.raises(MPIError, match="timed out"):
            comm.recv(timeout=0.05)

    def test_barrier_alias(self):
        comm = SequentialComm()
        comm.Barrier()
        comm.barrier()
