"""The service CLI: spool protocol + serve/submit/cancel/status."""

import json
import os

import pytest

from repro.cli import cancel_main, serve_main, status_main, submit_main
from repro.service.spool import (
    SpoolError,
    read_status,
    request_cancel,
    serve_spool,
    submit_ticket,
)

SMALL = ["--workload", "benzil", "--scale", "0.0005", "--files", "2"]


class TestSpoolProtocol:
    def test_ticket_round_trip(self, tmp_path):
        spool = str(tmp_path / "spool")
        tid = submit_ticket(spool, {"tenant": "hb2c", "workload": "benzil"})
        assert tid.startswith("t-")
        doc = json.load(open(os.path.join(spool, "tickets", f"{tid}.json")))
        assert doc["tenant"] == "hb2c"
        assert doc["id"] == tid

    def test_ticket_requires_tenant(self, tmp_path):
        with pytest.raises(SpoolError):
            submit_ticket(str(tmp_path / "spool"), {"workload": "benzil"})

    def test_cancel_marker(self, tmp_path):
        spool = str(tmp_path / "spool")
        path = request_cancel(spool, "t-abc")
        assert os.path.exists(path)

    def test_status_empty_before_first_publish(self, tmp_path):
        assert read_status(str(tmp_path / "spool")) == {}


class TestServeLoop:
    def test_duplicate_tickets_single_flight(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        assert submit_main(["--spool", spool, "--tenant", "hb2c"] + SMALL) == 0
        assert submit_main(["--spool", spool, "--tenant", "cncs"] + SMALL) == 0
        assert serve_main([
            "--spool", spool, "--poll", "0.05", "--idle-exit", "0.4",
            "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 2 jobs" in out
        status = read_status(spool)
        states = [j["state"] for j in status["jobs"]]
        assert states == ["done", "done"]
        # one reduction for two identical tickets
        assert status["store"]["misses"] == 1
        assert status["store"]["hits"] + status["store"]["coalesced"] == 1
        assert len(status["tickets"]) == 2
        # the exposition was published alongside the status
        metrics = open(os.path.join(spool, "metrics.prom")).read()
        assert "repro_service_queue_depth" in metrics
        assert status_main(["--spool", spool]) == 0
        rendered = capsys.readouterr().out
        assert "done" in rendered

    def test_bad_ticket_is_rejected_not_fatal(self, tmp_path):
        spool = str(tmp_path / "spool")
        tid = submit_ticket(spool, {"tenant": "hb2c",
                                    "workload": "not-a-workload"})
        status = serve_spool(spool, poll_s=0.01, idle_exit_s=0.1)
        assert status["jobs"] == []
        assert status["rejected"][tid]["code"] == "bad_ticket"

    def test_cancel_before_serve_settles_cancelled(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        faults = tmp_path / "slow.json"
        faults.write_text(json.dumps({
            "seed": 3,
            "specs": [{"site": "run", "kind": "slow", "probability": 1.0,
                       "delay_s": 0.4, "scope": "recovery"}],
        }))
        assert submit_main([
            "--spool", spool, "--tenant", "hb2c",
            "--faults", str(faults), "--label", "doomed",
        ] + SMALL) == 0
        tid = capsys.readouterr().out.strip().splitlines()[-1]
        assert cancel_main(["--spool", spool, tid]) == 0
        assert serve_main([
            "--spool", spool, "--poll", "0.05", "--idle-exit", "0.4",
            "--workers", "1",
        ]) == 0
        status = read_status(spool)
        (job,) = status["jobs"]
        assert job["state"] == "cancelled"
        assert job["label"] == "doomed"

    def test_status_main_without_server(self, tmp_path, capsys):
        assert status_main(["--spool", str(tmp_path / "spool")]) == 1
        assert "no status" in capsys.readouterr().out
