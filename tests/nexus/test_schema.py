"""Unit tests for the NeXus event schema."""

import numpy as np
import pytest

from repro.nexus.events import RunData
from repro.nexus.h5lite import File, H5LiteError
from repro.nexus.schema import (
    NXEntryInfo,
    read_entry_info,
    read_event_nexus,
    write_event_nexus,
)


@pytest.fixture()
def sample_run():
    n = 50
    return RunData(
        run_number=77,
        detector_ids=np.arange(n, dtype=np.uint32),
        tof=np.linspace(500.0, 9000.0, n),
        weights=np.full(n, 1.0, dtype=np.float32),
        goniometer=np.array([[0.0, 0.0, 1.0], [0.0, 1.0, 0.0], [-1.0, 0.0, 0.0]]),
        proton_charge=2.5,
        wavelength_band=(0.6, 2.6),
        instrument="CORELLI",
        sample="benzil",
        ub_matrix=0.1 * np.eye(3),
    )


def test_roundtrip_preserves_everything(tmp_path, sample_run):
    path = str(tmp_path / "run.nxs.h5")
    write_event_nexus(path, sample_run)
    back = read_event_nexus(path)
    assert back.run_number == 77
    assert back.instrument == "CORELLI"
    assert back.sample == "benzil"
    assert back.proton_charge == 2.5
    assert back.wavelength_band == (0.6, 2.6)
    assert np.array_equal(back.detector_ids, sample_run.detector_ids)
    assert np.allclose(back.tof, sample_run.tof)
    assert np.allclose(back.weights, sample_run.weights)
    assert np.allclose(back.goniometer, sample_run.goniometer)
    assert np.allclose(back.ub_matrix, sample_run.ub_matrix)


def test_roundtrip_without_ub(tmp_path, sample_run):
    sample_run.ub_matrix = None
    path = str(tmp_path / "run.nxs.h5")
    write_event_nexus(path, sample_run)
    assert read_event_nexus(path).ub_matrix is None


def test_nx_class_attributes_written(tmp_path, sample_run):
    path = str(tmp_path / "run.nxs.h5")
    write_event_nexus(path, sample_run)
    with File(path, "r") as f:
        assert f["entry"].attrs["NX_class"] == "NXentry"
        assert f["entry/events"].attrs["NX_class"] == "NXevent_data"
        assert f["entry/events/time_of_flight"].attrs["units"] == "microsecond"


def test_entry_info_reads_metadata_only(tmp_path, sample_run):
    path = str(tmp_path / "run.nxs.h5")
    write_event_nexus(path, sample_run)
    info = read_entry_info(path)
    assert info == NXEntryInfo(
        run_number=77,
        n_events=50,
        instrument="CORELLI",
        sample="benzil",
        proton_charge=2.5,
    )


def test_missing_entry_group_raises(tmp_path):
    path = str(tmp_path / "bad.h5")
    with File(path, "w") as f:
        f.create_group("not_entry")
    with pytest.raises(H5LiteError, match="no /entry"):
        read_event_nexus(path)
