"""Unit + physics tests for event filtering by pulse time."""

import numpy as np
import pytest

from repro.nexus.events import RunData
from repro.nexus.filtering import filter_time_window, run_duration, split_by_time
from repro.util.validation import ValidationError


def _run(n=1000, duration=100.0, seed=0):
    rng = np.random.default_rng(seed)
    return RunData(
        run_number=5,
        detector_ids=rng.integers(0, 50, n).astype(np.uint32),
        tof=rng.uniform(1000, 8000, n),
        weights=np.ones(n, dtype=np.float32),
        goniometer=np.eye(3),
        proton_charge=4.0,
        wavelength_band=(0.5, 3.0),
        pulse_times=np.sort(rng.uniform(0, duration, n)),
    )


class TestRunDataPulseTimes:
    def test_length_checked(self):
        with pytest.raises(ValidationError, match="pulse_times"):
            _run().__class__(
                run_number=0,
                detector_ids=np.zeros(3, dtype=np.uint32),
                tof=np.zeros(3),
                weights=np.zeros(3, dtype=np.float32),
                goniometer=np.eye(3),
                proton_charge=1.0,
                wavelength_band=(0.5, 3.0),
                pulse_times=np.zeros(2),
            )

    def test_negative_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            RunData(
                run_number=0,
                detector_ids=np.zeros(1, dtype=np.uint32),
                tof=np.zeros(1),
                weights=np.zeros(1, dtype=np.float32),
                goniometer=np.eye(3),
                proton_charge=1.0,
                wavelength_band=(0.5, 3.0),
                pulse_times=np.array([-1.0]),
            )

    def test_optional(self):
        run = RunData(
            run_number=0,
            detector_ids=np.zeros(1, dtype=np.uint32),
            tof=np.zeros(1),
            weights=np.zeros(1, dtype=np.float32),
            goniometer=np.eye(3),
            proton_charge=1.0,
            wavelength_band=(0.5, 3.0),
        )
        assert run.pulse_times is None

    def test_nexus_roundtrip_keeps_pulses(self, tmp_path):
        from repro.nexus.schema import read_event_nexus, write_event_nexus

        run = _run()
        path = str(tmp_path / "r.nxs.h5")
        write_event_nexus(path, run)
        back = read_event_nexus(path)
        assert np.allclose(back.pulse_times, run.pulse_times)


class TestFilterTimeWindow:
    def test_keeps_only_window_events(self):
        run = _run(duration=100.0)
        sub = filter_time_window(run, 20.0, 40.0)
        assert np.all(sub.pulse_times >= 20.0)
        assert np.all(sub.pulse_times < 40.0)
        assert sub.n_events < run.n_events

    def test_charge_scaled_by_covered_fraction(self):
        run = _run(duration=100.0)
        duration = run_duration(run)
        sub = filter_time_window(run, 0.0, duration / 2)
        assert sub.proton_charge == pytest.approx(run.proton_charge / 2, rel=1e-6)

    def test_window_beyond_duration_clamped(self):
        run = _run(duration=100.0)
        sub = filter_time_window(run, 0.0, 1e9)
        assert sub.proton_charge == pytest.approx(run.proton_charge)
        assert sub.n_events == run.n_events

    def test_empty_coverage_rejected(self):
        run = _run(duration=100.0)
        with pytest.raises(ValidationError, match="covers no beam"):
            filter_time_window(run, 500.0, 600.0)

    def test_bad_window_rejected(self):
        with pytest.raises(Exception):
            filter_time_window(_run(), 10.0, 5.0)

    def test_run_without_pulses_rejected(self):
        run = _run()
        run.pulse_times = None
        with pytest.raises(ValidationError, match="pulse_times"):
            filter_time_window(run, 0.0, 1.0)

    def test_metadata_preserved(self):
        run = _run()
        sub = filter_time_window(run, 10.0, 20.0)
        assert sub.run_number == run.run_number
        assert sub.wavelength_band == run.wavelength_band
        assert np.array_equal(sub.goniometer, run.goniometer)


class TestSplitByTime:
    def test_partition_is_exact(self):
        run = _run(n=2000, duration=60.0)
        slices = split_by_time(run, 4)
        assert len(slices) == 4
        assert sum(s.n_events for s in slices) == run.n_events
        total_charge = sum(s.proton_charge for s in slices)
        assert total_charge == pytest.approx(run.proton_charge, rel=1e-6)

    def test_single_slice_is_identity(self):
        run = _run()
        (only,) = split_by_time(run, 1)
        assert only.n_events == run.n_events
        assert only.proton_charge == pytest.approx(run.proton_charge)

    def test_slices_are_disjoint_in_time(self):
        run = _run(n=500, duration=30.0)
        slices = split_by_time(run, 3)
        for a, b in zip(slices, slices[1:]):
            if a.n_events and b.n_events:
                assert a.pulse_times.max() <= b.pulse_times.min()

    def test_validation(self):
        with pytest.raises(Exception):
            split_by_time(_run(), 0)


class TestPhysics:
    def test_slices_reduce_to_the_full_run(self, tiny_experiment):
        """Re-slicing conservation: the time slices' BinMD histograms
        sum exactly to the full run's, and their MDNorm contributions
        (each scaled by its slice charge) sum to the full run's —
        so any time-sliced analysis is consistent with the unsliced one."""
        from repro.core.binmd import bin_events
        from repro.core.hist3 import Hist3
        from repro.core.md_event_workspace import convert_to_md
        from repro.core.mdnorm import mdnorm

        exp = tiny_experiment
        run = exp.runs[1]

        def reduce_one(part):
            ws = convert_to_md(part, exp.instrument)
            binmd_h = Hist3(exp.grid)
            bin_events(binmd_h, ws.events,
                       exp.grid.transforms_for(ws.ub_matrix, exp.point_group),
                       backend="vectorized")
            norm_h = Hist3(exp.grid)
            mdnorm(norm_h,
                   exp.grid.transforms_for(ws.ub_matrix, exp.point_group,
                                           goniometer=ws.goniometer),
                   exp.instrument.directions, exp.vanadium.detector_weights,
                   exp.flux, ws.momentum_band, charge=ws.proton_charge,
                   backend="vectorized")
            return binmd_h, norm_h

        full_binmd, full_norm = reduce_one(run)
        slice_binmd = Hist3(exp.grid)
        slice_norm = Hist3(exp.grid)
        for part in split_by_time(run, 3):
            b, n = reduce_one(part)
            slice_binmd.add(b)
            slice_norm.add(n)
        assert np.allclose(slice_binmd.signal, full_binmd.signal)
        assert np.allclose(slice_norm.signal, full_norm.signal, rtol=1e-9)
