"""Property-based tests: arbitrary trees survive the h5lite round trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.nexus.h5lite import File

_DTYPES = st.sampled_from(
    [np.float64, np.float32, np.int64, np.int32, np.uint32, np.uint8, np.bool_]
)

_arrays = _DTYPES.flatmap(
    lambda dt: npst.arrays(
        dtype=dt,
        shape=npst.array_shapes(min_dims=0, max_dims=3, max_side=8),
        elements=npst.from_dtype(
            np.dtype(dt), allow_nan=False, allow_infinity=False
        ),
    )
)

_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
    min_size=1,
    max_size=10,
)


@given(tree=st.dictionaries(_names, _arrays, min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_flat_tree_roundtrip(tmp_path_factory, tree):
    path = str(tmp_path_factory.mktemp("h5prop") / "t.h5")
    with File(path, "w") as f:
        for name, arr in tree.items():
            f.create_dataset(name, data=arr)
    with File(path, "r") as f:
        for name, arr in tree.items():
            out = f.read(name)
            assert out.dtype == arr.dtype
            assert out.shape == arr.shape
            assert np.array_equal(out, arr)


@given(
    arrays=st.lists(_arrays, min_size=1, max_size=5),
    depth_names=st.lists(_names, min_size=1, max_size=3, unique=True),
)
@settings(max_examples=30, deadline=None)
def test_nested_tree_roundtrip(tmp_path_factory, arrays, depth_names):
    path = str(tmp_path_factory.mktemp("h5prop") / "t.h5")
    prefix = "/".join(depth_names)
    with File(path, "w") as f:
        for i, arr in enumerate(arrays):
            f.create_dataset(f"{prefix}/ds{i}", data=arr)
    with File(path, "r") as f:
        for i, arr in enumerate(arrays):
            assert np.array_equal(f.read(f"{prefix}/ds{i}"), arr)


@given(
    data=npst.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(0, 30), st.integers(1, 5)),
        elements=st.floats(allow_nan=False, allow_infinity=False, width=32),
    ),
    cut=st.integers(0, 30),
)
@settings(max_examples=40, deadline=None)
def test_append_equals_concat(tmp_path_factory, data, cut):
    """Appending in two blocks stores the same bytes as one write."""
    path = str(tmp_path_factory.mktemp("h5prop") / "t.h5")
    cut = min(cut, data.shape[0])
    with File(path, "w") as f:
        ds = f.create_dataset("x", dtype="<f8", shape=(0, data.shape[1]))
        ds.append(data[:cut])
        ds.append(data[cut:])
    with File(path, "r") as f:
        assert np.array_equal(f.read("x"), data)
