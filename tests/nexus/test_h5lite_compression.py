"""Unit tests for h5lite's zlib dataset compression."""

import numpy as np
import pytest

from repro.nexus.h5lite import File, H5LiteError


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "c.h5")


class TestCompression:
    def test_roundtrip(self, path):
        data = np.tile(np.arange(64, dtype=np.float64), 128).reshape(128, 64)
        with File(path, "w") as f:
            f.create_dataset("x", data=data, compression="zlib")
        with File(path, "r") as f:
            ds = f["x"]
            assert ds.compression == "zlib"
            assert np.array_equal(ds.read(), data)

    def test_actually_shrinks_redundant_data(self, path):
        data = np.zeros((1024, 8))
        with File(path, "w") as f:
            f.create_dataset("x", data=data, compression="zlib")
        import os

        compressed_size = os.path.getsize(path)
        path2 = path + ".raw"
        with File(path2, "w") as f:
            f.create_dataset("x", data=data)
        assert compressed_size < os.path.getsize(path2) / 10

    def test_mixed_compressed_and_raw(self, path):
        with File(path, "w") as f:
            f.create_dataset("a", data=np.arange(100.0), compression="zlib")
            f.create_dataset("b", data=np.arange(50.0))
        with File(path, "r") as f:
            assert np.array_equal(f.read("a"), np.arange(100.0))
            assert np.array_equal(f.read("b"), np.arange(50.0))

    def test_slicing_compressed_dataset(self, path):
        data = np.arange(200.0).reshape(40, 5)
        with File(path, "w") as f:
            f.create_dataset("x", data=data, compression="zlib")
        with File(path, "r") as f:
            ds = f["x"]
            ds.read()  # verify checksum
            assert np.array_equal(ds[3:7], data[3:7])

    def test_appended_dataset_compresses(self, path):
        with File(path, "w") as f:
            ds = f.create_dataset("x", dtype="<f8", shape=(0, 4),
                                  compression="zlib")
            ds.append(np.ones((10, 4)))
            ds.append(np.full((5, 4), 2.0))
        with File(path, "r") as f:
            out = f.read("x")
            assert out.shape == (15, 4)
            assert np.all(out[10:] == 2.0)

    def test_unknown_compression_rejected(self, path):
        with File(path, "w") as f:
            with pytest.raises(H5LiteError, match="compression"):
                f.create_dataset("x", data=np.zeros(4), compression="lz77")

    def test_corrupt_compressed_payload_detected(self, path):
        with File(path, "w") as f:
            f.create_dataset("x", data=np.random.default_rng(0).random(256),
                             compression="zlib")
        raw = bytearray(open(path, "rb").read())
        raw[40] ^= 0xFF
        open(path, "wb").write(raw)
        with File(path, "r") as f:
            with pytest.raises(H5LiteError):
                f.read("x")

    def test_compressed_unicode_string(self, path):
        with File(path, "w") as f:
            f.create_dataset("s", data=np.array("TOPAZ"), compression="zlib")
        with File(path, "r") as f:
            assert str(f.read("s")[()]) == "TOPAZ"
