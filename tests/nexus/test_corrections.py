"""Unit + property tests for the flux and vanadium corrections."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nexus.corrections import (
    FluxSpectrum,
    VanadiumData,
    read_flux_file,
    read_vanadium_file,
    write_flux_file,
    write_vanadium_file,
)
from repro.util.validation import ValidationError


@pytest.fixture()
def flux():
    k = np.linspace(2.0, 10.0, 64)
    return FluxSpectrum(momentum=k, density=np.exp(-((k - 5.0) ** 2)))


class TestFluxSpectrum:
    def test_cumulative_starts_at_zero_and_is_monotone(self, flux):
        cum = flux.cumulative(flux.momentum)
        assert cum[0] == 0.0
        assert np.all(np.diff(cum) >= 0)

    def test_total_equals_full_integral(self, flux):
        assert flux.integral(flux.k_min, flux.k_max) == pytest.approx(flux.total)

    def test_integral_additivity(self, flux):
        a, b, c = 2.5, 5.0, 9.0
        assert flux.integral(a, b) + flux.integral(b, c) == pytest.approx(
            flux.integral(a, c)
        )

    def test_integral_clamps_outside_band(self, flux):
        assert flux.integral(0.0, 1.0) == 0.0
        assert flux.integral(11.0, 20.0) == 0.0
        assert flux.integral(0.0, 20.0) == pytest.approx(flux.total)

    def test_vectorized_integral(self, flux):
        lo = np.array([2.0, 3.0, 4.0])
        hi = np.array([3.0, 4.0, 5.0])
        out = flux.integral(lo, hi)
        assert out.shape == (3,)
        assert np.all(out >= 0)

    def test_descending_grid_rejected(self):
        with pytest.raises(ValidationError, match="ascending"):
            FluxSpectrum(momentum=np.array([3.0, 2.0, 1.0]), density=np.ones(3))

    def test_negative_density_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            FluxSpectrum(momentum=np.array([1.0, 2.0]), density=np.array([1.0, -1.0]))

    def test_too_few_points_rejected(self):
        with pytest.raises(ValidationError, match="2 points"):
            FluxSpectrum(momentum=np.array([1.0]), density=np.array([1.0]))

    def test_from_wavelength_band(self):
        f = FluxSpectrum.from_wavelength_band(0.6, 2.6)
        assert f.k_min == pytest.approx(2 * np.pi / 2.6)
        assert f.k_max == pytest.approx(2 * np.pi / 0.6)
        assert f.total > 0

    def test_from_wavelength_band_validates(self):
        with pytest.raises(ValidationError):
            FluxSpectrum.from_wavelength_band(2.6, 0.6)

    @given(
        lo=st.floats(2.0, 10.0),
        hi=st.floats(2.0, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_integral_sign_property(self, lo, hi):
        """integral(lo, hi) = -integral(hi, lo), and >= 0 for lo <= hi."""
        k = np.linspace(2.0, 10.0, 64)
        spectrum = FluxSpectrum(momentum=k, density=np.exp(-((k - 5.0) ** 2)))
        fwd = spectrum.integral(lo, hi)
        assert fwd == pytest.approx(-spectrum.integral(hi, lo))
        if lo <= hi:
            assert fwd >= 0


class TestVanadium:
    def test_basic(self):
        v = VanadiumData(detector_weights=np.ones(10))
        assert v.n_detectors == 10

    def test_negative_weights_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            VanadiumData(detector_weights=np.array([1.0, -0.5]))

    def test_non_1d_rejected(self):
        with pytest.raises(ValidationError, match="1-D"):
            VanadiumData(detector_weights=np.ones((2, 2)))


class TestFileRoundtrips:
    def test_flux_file(self, tmp_path, flux):
        path = str(tmp_path / "flux.h5")
        write_flux_file(path, flux)
        back = read_flux_file(path)
        assert np.array_equal(back.momentum, flux.momentum)
        assert np.array_equal(back.density, flux.density)
        assert back.total == pytest.approx(flux.total)

    def test_vanadium_file(self, tmp_path):
        v = VanadiumData(detector_weights=np.linspace(0, 1, 20))
        path = str(tmp_path / "van.h5")
        write_vanadium_file(path, v)
        back = read_vanadium_file(path)
        assert np.array_equal(back.detector_weights, v.detector_weights)
