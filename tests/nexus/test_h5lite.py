"""Unit tests for the h5lite hierarchical container."""

import numpy as np
import pytest

from repro.nexus.h5lite import MAGIC, Dataset, File, Group, H5LiteError


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "test.h5")


class TestLifecycle:
    def test_write_then_read_roundtrip(self, path):
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        with File(path, "w") as f:
            f.create_dataset("a/b/c", data=data)
        with File(path, "r") as f:
            assert np.array_equal(f.read("a/b/c"), data)

    def test_invalid_mode_rejected(self, path):
        with pytest.raises(H5LiteError, match="mode"):
            File(path, "a")

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            File(str(tmp_path / "nope.h5"), "r")

    def test_write_after_close_rejected(self, path):
        f = File(path, "w")
        f.close()
        with pytest.raises(H5LiteError, match="not open for writing"):
            f.create_group("g")

    def test_create_on_read_mode_rejected(self, path):
        with File(path, "w") as f:
            f.create_group("g")
        with File(path, "r") as f:
            with pytest.raises(H5LiteError, match="not open for writing"):
                f.create_dataset("x", data=np.zeros(3))

    def test_close_is_idempotent(self, path):
        f = File(path, "w")
        f.close()
        f.close()


class TestGroups:
    def test_nested_group_creation(self, path):
        with File(path, "w") as f:
            g = f.create_group("a/b/c")
            assert g.name == "/a/b/c"
        with File(path, "r") as f:
            assert "a/b/c" in f
            assert isinstance(f["a/b"], Group)

    def test_create_group_idempotent(self, path):
        with File(path, "w") as f:
            g1 = f.create_group("x")
            g2 = f.create_group("x")
            assert g1 is g2

    def test_group_over_dataset_rejected(self, path):
        with File(path, "w") as f:
            f.create_dataset("x", data=np.zeros(2))
            with pytest.raises(H5LiteError, match="not a group"):
                f.create_group("x/y")

    def test_missing_path_keyerror(self, path):
        with File(path, "w") as f:
            f.create_group("a")
        with File(path, "r") as f:
            with pytest.raises(KeyError):
                f["a/missing"]

    def test_iteration_and_keys(self, path):
        with File(path, "w") as f:
            f.create_group("g1")
            f.create_dataset("d1", data=np.zeros(1))
        with File(path, "r") as f:
            assert set(f.keys()) == {"g1", "d1"}
            assert set(iter(f)) == {"g1", "d1"}

    def test_visit_walks_everything(self, path):
        with File(path, "w") as f:
            f.create_dataset("a/b", data=np.zeros(1))
            f.create_dataset("a/c", data=np.zeros(1))
        seen = []
        with File(path, "r") as f:
            f.visit(lambda name, node: seen.append(name))
        assert set(seen) == {"/a", "/a/b", "/a/c"}

    def test_groups_and_datasets_iterators(self, path):
        with File(path, "w") as f:
            f.create_group("g")
            f.create_dataset("d", data=np.zeros(1))
            assert [g.basename for g in f.groups()] == ["g"]
            assert [d.basename for d in f.datasets()] == ["d"]

    def test_require_dataset_type_check(self, path):
        with File(path, "w") as f:
            f.create_group("g")
        with File(path, "r") as f:
            with pytest.raises(H5LiteError, match="expected dataset"):
                f.require_dataset("g")


class TestDatasets:
    @pytest.mark.parametrize(
        "data",
        [
            np.arange(5, dtype=np.int32),
            np.arange(6, dtype=np.float32).reshape(2, 3),
            np.array(3.25),
            np.array(7, dtype=np.int64),
            np.ones((2, 2, 2), dtype=np.uint16),
            np.array([True, False, True]),
        ],
        ids=["i32-1d", "f32-2d", "f64-scalar", "i64-scalar", "u16-3d", "bool"],
    )
    def test_dtype_shape_roundtrip(self, path, data):
        with File(path, "w") as f:
            f.create_dataset("x", data=data)
        with File(path, "r") as f:
            out = f.read("x")
            assert out.dtype == data.dtype
            assert out.shape == data.shape
            assert np.array_equal(out, data)

    def test_unicode_string_roundtrip(self, path):
        with File(path, "w") as f:
            f.create_dataset("name", data=np.array("CORELLI"))
        with File(path, "r") as f:
            assert str(f.read("name")[()]) == "CORELLI"

    def test_duplicate_dataset_rejected(self, path):
        with File(path, "w") as f:
            f.create_dataset("x", data=np.zeros(2))
            with pytest.raises(H5LiteError, match="already exists"):
                f.create_dataset("x", data=np.zeros(2))

    def test_empty_dataset_needs_dtype_and_shape(self, path):
        with File(path, "w") as f:
            with pytest.raises(H5LiteError, match="explicit dtype"):
                f.create_dataset("x")

    def test_append_extends_axis0(self, path):
        with File(path, "w") as f:
            ds = f.create_dataset("x", dtype="<f8", shape=(0, 3))
            ds.append(np.ones((2, 3)))
            ds.append(2 * np.ones((1, 3)))
            assert ds.shape == (3, 3)
        with File(path, "r") as f:
            out = f.read("x")
            assert np.array_equal(out, np.array([[1, 1, 1], [1, 1, 1], [2, 2, 2]]))

    def test_append_shape_mismatch_rejected(self, path):
        with File(path, "w") as f:
            ds = f.create_dataset("x", dtype="<f8", shape=(0, 3))
            with pytest.raises(H5LiteError, match="trailing shape"):
                ds.append(np.ones((2, 4)))
            with pytest.raises(H5LiteError, match="ndim"):
                ds.append(np.ones(3))

    def test_lazy_slice_read(self, path):
        data = np.arange(100, dtype=np.float64).reshape(20, 5)
        with File(path, "w") as f:
            f.create_dataset("x", data=data)
        with File(path, "r") as f:
            ds = f["x"]
            assert isinstance(ds, Dataset)
            # full read first (verifies checksum), then row-range fast path
            assert np.array_equal(ds.read(), data)
            assert np.array_equal(ds[3:7], data[3:7])
            assert np.array_equal(ds[::2], data[::2])
            assert ds[0, 0] == 0.0

    def test_len_and_size(self, path):
        with File(path, "w") as f:
            ds = f.create_dataset("x", data=np.zeros((4, 2)))
            assert len(ds) == 4
            assert ds.size == 8
            assert ds.nbytes == 64
            s = f.create_dataset("scalar", data=np.array(1.0))
            with pytest.raises(TypeError):
                len(s)

    def test_object_arrays_rejected(self, path):
        with File(path, "w") as f:
            with pytest.raises((H5LiteError, ValueError)):
                f.create_dataset("x", data=np.array([object()], dtype=object))


class TestAttributes:
    def test_attr_roundtrip(self, path):
        with File(path, "w") as f:
            g = f.create_group("entry")
            g.attrs["NX_class"] = "NXentry"
            g.attrs["count"] = 42
            g.attrs["ratio"] = 2.5
            g.attrs["flag"] = True
            g.attrs["vec"] = np.array([1.0, 2.0, 3.0])
            ds = f.create_dataset("entry/x", data=np.zeros(2))
            ds.attrs["units"] = "microsecond"
        with File(path, "r") as f:
            g = f["entry"]
            assert g.attrs["NX_class"] == "NXentry"
            assert g.attrs["count"] == 42
            assert g.attrs["ratio"] == 2.5
            assert g.attrs["flag"] is True
            assert np.array_equal(g.attrs["vec"], [1.0, 2.0, 3.0])
            assert f["entry/x"].attrs["units"] == "microsecond"

    def test_attr_api(self, path):
        with File(path, "w") as f:
            g = f.create_group("g")
            g.attrs["a"] = 1
            assert "a" in g.attrs
            assert g.attrs.get("missing", "dflt") == "dflt"
            assert len(g.attrs) == 1
            assert dict(g.attrs.items()) == {"a": 1}

    def test_missing_attr_keyerror(self, path):
        with File(path, "w") as f:
            g = f.create_group("g")
            with pytest.raises(KeyError, match="no attribute"):
                g.attrs["nope"]

    def test_unsupported_attr_type_rejected(self, path):
        with File(path, "w") as f:
            g = f.create_group("g")
            with pytest.raises(H5LiteError, match="unsupported attribute"):
                g.attrs["bad"] = {"dict": 1}


class TestCorruption:
    def _write_simple(self, path):
        with File(path, "w") as f:
            f.create_dataset("x", data=np.arange(64, dtype=np.float64))

    def test_bad_magic_detected(self, path):
        self._write_simple(path)
        raw = bytearray(open(path, "rb").read())
        raw[:8] = b"NOTMAGIC"
        open(path, "wb").write(raw)
        with pytest.raises(H5LiteError, match="bad magic"):
            File(path, "r")

    def test_truncated_file_detected(self, path):
        self._write_simple(path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        with pytest.raises(H5LiteError):
            File(path, "r")

    def test_payload_corruption_fails_checksum(self, path):
        self._write_simple(path)
        raw = bytearray(open(path, "rb").read())
        raw[40] ^= 0xFF  # flip a payload byte
        open(path, "wb").write(raw)
        with File(path, "r") as f:
            with pytest.raises(H5LiteError, match="checksum"):
                f.read("x")

    def test_header_corruption_detected(self, path):
        self._write_simple(path)
        raw = bytearray(open(path, "rb").read())
        # corrupt inside the JSON header (just before the trailer length)
        raw[-20] ^= 0xFF
        open(path, "wb").write(raw)
        with pytest.raises(H5LiteError):
            File(path, "r")

    def test_magic_constant(self):
        assert MAGIC == b"H5LITE01"
