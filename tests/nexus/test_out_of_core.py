"""Out-of-core conformance suite (ISSUE 6 satellite a).

The contract under test: chunked storage and the tile manager are an
*I/O* detail, never a *numerics* detail.  A reduction that only ever
sees bounded event windows — any chunk size, any codec, any memory
budget (including budgets forcing a >= 4x spill), any shard execution
backend — must produce histograms **bit-identical**
(``np.array_equal``, not allclose) to the in-memory reduction of the
same table.

The 50-seed matrix below drives every (chunk size x codec x budget x
worker-backend) combination through ``sharded_binmd`` on a
``LazyEventTable`` and compares against ``bin_events`` on the
materialized :class:`EventTable`.  Full-pipeline cases do the same
through ``compute_cross_section``.  Golden-file cases pin v1 (whole
payload) / v2 (chunked) container back-compat: v1 files read bit for
bit, and a v1 -> v2 rewrite round-trips the table exactly.
"""

import os

import numpy as np
import pytest

from repro.core.binmd import bin_events
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import (
    MDEventWorkspace,
    load_md,
    save_md,
)
from repro.core.sharding import ShardConfig, sharded_binmd
from repro.jacc.workers import GLOBAL_POOL
from repro.nexus.events import EventTable
from repro.nexus.h5lite import CHUNK_CODECS, File
from repro.nexus.tiles import (
    EVENT_TABLE_PATH,
    LazyEventTable,
    TileError,
    TileManager,
    open_event_table,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

ROW_BYTES = 8 * 8  # 8 float64 columns

# the conformance matrix axes; each seed selects one combination (and
# its own random table), so 50 seeds sweep every axis several times
CHUNK_SIZES = (64, 113, 256, 500, 1024)
CODECS = CHUNK_CODECS  # ("none", "zlib", "shuffle-zlib")
BUDGET_CHUNKS = (1, 2, 4, None)  # budget as a chunk multiple; None = unbounded
WORKER_BACKENDS = (1, 2)  # in-process degenerate pool vs process pool
N_SEEDS = 50


def _combo(seed: int):
    return dict(
        chunk=CHUNK_SIZES[seed % len(CHUNK_SIZES)],
        codec=CODECS[seed % len(CODECS)],
        budget_chunks=BUDGET_CHUNKS[seed % len(BUDGET_CHUNKS)],
        workers=WORKER_BACKENDS[seed % len(WORKER_BACKENDS)],
        shards=1 + seed % 5,
    )


def _random_table(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(1000 + seed)
    t = np.zeros((n, 8))
    t[:, 0] = rng.uniform(0.05, 3.0, n)  # signal
    t[:, 1] = t[:, 0]  # Poisson: var == counts
    t[:, 3] = rng.integers(0, 200, n)  # detector id
    t[:, 5:8] = rng.uniform(-4.0, 4.0, (n, 3))  # Q_sample
    return t


def _workspace(table: np.ndarray) -> MDEventWorkspace:
    return MDEventWorkspace(
        events=EventTable(table),
        run_number=7,
        goniometer=np.eye(3),
        proton_charge=1.0,
        momentum_band=(0.5, 5.0),
        ub_matrix=np.eye(3),
    )


GRID = HKLGrid(basis=np.eye(3), minimum=(-5, -5, -5), maximum=(5, 5, 5),
               bins=(12, 12, 12))
TRANSFORMS = np.eye(3)[None, :, :]


@pytest.fixture(scope="module", autouse=True)
def _dispose_pool():
    yield
    GLOBAL_POOL.dispose()


# ---------------------------------------------------------------------------
# the 50-seed differential matrix
# ---------------------------------------------------------------------------

class TestOutOfCoreBitIdentity:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_matrix(self, tmp_path, seed):
        c = _combo(seed)
        n = 1200 + 37 * seed
        table = _random_table(seed, n)
        path = str(tmp_path / "run.md.h5")
        save_md(path, _workspace(table), chunk_events=c["chunk"],
                codec=c["codec"])

        ref = Hist3(GRID, track_errors=True)
        bin_events(ref, EventTable(table), TRANSFORMS)

        budget = (None if c["budget_chunks"] is None
                  else c["budget_chunks"] * c["chunk"] * ROW_BYTES)
        lazy = LazyEventTable(path, memory_budget=budget)
        try:
            got = Hist3(GRID, track_errors=True)
            sharded_binmd(
                got, lazy, TRANSFORMS,
                shards=ShardConfig(n_shards=c["shards"], workers=c["workers"]),
            )
            assert np.array_equal(got.signal, ref.signal), c
            assert np.array_equal(got.error_sq, ref.error_sq), c
            if budget is not None:
                assert lazy.tile_stats.peak_resident_bytes <= budget, c
        finally:
            lazy.close()

    def test_matrix_covers_deep_spill(self):
        """At least one seed in the matrix forces a >= 4x spill."""
        deep = [
            seed for seed in range(N_SEEDS)
            if _combo(seed)["budget_chunks"] is not None
            and (1200 + 37 * seed) * ROW_BYTES
            >= 4 * _combo(seed)["budget_chunks"] * _combo(seed)["chunk"] * ROW_BYTES
        ]
        assert len(deep) >= 10

    @pytest.mark.parametrize("codec", CODECS)
    def test_four_x_spill_explicit(self, tmp_path, codec):
        """Table >= 4x the budget: identical result, residency <= budget."""
        n, chunk = 4000, 250
        table = _random_table(99, n)
        path = str(tmp_path / "run.md.h5")
        save_md(path, _workspace(table), chunk_events=chunk, codec=codec)

        budget = 2 * chunk * ROW_BYTES
        assert n * ROW_BYTES >= 4 * budget

        ref = Hist3(GRID, track_errors=True)
        bin_events(ref, EventTable(table), TRANSFORMS)

        lazy = LazyEventTable(path, memory_budget=budget)
        got = Hist3(GRID, track_errors=True)
        sharded_binmd(got, lazy, TRANSFORMS,
                      shards=ShardConfig(n_shards=3, workers=1))
        assert np.array_equal(got.signal, ref.signal)
        assert np.array_equal(got.error_sq, ref.error_sq)
        stats = lazy.tile_stats
        assert stats.peak_resident_bytes <= budget
        assert stats.evictions > 0  # the spill actually happened
        lazy.close()

    def test_chunk_size_invariance(self, tmp_path):
        """The histogram is a pure function of the events, not the layout."""
        table = _random_table(5, 3000)
        ref = None
        for chunk in (64, 257, 1024, 4096):
            path = str(tmp_path / f"run_{chunk}.md.h5")
            save_md(path, _workspace(table), chunk_events=chunk)
            lazy = LazyEventTable(path, memory_budget=2 * chunk * ROW_BYTES)
            got = Hist3(GRID, track_errors=True)
            sharded_binmd(got, lazy, TRANSFORMS,
                          shards=ShardConfig(n_shards=2, workers=1))
            lazy.close()
            if ref is None:
                ref = got
            else:
                assert np.array_equal(got.signal, ref.signal)
                assert np.array_equal(got.error_sq, ref.error_sq)


# ---------------------------------------------------------------------------
# the tile manager itself
# ---------------------------------------------------------------------------

class TestTileManager:
    def _chunked(self, tmp_path, n=1000, chunk=128, codec="zlib"):
        path = str(tmp_path / "run.md.h5")
        table = _random_table(0, n)
        save_md(path, _workspace(table), chunk_events=chunk, codec=codec)
        return path, table

    def test_window_equals_slice(self, tmp_path):
        path, table = self._chunked(tmp_path)
        lazy = LazyEventTable(path, memory_budget=4 * 128 * ROW_BYTES)
        for a, b in ((0, 1000), (0, 128), (100, 300), (999, 1000),
                     (128, 256), (500, 500)):
            assert np.array_equal(lazy.window(a, b), table[a:b])
        lazy.close()

    def test_lru_eviction_and_hits(self, tmp_path):
        path, _ = self._chunked(tmp_path, n=1024, chunk=128)
        f = File(path, "r")
        ds = f.require_dataset(EVENT_TABLE_PATH)
        tiles = TileManager(ds, budget_bytes=2 * 128 * ROW_BYTES)
        tiles.chunk(0)
        tiles.chunk(1)
        tiles.chunk(0)  # hit
        assert tiles.stats.hits == 1 and tiles.stats.misses == 2
        tiles.chunk(2)  # evicts chunk 1 (LRU), not chunk 0
        assert tiles.stats.evictions == 1
        tiles.chunk(0)  # still resident
        assert tiles.stats.hits == 2
        assert tiles.stats.resident_bytes <= 2 * 128 * ROW_BYTES
        f.close()

    def test_decoded_chunks_are_read_only(self, tmp_path):
        path, _ = self._chunked(tmp_path)
        lazy = LazyEventTable(path, memory_budget=None)
        first = lazy.window(0, 64)
        with pytest.raises((ValueError, RuntimeError)):
            first[0, 0] = 1.0
        lazy.close()

    def test_materialize_round_trips(self, tmp_path):
        path, table = self._chunked(tmp_path)
        lazy = LazyEventTable(path)
        assert np.array_equal(lazy.materialize().data, table)
        assert np.array_equal(np.asarray(lazy), table)
        assert lazy.n_events == table.shape[0]
        assert len(lazy) == table.shape[0]
        lazy.close()

    def test_rejects_contiguous_dataset(self, tmp_path):
        path = str(tmp_path / "legacy.md.h5")
        save_md(path, _workspace(_random_table(1, 500)))  # legacy layout
        with pytest.raises((TileError, KeyError)):
            LazyEventTable(path).window(0, 10)

    def test_pickle_round_trip(self, tmp_path):
        import pickle

        path, table = self._chunked(tmp_path)
        lazy = LazyEventTable(path, memory_budget=8192)
        lazy.window(0, 10)  # open the file so state is live
        clone = pickle.loads(pickle.dumps(lazy))
        assert clone.memory_budget == 8192
        assert np.array_equal(clone.window(100, 200), table[100:200])
        clone.close()
        lazy.close()

    def test_open_event_table_helper(self, tmp_path):
        path, table = self._chunked(tmp_path)
        lazy = open_event_table(path, memory_budget=65536)
        assert np.array_equal(lazy.window(0, 50), table[:50])
        lazy.close()


# ---------------------------------------------------------------------------
# full pipeline: load_md(memory_budget=...) through compute_cross_section
# ---------------------------------------------------------------------------

class TestFullPipelineOutOfCore:
    @pytest.fixture(scope="class")
    def exp(self, tmp_path_factory):
        from repro.core.cross_section import compute_cross_section
        from repro.core.md_event_workspace import convert_to_md
        from repro.crystal.goniometer import Goniometer
        from repro.crystal.structures import benzil
        from repro.crystal.symmetry import point_group
        from repro.crystal.ub import UBMatrix
        from repro.instruments.corelli import make_corelli
        from repro.instruments.synth import (
            make_flux,
            make_vanadium,
            synthesize_run,
        )

        structure = benzil()
        inst = make_corelli(n_pixels=120)
        ub = UBMatrix.from_u_vectors(structure.cell, [0, 0, 1.0], [1.0, 0, 0])
        grid = HKLGrid.benzil_grid(bins=(13, 13, 1))
        pg = point_group("321")
        flux = make_flux(inst)
        sa = make_vanadium(inst).detector_weights
        wss = []
        for i, om in enumerate((0.0, 55.0, 110.0)):
            run = synthesize_run(
                instrument=inst, structure=structure, ub=ub,
                goniometer=Goniometer(om).rotation, n_events=400,
                rng=np.random.default_rng(8800 + i), run_number=i,
            )
            wss.append(convert_to_md(run, inst, run_index=i))
        md_dir = tmp_path_factory.mktemp("ooc_runs")
        paths = []
        for i, ws in enumerate(wss):
            p = str(md_dir / f"r{i}.md.h5")
            save_md(p, ws, chunk_events=37, codec="shuffle-zlib")
            paths.append(p)

        def compute(loader, **kw):
            kw.setdefault("backend", "serial")
            return compute_cross_section(
                loader, len(wss), grid, pg, flux, inst.directions, sa, **kw)

        ref = compute(lambda i: wss[i])
        return dict(paths=paths, compute=compute, ref=ref)

    @pytest.mark.parametrize("shards,workers", [(None, None), (3, 1), (2, 2)])
    def test_cross_section_identical(self, exp, shards, workers):
        budget = 2 * 37 * ROW_BYTES

        def lazy_loader(i):
            return load_md(exp["paths"][i], memory_budget=budget)

        kw = {}
        if shards is not None:
            kw["shards"] = ShardConfig(n_shards=shards, workers=workers)
        res = exp["compute"](lazy_loader, **kw)
        ref = exp["ref"]
        assert np.array_equal(res.cross_section.signal,
                              ref.cross_section.signal, equal_nan=True)
        assert np.array_equal(res.binmd.signal, ref.binmd.signal)
        assert np.array_equal(res.binmd.error_sq, ref.binmd.error_sq)
        assert np.array_equal(res.mdnorm.signal, ref.mdnorm.signal)

    def test_eager_chunked_load_identical(self, exp):
        """Without a budget, chunked files materialize to the same table."""
        res = exp["compute"](lambda i: load_md(exp["paths"][i]))
        ref = exp["ref"]
        assert np.array_equal(res.cross_section.signal,
                              ref.cross_section.signal, equal_nan=True)


# ---------------------------------------------------------------------------
# v1 <-> v2 container back-compat (golden files)
# ---------------------------------------------------------------------------

def _golden_table() -> np.ndarray:
    """Deterministic, integer-valued-float table: platform-stable bits."""
    n = 400
    t = np.zeros((n, 8))
    idx = np.arange(n, dtype=np.float64)
    t[:, 0] = 1.0 + (idx % 7.0)
    t[:, 1] = t[:, 0]
    t[:, 3] = idx % 50.0
    t[:, 5] = (idx % 11.0) - 5.0
    t[:, 6] = (idx % 9.0) - 4.0
    t[:, 7] = (idx % 5.0) - 2.0
    return t


class TestContainerBackCompat:
    def test_golden_v1_reads_bit_for_bit(self):
        path = os.path.join(GOLDEN_DIR, "events_v1.h5")
        with File(path, "r") as f:
            assert f.version == 1
            data = f.read("MDEventWorkspace/event_data")
        assert np.array_equal(np.ascontiguousarray(data.T), _golden_table())

    def test_golden_v2_chunked_reads_bit_for_bit(self):
        path = os.path.join(GOLDEN_DIR, "events_v2_chunked.h5")
        with File(path, "r") as f:
            assert f.version == 2
            ds = f.require_dataset(EVENT_TABLE_PATH)
            assert ds.is_chunked and ds.n_chunks == 4  # 400 events / 128
            data = f.read(EVENT_TABLE_PATH)
        assert np.array_equal(data, _golden_table())

    def test_golden_v1_loads_through_load_md(self):
        ws = load_md(os.path.join(GOLDEN_DIR, "events_v1.h5"))
        assert np.array_equal(ws.events.data, _golden_table())

    def test_golden_v1_to_v2_rewrite_round_trips(self, tmp_path):
        ws = load_md(os.path.join(GOLDEN_DIR, "events_v1.h5"))
        out = str(tmp_path / "rewritten_v2.md.h5")
        save_md(out, ws, chunk_events=64, codec="zlib")
        ws2 = load_md(out)
        assert np.array_equal(ws2.events.data, _golden_table())
        lazy = LazyEventTable(out, memory_budget=64 * ROW_BYTES)
        assert np.array_equal(lazy.window(0, 400), _golden_table())
        lazy.close()

    def test_v1_writer_is_still_available(self, tmp_path):
        """New code can still emit v1 containers, byte-deterministically."""
        table = _golden_table()

        def write(path):
            with File(path, "w", version=1) as f:
                grp = f.create_group("MDEventWorkspace")
                grp.create_dataset(
                    "event_data", data=np.ascontiguousarray(table.T),
                    compression="zlib",
                )
                grp.create_dataset("run_number",
                                   data=np.array(3, dtype=np.int64))

        a, b = str(tmp_path / "a.h5"), str(tmp_path / "b.h5")
        write(a)
        write(b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()
        with File(a, "r") as f:
            assert f.version == 1
            assert np.array_equal(
                f.read("MDEventWorkspace/event_data"), table.T)
