"""Unit tests for RunData and the 8-column EventTable."""

import numpy as np
import pytest

from repro.nexus.events import (
    COL_DETECTOR_ID,
    COL_ERROR_SQ,
    COL_GONIOMETER_INDEX,
    COL_Q,
    COL_QX,
    COL_QZ,
    COL_RUN_INDEX,
    COL_SIGNAL,
    N_EVENT_COLUMNS,
    EventTable,
    RunData,
)
from repro.util.validation import ValidationError


def _run(n=10, **over):
    kwargs = dict(
        run_number=1,
        detector_ids=np.arange(n, dtype=np.uint32),
        tof=np.linspace(1000, 2000, n),
        weights=np.ones(n, dtype=np.float32),
        goniometer=np.eye(3),
        proton_charge=1.0,
        wavelength_band=(0.5, 3.0),
    )
    kwargs.update(over)
    return RunData(**kwargs)


class TestRunData:
    def test_basic_construction(self):
        run = _run(5)
        assert run.n_events == 5
        assert run.detector_ids.dtype == np.uint32
        assert run.tof.dtype == np.float64

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="length mismatch"):
            _run(5, tof=np.zeros(4))
        with pytest.raises(ValidationError, match="length mismatch"):
            _run(5, weights=np.zeros(6, dtype=np.float32))

    def test_nonpositive_charge_rejected(self):
        with pytest.raises(ValidationError, match="proton_charge"):
            _run(proton_charge=0.0)

    def test_bad_wavelength_band_rejected(self):
        with pytest.raises(ValidationError, match="wavelength_band"):
            _run(wavelength_band=(3.0, 0.5))
        with pytest.raises(ValidationError, match="wavelength_band"):
            _run(wavelength_band=(0.0, 1.0))

    def test_bad_goniometer_rejected(self):
        with pytest.raises(ValidationError):
            _run(goniometer=np.ones((2, 2)))

    def test_ub_matrix_validated(self):
        run = _run(ub_matrix=np.eye(3))
        assert run.ub_matrix.shape == (3, 3)
        with pytest.raises(ValidationError):
            _run(ub_matrix=np.ones(4))


class TestEventTable:
    def test_column_layout_is_eight_wide(self):
        assert N_EVENT_COLUMNS == 8
        # the Julia listing's 1-based columns 6..8 are 0-based 5..7
        assert (COL_QX, COL_QZ) == (5, 7)
        assert COL_SIGNAL == 0

    def test_wrong_width_rejected(self):
        with pytest.raises(ValidationError, match="event table"):
            EventTable(np.zeros((4, 7)))

    def test_from_columns_broadcast_scalars(self):
        t = EventTable.from_columns(
            signal=np.ones(4),
            run_index=3,
            goniometer_index=2,
            q_sample=np.zeros((4, 3)),
        )
        assert np.all(t.data[:, COL_RUN_INDEX] == 3)
        assert np.all(t.data[:, COL_GONIOMETER_INDEX] == 2)
        # error^2 defaults to the signal (Poisson counts)
        assert np.array_equal(t.data[:, COL_ERROR_SQ], np.ones(4))

    def test_from_columns_shape_check(self):
        with pytest.raises(ValidationError, match="q_sample"):
            EventTable.from_columns(signal=np.ones(4), q_sample=np.zeros((3, 3)))

    def test_accessors(self):
        q = np.arange(12, dtype=float).reshape(4, 3)
        t = EventTable.from_columns(
            signal=np.full(4, 2.0), q_sample=q, detector_id=np.arange(4)
        )
        assert np.array_equal(t.q_sample, q)
        assert np.array_equal(t.detector_id, np.arange(4))
        assert t.total_signal() == 8.0
        assert len(t) == 4

    def test_concat(self):
        a = EventTable.from_columns(signal=np.ones(2), q_sample=np.zeros((2, 3)))
        b = EventTable.from_columns(signal=np.ones(3), q_sample=np.ones((3, 3)))
        c = a.concat(b)
        assert c.n_events == 5
        assert np.array_equal(c.data[:2], a.data)

    def test_empty(self):
        t = EventTable.empty()
        assert t.n_events == 0
        assert t.data.shape == (0, 8)

    def test_data_is_contiguous_float64(self):
        t = EventTable(np.asfortranarray(np.zeros((4, 8))))
        assert t.data.flags.c_contiguous
        assert t.data.dtype == np.float64
