"""Shared fixtures: one tiny synthesized experiment reused suite-wide.

Synthesis is the expensive part of every integration test, so the
standard dataset (a small CORELLI/Benzil ensemble plus its on-disk
NeXus / SaveMD / flux / vanadium files) is built once per session.
Tests must never mutate fixture state; anything that needs to write
gets its own tmp_path copies.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List

import numpy as np
import pytest

from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import MDEventWorkspace, convert_to_md, save_md
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil
from repro.crystal.symmetry import point_group
from repro.crystal.ub import UBMatrix
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.nexus.corrections import write_flux_file, write_vanadium_file
from repro.nexus.events import RunData
from repro.nexus.schema import write_event_nexus


@dataclass
class TinyExperiment:
    """A complete small experiment: 3 runs on a 500-pixel CORELLI."""

    instrument: object
    structure: object
    ub: UBMatrix
    grid: HKLGrid
    point_group: object
    runs: List[RunData]
    workspaces: List[MDEventWorkspace]
    nexus_paths: List[str]
    md_paths: List[str]
    flux_path: str
    vanadium_path: str
    flux: object
    vanadium: object


@pytest.fixture(scope="session")
def tiny_experiment(tmp_path_factory: pytest.TempPathFactory) -> TinyExperiment:
    base = tmp_path_factory.mktemp("tiny_experiment")
    structure = benzil()
    instrument = make_corelli(n_pixels=500)
    ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0], [1.0, 0.0, 0.0])
    grid = HKLGrid.benzil_grid(bins=(41, 41, 1))
    pg = point_group("321")
    flux = make_flux(instrument)
    vanadium = make_vanadium(instrument)

    runs, workspaces, nexus_paths, md_paths = [], [], [], []
    for i, omega in enumerate((0.0, 40.0, 80.0)):
        run = synthesize_run(
            instrument=instrument,
            structure=structure,
            ub=ub,
            goniometer=Goniometer(omega).rotation,
            n_events=1200,
            rng=np.random.default_rng(9000 + i),
            run_number=i,
        )
        ws = convert_to_md(run, instrument, run_index=i)
        npath = str(base / f"run_{i}.nxs.h5")
        mpath = str(base / f"run_{i}.md.h5")
        write_event_nexus(npath, run)
        save_md(mpath, ws)
        runs.append(run)
        workspaces.append(ws)
        nexus_paths.append(npath)
        md_paths.append(mpath)

    flux_path = str(base / "flux.h5")
    vanadium_path = str(base / "vanadium.h5")
    write_flux_file(flux_path, flux)
    write_vanadium_file(vanadium_path, vanadium)

    return TinyExperiment(
        instrument=instrument,
        structure=structure,
        ub=ub,
        grid=grid,
        point_group=pg,
        runs=runs,
        workspaces=workspaces,
        nexus_paths=nexus_paths,
        md_paths=md_paths,
        flux_path=flux_path,
        vanadium_path=vanadium_path,
        flux=flux,
        vanadium=vanadium,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
