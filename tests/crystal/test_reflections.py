"""Unit tests for reflection enumeration and the intensity model."""

import numpy as np
import pytest

from repro.crystal.reflections import generate_reflections
from repro.crystal.structures import benzil, bixbyite
from repro.util.validation import ValidationError


class TestEnumeration:
    def test_all_within_q_range(self):
        s = bixbyite()
        refl = generate_reflections(s, q_max=5.0, q_min=0.5)
        assert refl.n_reflections > 0
        assert np.all(refl.q_mag <= 5.0 + 1e-12)
        assert np.all(refl.q_mag >= 0.5 - 1e-12)

    def test_centering_respected(self):
        s = bixbyite()
        refl = generate_reflections(s, q_max=5.0)
        sums = refl.hkl.sum(axis=1)
        assert np.all(sums % 2 == 0), "Ia-3 forbids odd h+k+l"

    def test_no_000(self):
        refl = generate_reflections(benzil(), q_max=4.0)
        assert not np.any(np.all(refl.hkl == 0, axis=1))

    def test_friedel_pairs_present(self):
        """If hkl is enumerated, so is -hkl (the sphere is symmetric)."""
        refl = generate_reflections(bixbyite(), q_max=4.0)
        keys = {tuple(h) for h in refl.hkl}
        for h in list(keys)[:50]:
            assert tuple(-np.array(h)) in keys

    def test_empty_range_rejected(self):
        with pytest.raises(ValidationError):
            generate_reflections(benzil(), q_max=0.4, q_min=0.5)

    def test_larger_sphere_has_more_reflections(self):
        s = benzil()
        small = generate_reflections(s, q_max=3.0)
        large = generate_reflections(s, q_max=6.0)
        assert large.n_reflections > small.n_reflections


class TestIntensityModel:
    def test_orbit_constant_intensity(self):
        """Symmetry-equivalent reflections must share one intensity —
        otherwise symmetrization in the reduction would be unphysical."""
        s = bixbyite()
        refl = generate_reflections(s, q_max=5.0)
        lookup = {tuple(h): i for h, i in zip(map(tuple, refl.hkl), refl.intensity)}
        pg = s.point_group
        checked = 0
        for hkl, intensity in list(lookup.items())[:100]:
            for image in pg.apply(np.array(hkl, dtype=float)):
                key = tuple(int(round(x)) for x in image)
                if key in lookup:
                    assert lookup[key] == pytest.approx(intensity, rel=1e-12)
                    checked += 1
        assert checked > 100

    def test_deterministic(self):
        a = generate_reflections(benzil(), q_max=4.0)
        b = generate_reflections(benzil(), q_max=4.0)
        assert np.array_equal(a.hkl, b.hkl)
        assert np.array_equal(a.intensity, b.intensity)

    def test_different_samples_different_intensities(self):
        """The per-material seed decorrelates the patterns."""
        a = generate_reflections(benzil(), q_max=4.0)
        sprime = bixbyite()
        b = generate_reflections(sprime, q_max=4.0)
        shared = set(map(tuple, a.hkl)) & set(map(tuple, b.hkl))
        la = {tuple(h): i for h, i in zip(map(tuple, a.hkl), a.intensity)}
        lb = {tuple(h): i for h, i in zip(map(tuple, b.hkl), b.intensity)}
        diffs = [abs(la[h] - lb[h]) for h in shared]
        assert max(diffs) > 1e-6

    def test_normalized_to_count(self):
        refl = generate_reflections(benzil(), q_max=5.0)
        assert refl.intensity.sum() == pytest.approx(refl.n_reflections)

    def test_intensities_positive(self):
        refl = generate_reflections(bixbyite(), q_max=5.0)
        assert np.all(refl.intensity > 0)
