"""Tests for peak indexing and UB refinement."""

import numpy as np
import pytest

from repro.crystal.goniometer import rotation_about_axis
from repro.crystal.indexing import (
    IndexingResult,
    index_peaks,
    indexing_error,
    refine_ub,
)
from repro.crystal.lattice import UnitCell
from repro.crystal.structures import benzil
from repro.crystal.ub import UBMatrix
from repro.util.validation import ValidationError


def _oriented_ub(cell, axis=(1.0, 2.0, 0.5), angle=33.0):
    u = rotation_about_axis(np.array(axis), angle)
    return UBMatrix(cell=cell, u=u)


def _peaks_from(ub, hkls, noise=0.0, rng=None):
    q = ub.hkl_to_q_sample(np.asarray(hkls, dtype=float))
    if noise:
        q = q + rng.normal(scale=noise, size=q.shape)
    return q


CUBIC = UnitCell(5.0, 5.0, 5.0)
HKLS = np.array(
    [[1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 0], [2, -1, 1], [1, 2, 3],
     [-2, 0, 1], [3, 1, -1]]
)


class TestIndexPeaks:
    def test_exact_peaks_all_indexed(self):
        ub = _oriented_ub(CUBIC)
        q = _peaks_from(ub, HKLS)
        result = index_peaks(q, ub)
        assert result.fraction_indexed == 1.0
        assert np.array_equal(result.hkl, HKLS)
        assert np.all(result.residual < 1e-10)

    def test_noisy_peaks_mostly_indexed(self, rng):
        ub = _oriented_ub(CUBIC)
        q = _peaks_from(ub, HKLS, noise=0.02, rng=rng)
        result = index_peaks(q, ub, tolerance=0.2)
        assert result.fraction_indexed >= 0.8

    def test_wrong_orientation_fails_to_index(self):
        ub = _oriented_ub(CUBIC, angle=0.0)
        wrong = _oriented_ub(CUBIC, angle=25.0)
        q = _peaks_from(ub, HKLS)
        result = index_peaks(q, wrong, tolerance=0.1)
        assert result.fraction_indexed < 0.5

    def test_validation(self):
        ub = _oriented_ub(CUBIC)
        with pytest.raises(ValidationError):
            index_peaks(np.zeros(3), ub)
        with pytest.raises(Exception):
            index_peaks(np.zeros((2, 3)), ub, tolerance=0.9)

    def test_result_counts(self):
        r = IndexingResult(
            hkl=np.zeros((4, 3), dtype=np.int64),
            indexed=np.array([True, True, False, True]),
            residual=np.zeros(4),
        )
        assert r.n_indexed == 3
        assert r.fraction_indexed == 0.75


class TestRefineUb:
    @pytest.mark.parametrize("angle", [5.0, 45.0, 120.0, -60.0])
    def test_recovers_known_orientation(self, angle):
        ub_true = _oriented_ub(CUBIC, angle=angle)
        q = _peaks_from(ub_true, HKLS)
        ub_fit = refine_ub(q, HKLS, CUBIC)
        assert np.allclose(ub_fit.matrix, ub_true.matrix, atol=1e-10)
        assert indexing_error(ub_fit, q, HKLS) < 1e-10

    def test_recovers_orientation_for_trigonal_cell(self):
        cell = benzil().cell
        ub_true = _oriented_ub(cell, axis=(0.2, 1.0, 0.7), angle=77.0)
        q = _peaks_from(ub_true, HKLS)
        ub_fit = refine_ub(q, HKLS, cell)
        assert np.allclose(ub_fit.matrix, ub_true.matrix, atol=1e-9)

    def test_noise_robustness(self, rng):
        ub_true = _oriented_ub(CUBIC, angle=30.0)
        q = _peaks_from(ub_true, HKLS, noise=0.01, rng=rng)
        ub_fit = refine_ub(q, HKLS, CUBIC)
        # orientation recovered to well under a degree:
        # |U_fit U_true^T - I| small
        delta = ub_fit.u @ ub_true.u.T
        angle = np.degrees(np.arccos(np.clip((np.trace(delta) - 1) / 2, -1, 1)))
        assert angle < 1.0

    def test_result_is_proper_rotation(self, rng):
        ub_true = _oriented_ub(CUBIC, angle=64.0)
        q = _peaks_from(ub_true, HKLS, noise=0.05, rng=rng)
        ub_fit = refine_ub(q, HKLS, CUBIC)
        assert np.allclose(ub_fit.u @ ub_fit.u.T, np.eye(3), atol=1e-10)
        assert np.linalg.det(ub_fit.u) == pytest.approx(1.0)

    def test_collinear_peaks_rejected(self):
        with pytest.raises(ValidationError, match="collinear"):
            refine_ub(
                np.array([[1.0, 0, 0], [2.0, 0, 0]]),
                np.array([[1, 0, 0], [2, 0, 0]]),
                CUBIC,
            )

    def test_too_few_peaks_rejected(self):
        with pytest.raises(ValidationError):
            refine_ub(np.array([[1.0, 0, 0]]), np.array([[1, 0, 0]]), CUBIC)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            refine_ub(np.zeros((3, 3)), np.zeros((2, 3)), CUBIC)


class TestEndToEndIndexing:
    def test_recover_ub_from_reduced_peaks(self, tiny_experiment):
        """The final loop closure: reduce the synthetic measurement,
        find peaks, index them with the known UB, refine, and land on
        (a symmetry-equivalent of) the generation orientation."""
        from repro.core.cross_section import compute_cross_section
        from repro.core.md_event_workspace import load_md
        from repro.core.peaks import find_peaks

        exp = tiny_experiment
        reduced = compute_cross_section(
            load_run=lambda i: load_md(exp.md_paths[i]),
            n_runs=len(exp.md_paths),
            grid=exp.grid,
            point_group=exp.point_group,
            flux=exp.flux,
            det_directions=exp.instrument.directions,
            solid_angles=exp.vanadium.detector_weights,
            backend="vectorized",
        )
        peaks = find_peaks(reduced.binmd).strongest(8)
        assert peaks.n_peaks >= 3
        # grid coords -> q_sample through the generation UB's lattice
        q_sample = exp.ub.hkl_to_q_sample(peaks.hkl)
        result = index_peaks(q_sample, exp.ub, tolerance=0.45)
        good = result.indexed
        if good.sum() >= 3:
            ub_fit = refine_ub(q_sample[good], result.hkl[good], exp.structure.cell)
            err = indexing_error(ub_fit, q_sample[good], result.hkl[good])
            assert err < 0.3
