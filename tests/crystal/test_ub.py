"""Unit + property tests for UB matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crystal.lattice import UnitCell
from repro.crystal.ub import TWO_PI, UBMatrix
from repro.util.validation import ValidationError


@pytest.fixture()
def cubic_ub():
    return UBMatrix(cell=UnitCell(4.0, 4.0, 4.0))


class TestBasics:
    def test_identity_orientation_q(self, cubic_ub):
        q = cubic_ub.hkl_to_q_sample([1, 0, 0])
        assert np.allclose(q, [TWO_PI / 4.0, 0, 0])

    def test_roundtrip(self, cubic_ub):
        hkl = np.array([1.0, -2.0, 3.0])
        assert np.allclose(cubic_ub.q_sample_to_hkl(cubic_ub.hkl_to_q_sample(hkl)), hkl)

    def test_roundtrip_batch(self, cubic_ub):
        hkl = np.random.default_rng(0).normal(size=(20, 3))
        q = cubic_ub.hkl_to_q_sample(hkl)
        assert q.shape == (20, 3)
        assert np.allclose(cubic_ub.q_sample_to_hkl(q), hkl)

    def test_q_magnitude_matches_cell(self, cubic_ub):
        q = cubic_ub.hkl_to_q_sample([1, 1, 0])
        assert np.linalg.norm(q) == pytest.approx(
            cubic_ub.cell.q_magnitude([1, 1, 0])
        )

    def test_non_orthogonal_u_rejected(self):
        with pytest.raises(ValidationError, match="orthogonal"):
            UBMatrix(cell=UnitCell(4, 4, 4), u=np.ones((3, 3)))

    def test_improper_rotation_rejected(self):
        with pytest.raises(ValidationError, match="proper"):
            UBMatrix(cell=UnitCell(4, 4, 4), u=np.diag([1.0, 1.0, -1.0]))


class TestFromUVectors:
    def test_u_along_maps_to_beam_axis(self):
        cell = UnitCell(4.0, 5.0, 6.0)
        ub = UBMatrix.from_u_vectors(cell, [0, 0, 1], [1, 0, 0])
        q = ub.hkl_to_q_sample([0, 0, 1])
        direction = q / np.linalg.norm(q)
        assert np.allclose(direction, [0, 0, 1], atol=1e-12)

    def test_v_lies_in_xz_plane(self):
        cell = UnitCell(4.0, 5.0, 6.0)
        ub = UBMatrix.from_u_vectors(cell, [0, 0, 1], [1, 0, 0])
        q = ub.hkl_to_q_sample([1, 0, 0])
        assert q[1] == pytest.approx(0.0, abs=1e-12)
        assert q[0] > 0

    def test_parallel_uv_rejected(self):
        cell = UnitCell(4, 4, 4)
        with pytest.raises(ValidationError, match="parallel"):
            UBMatrix.from_u_vectors(cell, [0, 0, 1], [0, 0, 2])

    def test_zero_u_rejected(self):
        cell = UnitCell(4, 4, 4)
        with pytest.raises(ValidationError, match="zero"):
            UBMatrix.from_u_vectors(cell, [0, 0, 0], [1, 0, 0])

    def test_preserves_magnitudes(self):
        """U is a rotation: |Q(hkl)| must match the cell's 2 pi / d."""
        cell = UnitCell(8.376, 8.376, 13.7, 90, 90, 120)
        ub = UBMatrix.from_u_vectors(cell, [1, 1, 0], [0, 0, 1])
        for hkl in ([1, 0, 0], [1, 1, 0], [2, -1, 3]):
            q = ub.hkl_to_q_sample(hkl)
            assert np.linalg.norm(q) == pytest.approx(cell.q_magnitude(hkl))


class TestFromMatrix:
    def test_recovers_cell_and_orientation(self):
        cell = UnitCell(5.0, 6.0, 7.0, 80.0, 95.0, 105.0)
        original = UBMatrix.from_u_vectors(cell, [1, 0, 0], [0, 1, 0])
        recovered = UBMatrix.from_matrix(original.matrix)
        assert recovered.cell.a == pytest.approx(cell.a)
        assert recovered.cell.gamma == pytest.approx(cell.gamma)
        assert np.allclose(recovered.matrix, original.matrix, atol=1e-10)

    @given(
        a=st.floats(3.0, 12.0),
        c=st.floats(3.0, 12.0),
        angle=st.floats(-170.0, 170.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, a, c, angle):
        from repro.crystal.goniometer import rotation_about_axis

        cell = UnitCell(a, a, c)
        u = rotation_about_axis(np.array([1.0, 2.0, 3.0]), angle)
        original = UBMatrix(cell=cell, u=u)
        recovered = UBMatrix.from_matrix(original.matrix)
        assert np.allclose(recovered.matrix, original.matrix, atol=1e-9)


class TestHklTransform:
    def test_without_goniometer(self, cubic_ub):
        m = cubic_ub.hkl_transform()
        q = cubic_ub.hkl_to_q_sample([1, 2, 3])
        assert np.allclose(m @ q, [1, 2, 3])

    def test_with_goniometer(self, cubic_ub):
        from repro.crystal.goniometer import goniometer_omega_chi_phi

        r = goniometer_omega_chi_phi(30.0, 10.0, 5.0)
        m = cubic_ub.hkl_transform(goniometer=r)
        q_sample = cubic_ub.hkl_to_q_sample([1, -1, 2])
        q_lab = r @ q_sample
        assert np.allclose(m @ q_lab, [1, -1, 2])
