"""Unit tests for unit cells and the Busing-Levy B matrix."""

import numpy as np
import pytest

from repro.crystal.lattice import UnitCell
from repro.util.validation import ValidationError


class TestCubic:
    cell = UnitCell(4.0, 4.0, 4.0)

    def test_volume(self):
        assert self.cell.volume == pytest.approx(64.0)

    def test_metric_tensor_is_diagonal(self):
        assert np.allclose(self.cell.metric_tensor(), 16.0 * np.eye(3))

    def test_reciprocal_lengths(self):
        rec = self.cell.reciprocal()
        assert rec.a == pytest.approx(0.25)
        assert rec.alpha == pytest.approx(90.0)

    def test_b_matrix_is_diagonal(self):
        assert np.allclose(self.cell.b_matrix(), 0.25 * np.eye(3))

    def test_d_spacing_known_values(self):
        assert self.cell.d_spacing([1, 0, 0]) == pytest.approx(4.0)
        assert self.cell.d_spacing([1, 1, 0]) == pytest.approx(4.0 / np.sqrt(2))
        assert self.cell.d_spacing([1, 1, 1]) == pytest.approx(4.0 / np.sqrt(3))

    def test_q_magnitude(self):
        assert self.cell.q_magnitude([2, 0, 0]) == pytest.approx(2 * 2 * np.pi / 4.0)

    def test_d_spacing_vectorized(self):
        hkl = np.array([[1, 0, 0], [2, 0, 0]])
        d = self.cell.d_spacing(hkl)
        assert d.shape == (2,)
        assert d[0] == pytest.approx(2 * d[1])


class TestHexagonal:
    """Benzil's trigonal cell (hexagonal axes)."""

    cell = UnitCell(8.376, 8.376, 13.700, 90.0, 90.0, 120.0)

    def test_volume_formula(self):
        expected = 8.376**2 * 13.700 * np.sqrt(3) / 2
        assert self.cell.volume == pytest.approx(expected)

    def test_d100_hexagonal(self):
        # d(100) = a * sqrt(3)/2 for hexagonal
        assert self.cell.d_spacing([1, 0, 0]) == pytest.approx(
            8.376 * np.sqrt(3) / 2
        )

    def test_d001(self):
        assert self.cell.d_spacing([0, 0, 1]) == pytest.approx(13.700)

    def test_symmetry_equivalents_share_d(self):
        # {100} family in a hexagonal lattice: (100), (010), (-110)
        d = self.cell.d_spacing(np.array([[1, 0, 0], [0, 1, 0], [-1, 1, 0]]))
        assert np.allclose(d, d[0])

    def test_b_matrix_consistent_with_metric(self):
        # B^T B must equal the reciprocal metric tensor
        b = self.cell.b_matrix()
        g_star = np.linalg.inv(self.cell.metric_tensor())
        assert np.allclose(b.T @ b, g_star, atol=1e-12)


class TestTriclinic:
    cell = UnitCell(5.0, 6.0, 7.0, 80.0, 95.0, 105.0)

    def test_reciprocal_of_reciprocal_is_identity(self):
        rec2 = self.cell.reciprocal().reciprocal()
        assert rec2.a == pytest.approx(self.cell.a)
        assert rec2.b == pytest.approx(self.cell.b)
        assert rec2.c == pytest.approx(self.cell.c)
        assert rec2.alpha == pytest.approx(self.cell.alpha)
        assert rec2.beta == pytest.approx(self.cell.beta)
        assert rec2.gamma == pytest.approx(self.cell.gamma)

    def test_b_matrix_consistent_with_metric(self):
        b = self.cell.b_matrix()
        g_star = np.linalg.inv(self.cell.metric_tensor())
        assert np.allclose(b.T @ b, g_star, atol=1e-12)

    def test_d_spacing_matches_metric_formula(self):
        hkl = np.array([2.0, -1.0, 3.0])
        g_star = np.linalg.inv(self.cell.metric_tensor())
        expected = 1.0 / np.sqrt(hkl @ g_star @ hkl)
        assert self.cell.d_spacing(hkl) == pytest.approx(expected)


class TestValidation:
    def test_negative_edge_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            UnitCell(-1.0, 4.0, 4.0)

    def test_bad_angle_rejected(self):
        with pytest.raises(ValidationError, match="angle"):
            UnitCell(4, 4, 4, alpha=0.0)
        with pytest.raises(ValidationError, match="angle"):
            UnitCell(4, 4, 4, beta=180.0)

    def test_degenerate_angles_rejected(self):
        # alpha + beta + gamma constraint violated -> no valid cell
        with pytest.raises(ValidationError, match="degenerate"):
            UnitCell(4, 4, 4, 170.0, 170.0, 170.0)
