"""Unit + property tests for point-group generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crystal.symmetry import _EXPECTED_ORDER, PointGroup, point_group
from repro.util.validation import ValidationError

ALL_GROUPS = sorted(_EXPECTED_ORDER)


class TestGroupOrders:
    @pytest.mark.parametrize("name", ALL_GROUPS)
    def test_expected_order(self, name):
        assert point_group(name).order == _EXPECTED_ORDER[name]

    def test_paper_trip_counts(self):
        """Benzil: 6 ops (321); Bixbyite: 24 ops (m-3) — Table II."""
        assert point_group("321").order == 6
        assert point_group("m-3").order == 24

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown point group"):
            point_group("fancy")

    def test_cache_returns_same_object(self):
        assert point_group("m-3m") is point_group("m-3m")


class TestGroupAxioms:
    @pytest.mark.parametrize("name", ["-1", "2/m", "321", "m-3", "4/mmm", "m-3m"])
    def test_identity_present(self, name):
        pg = point_group(name)
        assert pg.contains(np.eye(3, dtype=np.int64))

    @pytest.mark.parametrize("name", ["321", "m-3", "6/mmm"])
    def test_closure(self, name):
        pg = point_group(name)
        for a in pg.operations:
            for b in pg.operations:
                assert pg.contains(a @ b), f"{a} @ {b} escapes {name}"

    @pytest.mark.parametrize("name", ["321", "m-3", "mmm"])
    def test_inverses_present(self, name):
        pg = point_group(name)
        for op in pg.operations:
            inv = np.rint(np.linalg.inv(op)).astype(np.int64)
            assert pg.contains(inv)

    @pytest.mark.parametrize("name", ["-3", "m-3", "m-3m", "mmm"])
    def test_centrosymmetric_groups_contain_inversion(self, name):
        assert point_group(name).contains(-np.eye(3, dtype=np.int64))

    def test_321_not_centrosymmetric(self):
        assert not point_group("321").contains(-np.eye(3, dtype=np.int64))

    @pytest.mark.parametrize("name", ALL_GROUPS)
    def test_all_dets_are_unit(self, name):
        dets = np.linalg.det(point_group(name).operations.astype(float))
        assert np.allclose(np.abs(dets), 1.0)

    @pytest.mark.parametrize("name", ALL_GROUPS)
    def test_operations_are_unique(self, name):
        ops = point_group(name).operations
        keys = {tuple(op.ravel()) for op in ops}
        assert len(keys) == ops.shape[0]


class TestApply:
    def test_apply_shape(self):
        pg = point_group("m-3")
        out = pg.apply(np.ones((5, 3)))
        assert out.shape == (24, 5, 3)

    def test_apply_single(self):
        pg = point_group("-1")
        out = pg.apply([1.0, 2.0, 3.0])
        assert out.shape == (2, 3)
        assert {tuple(v) for v in out} == {(1.0, 2.0, 3.0), (-1.0, -2.0, -3.0)}

    def test_cubic_orbit_of_100(self):
        """m-3m sends (100) to all 6 axis directions."""
        pg = point_group("m-3m")
        images = pg.apply([1.0, 0.0, 0.0])
        unique = {tuple(np.rint(v).astype(int)) for v in images}
        assert unique == {
            (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1),
        }

    @given(
        h=st.integers(-6, 6), k=st.integers(-6, 6), l=st.integers(-6, 6),
        name=st.sampled_from(["321", "m-3", "mmm", "6/mmm"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_orbit_representative_is_orbit_invariant(self, h, k, l, name):
        """Every image of hkl must map to the same representative."""
        pg = point_group(name)
        hkl = np.array([h, k, l], dtype=float)
        rep = pg.orbit_representative(hkl)
        for image in pg.apply(hkl):
            assert np.allclose(pg.orbit_representative(image), rep)

    def test_transforms_float_contiguous(self):
        t = point_group("321").transforms_float()
        assert t.dtype == np.float64
        assert t.flags.c_contiguous
        assert t.shape == (6, 3, 3)


class TestHexagonalAction:
    def test_threefold_preserves_hexagonal_q(self):
        """The 3-fold op must preserve |Q| in the hexagonal metric."""
        from repro.crystal.lattice import UnitCell

        cell = UnitCell(8.376, 8.376, 13.7, 90, 90, 120)
        pg = point_group("321")
        hkl = np.array([2.0, 1.0, 3.0])
        q0 = cell.q_magnitude(hkl)
        for image in pg.apply(hkl):
            assert cell.q_magnitude(image) == pytest.approx(q0)

    def test_m3_preserves_cubic_q(self):
        from repro.crystal.lattice import UnitCell

        cell = UnitCell(9.4118, 9.4118, 9.4118)
        pg = point_group("m-3")
        hkl = np.array([3.0, -1.0, 2.0])
        q0 = cell.q_magnitude(hkl)
        for image in pg.apply(hkl):
            assert cell.q_magnitude(image) == pytest.approx(q0)
