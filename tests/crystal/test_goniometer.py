"""Unit tests for goniometer rotations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crystal.goniometer import (
    Goniometer,
    goniometer_omega_chi_phi,
    rotation_about_axis,
)
from repro.util.validation import ValidationError


class TestRotationAboutAxis:
    def test_identity_at_zero(self):
        assert np.allclose(rotation_about_axis([0, 1, 0], 0.0), np.eye(3))

    def test_90_about_y_maps_z_to_x(self):
        r = rotation_about_axis([0, 1, 0], 90.0)
        assert np.allclose(r @ [0, 0, 1], [1, 0, 0], atol=1e-12)

    def test_90_about_z_maps_x_to_y(self):
        r = rotation_about_axis([0, 0, 1], 90.0)
        assert np.allclose(r @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_axis_is_fixed(self):
        axis = np.array([1.0, 2.0, 3.0])
        r = rotation_about_axis(axis, 123.0)
        assert np.allclose(r @ axis, axis)

    def test_normalizes_axis(self):
        assert np.allclose(
            rotation_about_axis([0, 2, 0], 30.0), rotation_about_axis([0, 1, 0], 30.0)
        )

    def test_zero_axis_rejected(self):
        with pytest.raises(ValidationError, match="non-zero"):
            rotation_about_axis([0, 0, 0], 10.0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValidationError):
            rotation_about_axis([1, 0], 10.0)

    @given(angle=st.floats(-360.0, 360.0))
    @settings(max_examples=50, deadline=None)
    def test_always_proper_rotation(self, angle):
        r = rotation_about_axis(np.array([1.0, -2.0, 0.5]), angle)
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)

    @given(angle=st.floats(-180.0, 180.0))
    @settings(max_examples=30, deadline=None)
    def test_inverse_is_negative_angle(self, angle):
        axis = np.array([0.3, 1.0, -0.2])
        forward = rotation_about_axis(axis, angle)
        backward = rotation_about_axis(axis, -angle)
        assert np.allclose(forward @ backward, np.eye(3), atol=1e-12)


class TestOmegaChiPhi:
    def test_composition_order(self):
        r = goniometer_omega_chi_phi(30.0, 20.0, 10.0)
        expected = (
            rotation_about_axis([0, 1, 0], 30.0)
            @ rotation_about_axis([0, 0, 1], 20.0)
            @ rotation_about_axis([0, 1, 0], 10.0)
        )
        assert np.allclose(r, expected)

    def test_pure_omega(self):
        assert np.allclose(
            goniometer_omega_chi_phi(45.0), rotation_about_axis([0, 1, 0], 45.0)
        )

    def test_is_rotation(self):
        r = goniometer_omega_chi_phi(33.0, -12.0, 71.0)
        assert np.allclose(r.T @ r, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)


class TestGoniometer:
    def test_rotation_matches_function(self):
        g = Goniometer(omega=15.0, chi=5.0, phi=-20.0)
        assert np.allclose(g.rotation, goniometer_omega_chi_phi(15.0, 5.0, -20.0))

    def test_inverse_is_transpose(self):
        g = Goniometer(omega=77.0, chi=13.0)
        assert np.allclose(g.inverse @ g.rotation, np.eye(3), atol=1e-12)

    def test_frozen(self):
        g = Goniometer(omega=1.0)
        with pytest.raises(AttributeError):
            g.omega = 2.0
