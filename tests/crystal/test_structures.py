"""Unit tests for the published sample definitions."""

import numpy as np
import pytest

from repro.crystal.structures import CrystalStructure, benzil, bixbyite
from repro.crystal.lattice import UnitCell
from repro.util.validation import ValidationError


class TestBenzil:
    s = benzil()

    def test_cell_parameters(self):
        assert self.s.cell.a == pytest.approx(8.376)
        assert self.s.cell.c == pytest.approx(13.700)
        assert self.s.cell.gamma == pytest.approx(120.0)

    def test_point_group_is_321(self):
        assert self.s.point_group.order == 6

    def test_primitive_allows_everything(self):
        hkl = np.array([[1, 0, 0], [1, 1, 1], [2, 1, 0]])
        assert np.all(self.s.allowed(hkl))

    def test_diffuse_heavy(self):
        """Benzil is the diffuse-scattering use case."""
        assert self.s.diffuse_fraction > bixbyite().diffuse_fraction


class TestBixbyite:
    s = bixbyite()

    def test_cubic_cell(self):
        assert self.s.cell.a == self.s.cell.b == self.s.cell.c
        assert self.s.cell.a == pytest.approx(9.4118)

    def test_point_group_is_m3(self):
        assert self.s.point_group.order == 24

    def test_body_centering_rule(self):
        """Ia-3: h+k+l must be even."""
        allowed = self.s.allowed(np.array([[1, 1, 0], [2, 0, 0], [1, 1, 1], [1, 0, 0]]))
        assert list(allowed) == [True, True, False, False]


class TestCenteringRules:
    cell = UnitCell(5, 5, 5)

    def _structure(self, centering):
        return CrystalStructure(
            name="x", cell=self.cell, point_group_symbol="1", centering=centering
        )

    def test_face_centering(self):
        s = self._structure("F")
        # F: h,k,l all even or all odd
        allowed = s.allowed(np.array([[1, 1, 1], [2, 2, 2], [1, 2, 3], [2, 1, 1]]))
        assert list(allowed) == [True, True, False, False]

    def test_a_b_c_centering(self):
        assert self._structure("A").allowed(np.array([[0, 1, 1]]))[0]
        assert not self._structure("A").allowed(np.array([[0, 1, 2]]))[0]
        assert self._structure("B").allowed(np.array([[1, 0, 1]]))[0]
        assert self._structure("C").allowed(np.array([[1, 1, 5]]))[0]

    def test_rhombohedral_obverse(self):
        s = self._structure("R")
        assert s.allowed(np.array([[1, 0, 1]]))[0]  # -1+0+1 = 0
        assert not s.allowed(np.array([[1, 0, 0]]))[0]  # -1 % 3 != 0

    def test_unknown_centering_rejected(self):
        with pytest.raises(ValidationError, match="centering"):
            self._structure("Q")

    def test_unknown_point_group_rejected_eagerly(self):
        with pytest.raises(ValidationError, match="point group"):
            CrystalStructure(
                name="x", cell=self.cell, point_group_symbol="nope", centering="P"
            )
