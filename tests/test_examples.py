"""Smoke tests: the shipped examples must run end to end.

Each example is executed in-process via ``runpy`` with the benchmark
data cache pointed at a temp dir, so they exercise the same code paths
a user sees (examples print to stdout; output content is sanity-checked
through capsys).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


@pytest.fixture(autouse=True)
def bench_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DATA", str(tmp_path))


def _run(name: str) -> None:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        _run("quickstart.py")
        out = capsys.readouterr().out
        assert "MDNorm" in out
        assert "cross-section grid" in out

    def test_portable_kernels(self, capsys):
        _run("portable_kernels.py")
        out = capsys.readouterr().out
        assert "identical to serial" in out
        assert "vectorized" in out

    def test_live_streaming(self, capsys):
        _run("live_streaming.py")
        out = capsys.readouterr().out
        assert "streamed reduction == offline batch reduction" in out

    def test_examples_have_docstrings_and_mains(self):
        """Every example is a runnable, documented script."""
        for path in sorted(EXAMPLES.glob("*.py")):
            src = path.read_text()
            assert src.lstrip().startswith('"""'), f"{path.name} lacks a docstring"
            assert '__main__' in src, f"{path.name} lacks a main guard"
            assert "Run:" in src, f"{path.name} lacks run instructions"
