"""Unit tests for validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    ReproError,
    ValidationError,
    as_float_array,
    as_matrix3,
    require,
)


def test_require_passes_and_fails():
    require(True, "never shown")
    with pytest.raises(ValidationError, match="bad thing"):
        require(False, "bad thing")


def test_validation_error_is_repro_and_value_error():
    assert issubclass(ValidationError, ReproError)
    assert issubclass(ValidationError, ValueError)


class TestAsFloatArray:
    def test_coerces_lists(self):
        arr = as_float_array([1, 2, 3], "x")
        assert arr.dtype == np.float64 and arr.shape == (3,)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            as_float_array([1.0, 2.0], "x", ndim=2)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            as_float_array([1.0, np.nan], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="non-finite"):
            as_float_array([np.inf], "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="not numeric"):
            as_float_array(object(), "x")


class TestAsMatrix3:
    def test_accepts_3x3(self):
        m = as_matrix3(np.eye(3), "m")
        assert m.shape == (3, 3)

    def test_rejects_other_shapes(self):
        with pytest.raises(ValidationError, match="3x3"):
            as_matrix3(np.eye(4), "m")

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            as_matrix3(np.ones(9), "m")
