"""Unit tests for the deterministic fault-injection + retry machinery."""

import json

import pytest

from repro.nexus.h5lite import CorruptFileError, TruncatedFileError
from repro.util import trace as trace_mod
from repro.util.faults import (
    FAULT_KINDS,
    FaultError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedIOError,
    InjectedKernelError,
    RankCrashError,
    RetryExhaustedError,
    RetryPolicy,
    active_plan,
    default_retryable,
    fault_point,
    in_recovery,
    recovery_scope,
    retry_call,
    set_fault_plan,
    use_fault_plan,
)
from repro.util.trace import Tracer, use_tracer
from repro.util.validation import ValidationError


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    """Each test starts and ends with injection disabled."""
    prev = active_plan()
    set_fault_plan(None)
    yield
    set_fault_plan(prev)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError):
            FaultSpec(site="x", kind="gremlins")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValidationError):
            FaultSpec(site="x", kind="io_error", probability=1.5)

    def test_rejects_bad_scope(self):
        with pytest.raises(ValidationError):
            FaultSpec(site="x", kind="io_error", scope="sometimes")

    def test_glob_site_matching(self):
        spec = FaultSpec(site="kernel.*", kind="kernel_error")
        assert spec.matches("kernel.mdnorm", None, None)
        assert spec.matches("kernel.binmd", None, None)
        assert not spec.matches("nexus.read_events", None, None)

    def test_rank_and_run_filters(self):
        spec = FaultSpec(site="run", kind="io_error", ranks=(1,), runs=(3,))
        assert spec.matches("run", 1, 3)
        assert not spec.matches("run", 0, 3)
        assert not spec.matches("run", 1, 2)
        # a filter on rank/run cannot match an anonymous fault point
        assert not spec.matches("run", None, 3)
        assert not spec.matches("run", 1, None)

    def test_json_round_trip(self):
        spec = FaultSpec(site="h5lite.read", kind="corrupt", probability=0.25,
                         max_hits=2, delay_s=0.0, ranks=(0, 2), runs=(1,),
                         scope="recovery")
        again = FaultSpec.from_json(spec.to_json())
        assert again == spec


class TestFaultPlanDeterminism:
    def _drive(self, plan):
        """A fixed injection workload: 3 ranks x 5 runs x 2 sites."""
        with use_fault_plan(plan):
            for rank in range(3):
                for run in range(5):
                    for site in ("nexus.read_events", "kernel.mdnorm"):
                        try:
                            fault_point(site, rank=rank, run=run)
                        except InjectedFault:
                            pass
        return plan.schedule_signature()

    def _specs(self):
        return [
            FaultSpec(site="nexus.read_events", kind="io_error",
                      probability=0.4),
            FaultSpec(site="kernel.*", kind="kernel_error", probability=0.3),
        ]

    @pytest.mark.parametrize("seed", range(50))
    def test_same_seed_same_schedule(self, seed):
        """The core determinism contract, swept over 50 seeds."""
        sig_a = self._drive(FaultPlan(self._specs(), seed=seed))
        sig_b = self._drive(FaultPlan(self._specs(), seed=seed))
        assert sig_a == sig_b

    def test_different_seeds_differ(self):
        sigs = {self._drive(FaultPlan(self._specs(), seed=s))
                for s in range(8)}
        assert len(sigs) > 1

    def test_reset_rewinds_schedule(self):
        plan = FaultPlan(self._specs(), seed=7)
        first = self._drive(plan)
        plan.reset()
        assert plan.stats()["injected"] == 0
        assert self._drive(plan) == first

    def test_rank_streams_independent(self):
        """Injections seen by rank 0 are identical whether or not other
        ranks also draw — the per-(site, rank) stream isolation that
        makes thread interleavings irrelevant."""
        def rank0_events(ranks):
            plan = FaultPlan(self._specs(), seed=13)
            with use_fault_plan(plan):
                for run in range(6):
                    for rank in ranks:
                        try:
                            fault_point("nexus.read_events", rank=rank, run=run)
                        except InjectedFault:
                            pass
            # seq is a per-site global counter, so compare (site, kind, run)
            return [(e["site"], e["kind"], e["run"])
                    for e in plan.events if e["rank"] == 0]

        assert rank0_events([0]) == rank0_events([2, 0, 1])

    def test_max_hits_budget(self):
        plan = FaultPlan(
            [FaultSpec(site="s", kind="io_error", probability=1.0, max_hits=2)],
            seed=1,
        )
        hits = 0
        with use_fault_plan(plan):
            for _ in range(10):
                try:
                    fault_point("s")
                except InjectedIOError:
                    hits += 1
        assert hits == 2
        assert plan.stats() == {"injected": 2, "by_site": {"s": 2},
                                "by_kind": {"io_error": 2}}

    def test_exhausted_spec_still_advances_draws(self):
        """A capped spec keeps consuming draws, so adding max_hits does
        not shift the schedule of later specs at the same site."""
        free = FaultPlan(
            [FaultSpec(site="s", kind="io_error", probability=0.5)], seed=3)
        capped = FaultPlan(
            [FaultSpec(site="s", kind="io_error", probability=0.5, max_hits=1)],
            seed=3,
        )
        def hit_pattern(plan):
            out = []
            with use_fault_plan(plan):
                for _ in range(12):
                    try:
                        fault_point("s")
                        out.append(0)
                    except InjectedIOError:
                        out.append(1)
            return out

        free_hits = hit_pattern(free)
        capped_hits = hit_pattern(capped)
        first = free_hits.index(1)
        assert capped_hits[: first + 1] == free_hits[: first + 1]
        assert sum(capped_hits) == 1


class TestFaultPlanSerialization:
    def test_plan_round_trip(self):
        plan = FaultPlan(
            [FaultSpec(site="a", kind="slow", delay_s=0.01),
             FaultSpec(site="b", kind="corrupt", scope="recovery")],
            seed=99, label="chaos",
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again.seed == 99
        assert again.label == "chaos"
        assert again.specs == plan.specs

    def test_from_file_and_label_default(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"schema": 1, "seed": 4,
             "specs": [{"site": "x", "kind": "io_error"}]}))
        plan = FaultPlan.from_file(str(path))
        assert plan.seed == 4
        assert plan.label == "plan.json"

    def test_bad_schema_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json({"schema": 999, "specs": []})

    def test_non_json_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(FaultError):
            FaultPlan.from_file(str(path))


class TestActivePlanManagement:
    def test_no_plan_is_noop(self):
        fault_point("anything", run=1)  # must not raise

    def test_use_fault_plan_restores(self):
        outer = FaultPlan([], seed=1)
        inner = FaultPlan([], seed=2)
        set_fault_plan(outer)
        with use_fault_plan(inner):
            assert active_plan() is inner
        assert active_plan() is outer

    def test_ambient_env_plan(self, tmp_path, monkeypatch):
        path = tmp_path / "ambient.json"
        path.write_text(json.dumps(
            {"schema": 1, "seed": 0,
             "specs": [{"site": "env.site", "kind": "io_error"}]}))
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        set_fault_plan(None)
        import repro.util.faults as faults_mod
        faults_mod._active_plan = faults_mod._UNSET  # force lazy re-resolve
        plan = active_plan()
        assert plan is not None and plan.specs[0].site == "env.site"
        with pytest.raises(InjectedIOError):
            fault_point("env.site")
        set_fault_plan(None)


class TestFaultPointKinds:
    def _one_shot(self, kind, **spec_kw):
        return FaultPlan(
            [FaultSpec(site="s", kind=kind, probability=1.0, max_hits=1,
                       **spec_kw)],
            seed=0,
        )

    def test_io_error_is_oserror(self):
        with use_fault_plan(self._one_shot("io_error")):
            with pytest.raises(InjectedIOError) as exc:
                fault_point("s")
        assert isinstance(exc.value, OSError)

    def test_kernel_error(self):
        with use_fault_plan(self._one_shot("kernel_error")):
            with pytest.raises(InjectedKernelError):
                fault_point("s")

    def test_rank_crash(self):
        with use_fault_plan(self._one_shot("rank_crash")):
            with pytest.raises(RankCrashError):
                fault_point("s")

    def test_corrupt_uses_real_taxonomy(self):
        with use_fault_plan(self._one_shot("corrupt")):
            with pytest.raises(CorruptFileError):
                fault_point("s")

    def test_truncate_uses_real_taxonomy(self):
        with use_fault_plan(self._one_shot("truncate")):
            with pytest.raises(TruncatedFileError):
                fault_point("s")

    def test_slow_raises_nothing(self):
        with use_fault_plan(self._one_shot("slow", delay_s=0.0)):
            fault_point("s")

    def test_all_kinds_covered(self):
        assert set(FAULT_KINDS) == {
            "io_error", "corrupt", "truncate", "slow", "kernel_error",
            "rank_crash",
        }

    def test_injection_counts_traced(self):
        tracer = Tracer()
        with use_tracer(tracer), use_fault_plan(self._one_shot("io_error")):
            with pytest.raises(InjectedIOError):
                fault_point("s")
        assert tracer.counters["fault.injected"] == 1
        assert tracer.counters["fault.injected.s.io_error"] == 1

    def test_recovery_scope_gating(self):
        """scope='recovery' specs only fire under retry protection."""
        plan = FaultPlan(
            [FaultSpec(site="s", kind="io_error", probability=1.0,
                       scope="recovery")],
            seed=0,
        )
        with use_fault_plan(plan):
            fault_point("s")  # unprotected: no injection
            assert not in_recovery()
            with recovery_scope():
                assert in_recovery()
                with pytest.raises(InjectedIOError):
                    fault_point("s")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.0)

    def test_delay_shape(self):
        p = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3,
                        jitter=0.0)
        assert p.delay(1, 0.0) == pytest.approx(0.1)
        assert p.delay(2, 0.0) == pytest.approx(0.2)
        assert p.delay(3, 0.0) == pytest.approx(0.3)  # capped
        assert p.delay(9, 0.0) == pytest.approx(0.3)

    def test_jitter_scales_delay(self):
        p = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        assert p.delay(1, 1.0) == pytest.approx(0.15)


class TestRetryCall:
    def test_success_first_try(self):
        calls = []
        out = retry_call(lambda a: calls.append(a) or "ok", site="s")
        assert out == "ok" and calls == [1]

    def test_retries_then_succeeds(self):
        def fn(attempt):
            if attempt < 3:
                raise OSError("flaky")
            return attempt

        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        assert retry_call(fn, site="s", policy=policy) == 3

    def test_exhaustion_chains_last_error(self):
        boom = OSError("persistent")

        def fn(attempt):
            raise boom

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with pytest.raises(RetryExhaustedError) as exc:
            retry_call(fn, site="unit", policy=policy)
        assert exc.value.attempts == 3
        assert exc.value.last is boom
        assert exc.value.__cause__ is boom

    def test_non_retryable_propagates(self):
        def fn(attempt):
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(fn, site="s")

    def test_rank_crash_never_retried(self):
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise RankCrashError("s", "rank_crash", 1)

        with pytest.raises(RankCrashError):
            retry_call(fn, site="s",
                       policy=RetryPolicy(max_attempts=5, base_delay_s=0.0))
        assert calls == [1]

    def test_on_retry_called_between_attempts(self):
        seen = []

        def fn(attempt):
            if attempt == 1:
                raise OSError("once")
            return "ok"

        retry_call(fn, site="s",
                   policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
                   on_retry=lambda exc, a: seen.append((type(exc).__name__, a)))
        assert seen == [("OSError", 1)]

    def test_backoff_schedule_deterministic(self):
        def fn(attempt):
            raise OSError("always")

        policy = RetryPolicy(max_attempts=4, base_delay_s=0.125,
                             multiplier=2.0, max_delay_s=10.0, jitter=0.5)

        def sleeps():
            out = []
            with pytest.raises(RetryExhaustedError):
                retry_call(fn, site="det", policy=policy, sleep=out.append)
            return out

        a, b = sleeps(), sleeps()
        assert a == b                 # jitter stream is seeded by site
        assert len(a) == 3            # no sleep after the final attempt
        assert a[0] < a[1] < a[2]     # exponential growth dominates jitter

    def test_deadline_cuts_budget(self):
        def fn(attempt):
            raise OSError("slow system")

        policy = RetryPolicy(max_attempts=50, base_delay_s=0.0,
                             deadline_s=0.0)
        with pytest.raises(RetryExhaustedError) as exc:
            retry_call(fn, site="s", policy=policy)
        assert exc.value.attempts == 1

    def test_attempts_run_inside_recovery_scope(self):
        flags = []
        retry_call(lambda a: flags.append(in_recovery()), site="s")
        assert flags == [True]
        assert not in_recovery()

    def test_retry_counters_and_spans(self):
        tracer = Tracer()

        def fn(attempt):
            if attempt < 2:
                raise OSError("x")
            return "ok"

        with use_tracer(tracer):
            retry_call(fn, site="unit",
                       policy=RetryPolicy(max_attempts=3, base_delay_s=0.0))
        assert tracer.counters["retry.attempt"] == 1
        assert tracer.counters["retry.attempt.unit"] == 1
        names = [r["name"] for r in tracer.records]
        assert names.count("recover.attempt") == 2

    def test_default_retryable_members(self):
        kinds = default_retryable()
        assert OSError in kinds
        assert InjectedKernelError in kinds
        assert not issubclass(RankCrashError, tuple(kinds))


class TestThreadFaultPlan:
    """Per-thread fault scopes (the service's per-job isolation)."""

    def test_thread_override_shadows_global(self):
        from repro.util.faults import thread_fault_plan

        mine = FaultPlan(
            [FaultSpec(site="s", kind="io_error", probability=1.0)], seed=0
        )
        with thread_fault_plan(mine):
            assert active_plan() is mine
            with pytest.raises(InjectedIOError):
                fault_point("s")
        assert active_plan() is None

    def test_thread_none_disables_ambient_plan(self):
        from repro.util.faults import thread_fault_plan

        ambient = FaultPlan(
            [FaultSpec(site="s", kind="io_error", probability=1.0)], seed=0
        )
        with use_fault_plan(ambient):
            with thread_fault_plan(None):
                fault_point("s")  # shielded: no injection
            with pytest.raises(InjectedIOError):
                fault_point("s")  # ambient plan is back

    def test_other_threads_unaffected(self):
        import threading

        from repro.util.faults import thread_fault_plan

        mine = FaultPlan(
            [FaultSpec(site="s", kind="io_error", probability=1.0)], seed=0
        )
        outcomes = []

        def neighbour():
            try:
                fault_point("s")
                outcomes.append("clean")
            except InjectedIOError:
                outcomes.append("injected")

        with thread_fault_plan(mine):
            t = threading.Thread(target=neighbour)
            t.start()
            t.join()
        assert outcomes == ["clean"]


class _FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def sleep(self, dt: float) -> None:
        self.t += float(dt)


class TestDeadlinePropagation:
    """Regression tests for absolute deadlines through retry_call."""

    def test_absolute_deadline_stops_retries(self):
        clock = _FakeClock()

        def fn(attempt):
            clock.sleep(3.0)  # each attempt costs 3 "seconds"
            raise OSError("slow")

        policy = RetryPolicy(max_attempts=50, base_delay_s=0.0)
        with pytest.raises(RetryExhaustedError) as exc:
            retry_call(fn, site="s", policy=policy, deadline=5.0,
                       clock=clock, sleep=clock.sleep)
        # attempts 1 (t=3) and 2 (t=6 >= 5) fit; no third attempt
        assert exc.value.attempts == 2

    def test_backoff_sleep_clamped_to_remaining(self):
        clock = _FakeClock()
        slept = []

        def fn(attempt):
            clock.sleep(1.0)
            raise OSError("flaky")

        def sleep(dt):
            slept.append(dt)
            clock.sleep(dt)

        policy = RetryPolicy(max_attempts=10, base_delay_s=100.0,
                             jitter=0.0)
        with pytest.raises(RetryExhaustedError):
            retry_call(fn, site="s", policy=policy, deadline=2.0,
                       clock=clock, sleep=sleep)
        # the 100 s backoff must be cut to the 1 s remaining, never past
        # the deadline
        assert slept and max(slept) <= 2.0

    def test_nested_retry_honors_enclosing_deadline(self):
        """An inner retry_call with a generous policy cannot back off
        past the outer call's absolute deadline."""
        clock = _FakeClock()
        inner_attempts = []

        def inner(attempt):
            inner_attempts.append(attempt)
            clock.sleep(2.0)
            raise OSError("inner flaky")

        def outer(attempt):
            # inner policy alone would allow 50 attempts
            retry_call(inner, site="inner",
                       policy=RetryPolicy(max_attempts=50, base_delay_s=0.0),
                       clock=clock, sleep=clock.sleep)

        with pytest.raises(RetryExhaustedError) as exc:
            retry_call(outer, site="outer",
                       policy=RetryPolicy(max_attempts=1, base_delay_s=0.0),
                       deadline=5.0, clock=clock, sleep=clock.sleep)
        # the outer 5 s budget bounds the inner loop: attempts at t=2,
        # t=4, then t=6 >= 5 stops it — nowhere near 50.  The inner
        # exhaustion propagates (RetryExhaustedError is not retryable).
        assert len(inner_attempts) == 3
        assert exc.value.attempts == 3
        assert exc.value.site == "inner"

    def test_policy_relative_and_absolute_deadline_tighten(self):
        clock = _FakeClock(100.0)

        def fn(attempt):
            clock.sleep(1.0)
            raise OSError("x")

        # relative budget (0.5 s) is tighter than the absolute deadline
        policy = RetryPolicy(max_attempts=50, base_delay_s=0.0,
                             deadline_s=0.5)
        with pytest.raises(RetryExhaustedError) as exc:
            retry_call(fn, site="s", policy=policy, deadline=1000.0,
                       clock=clock, sleep=clock.sleep)
        assert exc.value.attempts == 1

    def test_no_deadline_keeps_historical_behaviour(self):
        def fn(attempt):
            if attempt < 3:
                raise OSError("flaky")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        assert retry_call(fn, site="s", policy=policy) == "ok"
