"""Unit tests for wall-clock timers and stage accounting."""

import time

import pytest

from repro.util.timers import CANONICAL_STAGES, StageTimings, Timer, timed


class TestTimer:
    def test_accumulates_across_cycles(self):
        t = Timer()
        for _ in range(3):
            t.start()
            t.stop()
        assert t.ncalls == 3
        assert t.elapsed >= 0.0

    def test_elapsed_measures_wall_clock(self):
        t = Timer()
        with t.timing():
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError, match="already running"):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="not running"):
            Timer().stop()

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running

    def test_reset(self):
        t = Timer()
        with t.timing():
            pass
        t.reset()
        assert t.elapsed == 0.0 and t.ncalls == 0 and not t.running

    def test_stop_returns_last_interval(self):
        t = Timer()
        t.start()
        dt = t.stop()
        assert dt == pytest.approx(t.elapsed)

    def test_timing_context_stops_on_exception(self):
        t = Timer()
        with pytest.raises(ValueError):
            with t.timing():
                raise ValueError("boom")
        assert not t.running
        assert t.ncalls == 1


class TestStageTimings:
    def test_lazy_stage_creation(self):
        st = StageTimings()
        with st.stage("MDNorm"):
            pass
        assert "MDNorm" in st.stages
        assert st.seconds("MDNorm") >= 0.0

    def test_unknown_stage_is_zero(self):
        assert StageTimings().seconds("BinMD") == 0.0

    def test_derived_mdnorm_plus_binmd(self):
        st = StageTimings()
        with st.stage("MDNorm"):
            time.sleep(0.005)
        with st.stage("BinMD"):
            time.sleep(0.005)
        combined = st.seconds("MDNorm + BinMD")
        assert combined == pytest.approx(st.seconds("MDNorm") + st.seconds("BinMD"))

    def test_first_call_recorded_once(self):
        st = StageTimings()
        for _ in range(3):
            with st.stage("BinMD"):
                pass
        assert st.first_call["BinMD"] <= st.seconds("BinMD")
        assert st.timer("BinMD").ncalls == 3

    def test_warm_excludes_first_call(self):
        st = StageTimings()
        with st.stage("MDNorm"):
            time.sleep(0.02)
        with st.stage("MDNorm"):
            pass
        warm = st.warm_seconds("MDNorm")
        assert warm < st.seconds("MDNorm")
        assert warm == pytest.approx(st.seconds("MDNorm") - st.first_call["MDNorm"])

    def test_mean_warm_needs_two_calls(self):
        st = StageTimings()
        with st.stage("MDNorm"):
            pass
        assert st.mean_warm_seconds("MDNorm") == 0.0

    def test_mean_warm_averages_non_first(self):
        st = StageTimings()
        for _ in range(4):
            with st.stage("X"):
                pass
        t = st.timer("X")
        expected = (t.elapsed - st.first_call["X"]) / 3
        assert st.mean_warm_seconds("X") == pytest.approx(expected)

    def test_merge_sums_stages(self):
        a = StageTimings()
        b = StageTimings()
        with a.stage("BinMD"):
            pass
        with b.stage("BinMD"):
            pass
        with b.stage("MDNorm"):
            pass
        total_binmd = a.seconds("BinMD") + b.seconds("BinMD")
        a.merge(b)
        assert a.seconds("BinMD") == pytest.approx(total_binmd)
        assert "MDNorm" in a.stages

    def test_summary_mentions_stages(self):
        st = StageTimings(label="demo")
        with st.stage("UpdateEvents"):
            pass
        text = st.summary()
        assert "demo" in text and "UpdateEvents" in text

    def test_as_row_order(self):
        st = StageTimings()
        with st.stage("UpdateEvents"):
            pass
        row = st.as_row(["UpdateEvents", "MDNorm + BinMD"])
        assert list(row) == ["UpdateEvents", "MDNorm + BinMD"]

    def test_canonical_stage_names(self):
        assert CANONICAL_STAGES[0] == "UpdateEvents"
        assert "MDNorm + BinMD" in CANONICAL_STAGES


def test_timed_calls_back_with_elapsed():
    holder = []
    with timed(holder.append):
        time.sleep(0.005)
    assert holder and holder[0] >= 0.004
