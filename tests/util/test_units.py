"""Unit tests for the shared byte-size parser/formatter."""

import pytest

from repro.util.units import SizeParseError, format_size, parse_size


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("65536", 65536),
        ("64K", 64 * 1024),
        ("64k", 64 * 1024),
        ("64KB", 64 * 1024),
        ("2M", 2 * 1024 * 1024),
        ("2MB", 2 * 1024 * 1024),
        ("1G", 1 << 30),
        ("1.5K", int(1.5 * 1024)),
        (" 128K ", 128 * 1024),
        ("1", 1),
    ])
    def test_accepts(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", [
        "", "K", "abc", "1X", "12QB", "-4K", "0", "0.0001",
    ])
    def test_rejects(self, text):
        with pytest.raises(SizeParseError):
            parse_size(text)

    def test_error_is_valueerror_too(self):
        # callers that guard with ValueError (argparse adapters) work
        with pytest.raises(ValueError):
            parse_size("nope")


class TestFormatSize:
    @pytest.mark.parametrize("n,expected", [
        (0, "0"),
        (512, "512"),
        (1024, "1K"),
        (64 * 1024, "64K"),
        (2 * 1024 * 1024, "2M"),
        (1 << 30, "1G"),
        (int(1.5 * 1024), "1.5K"),
    ])
    def test_formats(self, n, expected):
        assert format_size(n) == expected

    def test_round_trip_exact_multiples(self):
        for n in (1024, 65536, 1 << 20, 3 << 30):
            assert parse_size(format_size(n)) == n
