"""Unit contract of the seedable steal-schedule controller.

The integration fuzzing lives in ``tests/integration/test_stealing.py``;
this file pins the controller itself: policy validation, the seeded
per-rank decision streams, lifecycle trigger consumption, the record's
JSON round-trip, replay degradation, and the schedule signature.
"""

import json

import pytest

from repro.util.schedule import POLICIES, ScheduleController, ScheduleError


class TestConstruction:
    def test_known_policies(self):
        for policy in POLICIES:
            assert ScheduleController(seed=1, policy=policy).policy == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ScheduleError, match="unknown policy"):
            ScheduleController(policy="chaotic-good")

    @pytest.mark.parametrize("p", (-0.1, 1.5))
    def test_p_steal_range_enforced(self, p):
        with pytest.raises(ScheduleError, match="p_steal"):
            ScheduleController(policy="random", p_steal=p)


class TestAcquire:
    def test_no_steal_never_steals(self):
        ctl = ScheduleController(seed=3, policy="no-steal")
        for k in range(20):
            assert ctl.acquire(0, 0, {1: 100.0, 2: 50.0}) is None

    def test_weighted_steals_only_when_idle(self):
        ctl = ScheduleController(seed=3, policy="weighted")
        assert ctl.acquire(0, own_depth=4, victims={1: 100.0}) is None
        assert ctl.acquire(0, own_depth=0, victims={1: 100.0}) == 1

    def test_weighted_picks_heaviest_victim(self):
        ctl = ScheduleController(seed=3, policy="weighted")
        assert ctl.acquire(0, 0, {1: 10.0, 2: 90.0, 3: 50.0}) == 2

    def test_herd_always_targets_heaviest(self):
        ctl = ScheduleController(seed=3, policy="herd")
        for rank in range(4):
            assert ctl.acquire(rank, own_depth=5, victims={1: 1.0, 2: 9.0}) == 2

    def test_all_steal_always_steals_when_possible(self):
        ctl = ScheduleController(seed=3, policy="all-steal")
        for k in range(20):
            victim = ctl.acquire(0, own_depth=3, victims={1: 1.0, 2: 2.0})
            assert victim in (1, 2)

    def test_no_victims_means_own_queue(self):
        for policy in POLICIES:
            ctl = ScheduleController(seed=3, policy=policy)
            assert ctl.acquire(0, own_depth=2, victims={}) is None

    def test_random_stream_is_per_rank_deterministic(self):
        """The same (seed, rank, k) prefix yields the same decisions,
        independent of what other ranks drew in between."""
        victims = {1: 1.0, 2: 2.0, 3: 3.0}

        def draw(ctl, rank, n):
            return [ctl.acquire(rank, 1, victims) for _ in range(n)]

        a = ScheduleController(seed=11, policy="random")
        b = ScheduleController(seed=11, policy="random")
        seq_a = draw(a, 0, 10)
        draw(b, 7, 5)  # interleave another rank's stream
        assert draw(b, 0, 10) == seq_a

    def test_different_seeds_differ(self):
        victims = {r: float(r) for r in range(1, 6)}
        a = [ScheduleController(seed=1, policy="random").acquire(0, 1, victims)
             for _ in range(1)]
        draws = {
            seed: tuple(
                ScheduleController(seed=seed, policy="random").acquire(
                    0, 1, dict(victims))
                for _ in range(8)
            )
            for seed in range(6)
        }
        assert len(set(draws.values())) > 1
        del a

    def test_steal_count_counts_non_none_decisions(self):
        ctl = ScheduleController(seed=3, policy="herd")
        ctl.acquire(0, 0, {1: 1.0})
        ctl.acquire(0, 0, {})
        ctl.acquire(1, 0, {0: 2.0})
        assert ctl.steal_count == 2


class TestLifecycle:
    def test_triggers_fire_once(self):
        ctl = ScheduleController(
            seed=0, births=(2,), leaves=((3, 1),), deaths=((4, 2),))
        assert ctl.lifecycle(0, 0) == []
        assert ctl.lifecycle(0, 2) == ["birth"]
        assert ctl.lifecycle(0, 5) == []           # birth consumed
        assert ctl.lifecycle(1, 5) == ["leave"]    # only the target rank
        assert ctl.lifecycle(1, 9) == []
        assert ctl.lifecycle(2, 9) == ["death"]
        assert ctl.lifecycle(2, 9) == []

    def test_birth_goes_to_first_observer(self):
        ctl = ScheduleController(seed=0, births=(1,))
        assert ctl.lifecycle(3, 4) == ["birth"]
        assert ctl.lifecycle(0, 4) == []

    def test_leave_death_ignore_other_ranks(self):
        ctl = ScheduleController(seed=0, leaves=((0, 2),), deaths=((0, 3),))
        assert ctl.lifecycle(0, 10) == []
        assert ctl.lifecycle(1, 10) == []
        assert ctl.lifecycle(2, 10) == ["leave"]
        assert ctl.lifecycle(3, 10) == ["death"]

    def test_multiple_actions_same_poll(self):
        ctl = ScheduleController(seed=0, births=(1,), deaths=((1, 0),))
        assert ctl.lifecycle(0, 3) == ["birth", "death"]


class TestRecordReplay:
    def _drive(self, ctl):
        ctl.acquire(0, 0, {1: 5.0})
        ctl.acquire(1, 2, {0: 1.0})
        ctl.acquire(0, 1, {})
        ctl.lifecycle(0, 1)

    def test_json_round_trip_preserves_config(self):
        ctl = ScheduleController(seed=9, policy="random", p_steal=0.75,
                                 births=(1,))
        self._drive(ctl)
        doc = json.loads(json.dumps(ctl.to_json()))
        assert doc["version"] == 1
        assert doc["seed"] == 9
        assert doc["policy"] == "random"
        assert doc["p_steal"] == 0.75
        replay = ScheduleController.from_json(doc)
        assert replay.seed == 9
        assert replay.policy == "random"

    def test_replay_reissues_recorded_decisions(self):
        ctl = ScheduleController(seed=9, policy="herd")
        ctl.acquire(0, 0, {1: 5.0, 2: 9.0})   # -> 2
        ctl.acquire(0, 0, {1: 5.0})           # -> 1
        replay = ScheduleController.from_json(ctl.to_json())
        assert replay.acquire(0, 0, {1: 1.0, 2: 1.0}) == 2
        assert replay.acquire(0, 0, {1: 1.0, 2: 1.0}) == 1

    def test_replay_degrades_when_victim_drained(self):
        """A recorded victim with nothing left in this interleaving
        degrades to the own queue instead of wedging the rank."""
        ctl = ScheduleController(seed=9, policy="herd")
        ctl.acquire(0, 0, {2: 9.0})           # -> 2
        replay = ScheduleController.from_json(ctl.to_json())
        assert replay.acquire(0, 0, {1: 1.0}) is None   # 2 already drained
        # past the end of the record: own queue as well
        assert replay.acquire(0, 0, {1: 1.0}) is None

    def test_replay_reconstructs_lifecycle_triggers(self):
        ctl = ScheduleController(seed=9, births=(2,), deaths=((3, 1),))
        ctl.lifecycle(0, 2)
        ctl.lifecycle(1, 3)
        replay = ScheduleController.from_json(ctl.to_json())
        assert replay.lifecycle(0, 2) == ["birth"]
        assert replay.lifecycle(1, 3) == ["death"]

    def test_unsupported_version_rejected(self):
        with pytest.raises(ScheduleError, match="version"):
            ScheduleController.from_json({"version": 99})

    def test_save_and_from_file(self, tmp_path):
        ctl = ScheduleController(seed=9, policy="all-steal")
        ctl.acquire(0, 1, {1: 2.0})
        path = str(tmp_path / "sched.json")
        ctl.save(path)
        replay = ScheduleController.from_file(path)
        assert replay.policy == "all-steal"
        assert replay.acquire(0, 5, {1: 9.0}) is not None


class TestSignature:
    def test_signature_ignores_wall_clock_interleaving(self):
        """The digest sorts by (rank, k): the order ranks happened to
        hit the controller in does not change it."""
        a = ScheduleController(seed=5, policy="herd")
        a.acquire(0, 0, {1: 2.0})
        a.acquire(1, 0, {0: 2.0})
        b = ScheduleController(seed=5, policy="herd")
        b.acquire(1, 0, {0: 2.0})
        b.acquire(0, 0, {1: 2.0})
        assert a.schedule_signature() == b.schedule_signature()

    def test_signature_sees_decisions(self):
        a = ScheduleController(seed=5, policy="herd")
        a.acquire(0, 0, {1: 2.0})
        b = ScheduleController(seed=5, policy="herd")
        b.acquire(0, 0, {})
        assert a.schedule_signature() != b.schedule_signature()

    def test_signature_is_short_hex(self):
        sig = ScheduleController(seed=5).schedule_signature()
        assert len(sig) == 16
        int(sig, 16)
