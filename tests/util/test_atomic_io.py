"""Crash-safety of the write-then-rename / sentinel primitives."""

import os

import pytest

from repro.util import atomic_io


class TestAtomicWriter:
    def test_publishes_on_success(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_io.atomic_writer(target) as fh:
            fh.write(b"payload")
        assert target.read_bytes() == b"payload"

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with pytest.raises(RuntimeError):
            with atomic_io.atomic_writer(target) as fh:
                fh.write(b"half-written new")
                raise RuntimeError("killed mid-write")
        assert target.read_bytes() == b"old"

    def test_no_temp_droppings(self, tmp_path):
        target = tmp_path / "out.bin"
        with pytest.raises(RuntimeError):
            with atomic_io.atomic_writer(target) as fh:
                fh.write(b"x")
                raise RuntimeError
        with atomic_io.atomic_writer(target) as fh:
            fh.write(b"y")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_io.atomic_write_bytes(target, b"v1")
        atomic_io.atomic_write_bytes(target, b"v2")
        assert target.read_bytes() == b"v2"

    def test_text_helper(self, tmp_path):
        target = tmp_path / "note.txt"
        atomic_io.atomic_write_text(target, "héllo")
        assert target.read_text(encoding="utf-8") == "héllo"


class TestAtomicPath:
    def test_path_writer_published(self, tmp_path):
        target = tmp_path / "file.h5"
        with atomic_io.atomic_path(target) as tmp:
            assert os.path.dirname(tmp) == str(tmp_path)  # same-FS rename
            with open(tmp, "wb") as fh:
                fh.write(b"data")
        assert target.read_bytes() == b"data"

    def test_path_writer_failure_cleans_up(self, tmp_path):
        target = tmp_path / "file.h5"
        with pytest.raises(RuntimeError):
            with atomic_io.atomic_path(target) as tmp:
                with open(tmp, "wb") as fh:
                    fh.write(b"data")
                raise RuntimeError("crash before rename")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []


class TestCompletionSentinel:
    def test_lifecycle(self, tmp_path):
        assert not atomic_io.is_complete(tmp_path)
        marker = atomic_io.mark_complete(tmp_path, "3 files")
        assert atomic_io.is_complete(tmp_path)
        assert marker.read_text() == "3 files\n"
        assert atomic_io.clear_complete(tmp_path)
        assert not atomic_io.is_complete(tmp_path)
        assert not atomic_io.clear_complete(tmp_path)

    def test_sentinel_name(self, tmp_path):
        assert atomic_io.sentinel_path(tmp_path).name == \
            atomic_io.COMPLETE_MARKER
