"""Unit tests for the logging facade."""

import logging

from repro.util.logging import get_logger


def test_namespaced_under_repro():
    logger = get_logger("core.mdnorm")
    assert logger.name == "repro.core.mdnorm"


def test_already_prefixed_names_kept():
    logger = get_logger("repro.jacc")
    assert logger.name == "repro.jacc"


def test_root_handler_installed_once():
    get_logger("a")
    get_logger("b")
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1
    assert root.propagate is False


def test_level_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_LOG", "DEBUG")
    # the root level is set at first-handler install; a fresh root shows it
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    get_logger("fresh")
    assert root.level == logging.DEBUG


def test_messages_flow(caplog):
    logger = get_logger("test.flow")
    root = logging.getLogger("repro")
    root.propagate = True  # let caplog's root handler capture
    try:
        with caplog.at_level(logging.WARNING, logger="repro.test.flow"):
            logger.warning("detector bank offline")
    finally:
        root.propagate = False
    assert "detector bank offline" in caplog.text
