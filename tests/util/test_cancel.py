"""Unit tests for cooperative cancellation tokens and scopes."""

import threading

import pytest

from repro.util.cancel import (
    CancelledError,
    CancelToken,
    DeadlineExpiredError,
    cancel_scope,
    current_cancel,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += float(dt)


class TestCancelToken:
    def test_fresh_token_is_live(self):
        tok = CancelToken()
        assert not tok.cancelled
        assert tok.remaining() is None
        tok.check()  # no raise

    def test_explicit_cancel(self):
        tok = CancelToken()
        tok.cancel("operator request")
        assert tok.cancelled and tok.cancel_requested
        assert tok.reason == "operator request"
        with pytest.raises(CancelledError) as exc:
            tok.check("campaign")
        assert exc.value.reason == "operator request"
        assert "campaign" in str(exc.value)

    def test_cancel_is_idempotent_first_reason_wins(self):
        tok = CancelToken()
        tok.cancel("first")
        tok.cancel("second")
        assert tok.reason == "first"

    def test_deadline_expiry(self):
        clock = FakeClock()
        tok = CancelToken.with_timeout(10.0, clock=clock)
        assert tok.remaining() == pytest.approx(10.0)
        tok.check()
        clock.advance(10.0)
        assert tok.expired and tok.cancelled
        assert tok.reason == "deadline"
        assert tok.remaining() == 0.0
        with pytest.raises(DeadlineExpiredError):
            tok.check()

    def test_deadline_error_is_cancelled_error(self):
        # one except clause catches both shapes of "stop now"
        assert issubclass(DeadlineExpiredError, CancelledError)

    def test_not_an_oserror(self):
        # the retry taxonomy must never treat cancellation as transient
        assert not issubclass(CancelledError, OSError)

    def test_with_timeout_none_is_unbounded(self):
        tok = CancelToken.with_timeout(None)
        assert tok.deadline is None


class TestCancelScope:
    def test_ambient_token_install_and_restore(self):
        assert current_cancel() is None
        tok = CancelToken()
        with cancel_scope(tok):
            assert current_cancel() is tok
            inner = CancelToken()
            with cancel_scope(inner):
                assert current_cancel() is inner
            assert current_cancel() is tok
        assert current_cancel() is None

    def test_scope_is_thread_local(self):
        tok = CancelToken()
        seen = []

        def other():
            seen.append(current_cancel())

        with cancel_scope(tok):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert seen == [None]
