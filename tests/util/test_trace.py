"""Property tests for the structured tracing layer.

The randomized suites (50 seeds each) pin down the tracer's contract:

* spans always nest — a child's interval is contained in its parent's
  and ``parent_id`` links are exactly the dynamic nesting;
* spans never leak across threads — concurrent threads produce disjoint
  parent chains, and closing another thread's span raises;
* the ``StageTimings`` derived from the trace equals the live
  accumulator **exactly** (``==``, not approx) — both sides consume the
  same clock reads;
* the disabled tracer records nothing at all.
"""

import json
import threading

import numpy as np
import pytest

from repro.util import trace as trace_mod
from repro.util.timers import StageTimings
from repro.util.trace import (
    DISABLED,
    SCHEMA_VERSION,
    NullTracer,
    TraceError,
    Tracer,
    kernel_totals,
    load_file,
    stage_timings_from_records,
    stage_totals,
    summary_from_records,
    use_tracer,
    validate_file,
    write_chrome_trace,
)

N_SEEDS = 50


def _random_span_tree(tracer: Tracer, rng: np.random.Generator, max_ops: int = 40):
    """Drive a random open/close sequence (always well-nested)."""
    open_spans = []
    for _ in range(max_ops):
        if open_spans and (rng.random() < 0.5 or len(open_spans) >= 6):
            tracer.end(open_spans.pop())
        else:
            name = f"s{rng.integers(0, 5)}"
            open_spans.append(tracer.begin(name, depth=len(open_spans)))
    while open_spans:
        tracer.end(open_spans.pop())


class TestNesting:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_spans_always_nest(self, seed):
        rng = np.random.default_rng(seed)
        tracer = Tracer(label=f"seed{seed}")
        _random_span_tree(tracer, rng)
        records = tracer.records
        by_id = {r["span_id"]: r for r in records}
        assert len(by_id) == len(records), "span ids must be unique"
        for rec in records:
            assert rec["t1"] >= rec["t0"]
            pid = rec["parent_id"]
            if pid is None:
                continue
            parent = by_id[pid]
            # interval containment: child inside parent
            assert parent["t0"] <= rec["t0"]
            assert rec["t1"] <= parent["t1"]

    def test_parent_ids_reflect_dynamic_nesting(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                with tracer.span("c") as c:
                    pass
            with tracer.span("d") as d:
                pass
        assert a.parent_id is None
        assert b.parent_id == a.span_id
        assert c.parent_id == b.span_id
        assert d.parent_id == a.span_id

    def test_strict_lifo_out_of_order_close_raises(self):
        tracer = Tracer()
        a = tracer.begin("a")
        b = tracer.begin("b")
        with pytest.raises(TraceError, match="out of order"):
            tracer.end(a)
        tracer.end(b)
        tracer.end(a)

    def test_exception_unwinds_spans(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.current_span() is None
        assert [r["name"] for r in tracer.records] == ["inner", "outer"]


class TestThreadIsolation:
    @pytest.mark.parametrize("seed", range(0, N_SEEDS, 5))
    def test_spans_never_leak_across_threads(self, seed):
        tracer = Tracer()
        n_threads = 4
        errors = []

        def work(tid: int):
            try:
                rng = np.random.default_rng(seed * 100 + tid)
                with tracer.span(f"thread-root-{tid}"):
                    _random_span_tree(tracer, rng, max_ops=20)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,), name=f"iso-{t}")
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        records = tracer.records
        by_id = {r["span_id"]: r for r in records}
        for rec in records:
            if rec["parent_id"] is not None:
                parent = by_id[rec["parent_id"]]
                assert parent["thread"] == rec["thread"], \
                    "a span's parent must live on the same thread"

    def test_closing_foreign_span_raises(self):
        tracer = Tracer()
        sp = tracer.begin("main-span")
        caught = []

        def other():
            try:
                tracer.end(sp)
            except TraceError as exc:
                caught.append(exc)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert len(caught) == 1
        assert "cross threads" in str(caught[0]) or "not opened" in str(caught[0])
        tracer.end(sp)  # still closable by its own thread

    def test_rank_scope_attributes_spans(self):
        tracer = Tracer()
        with trace_mod.rank_scope(3):
            with tracer.span("inner"):
                pass
        assert trace_mod.current_rank() is None
        assert tracer.records[0]["rank"] == 3


class TestStageTimingsEquivalence:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_derived_totals_equal_live_accumulator_exactly(self, seed):
        """Bit-for-bit: same clock reads, same float additions."""
        rng = np.random.default_rng(seed)
        tracer = Tracer()
        timings = StageTimings(label=f"seed{seed}")
        stages = ["UpdateEvents", "MDNorm", "BinMD"]
        with use_tracer(tracer):
            for _ in range(int(rng.integers(1, 8))):
                name = stages[int(rng.integers(0, len(stages)))]
                with timings.stage(name):
                    # a tiny random workload so durations vary
                    np.sum(rng.random(int(rng.integers(10, 2000))))
        derived = stage_timings_from_records(tracer.records,
                                             label=f"seed{seed}")
        for name in timings.stages:
            assert derived.seconds(name) == timings.seconds(name)  # exact
            assert derived.stages[name].ncalls == timings.stages[name].ncalls
            assert derived.first_call[name] == timings.first_call[name]
        assert set(derived.stages) == set(timings.stages)

    def test_label_filter_separates_accumulators(self):
        tracer = Tracer()
        ta = StageTimings(label="A")
        tb = StageTimings(label="B")
        with use_tracer(tracer):
            with ta.stage("MDNorm"):
                pass
            with tb.stage("MDNorm"):
                pass
        da = stage_timings_from_records(tracer.records, label="A")
        db = stage_timings_from_records(tracer.records, label="B")
        assert da.seconds("MDNorm") == ta.seconds("MDNorm")
        assert db.seconds("MDNorm") == tb.seconds("MDNorm")
        both = stage_timings_from_records(tracer.records)
        assert both.stages["MDNorm"].ncalls == 2

    def test_stage_totals_view(self):
        tracer = Tracer()
        timings = StageTimings(label="x")
        with use_tracer(tracer):
            with timings.stage("Total"):
                with timings.stage("MDNorm"):
                    pass
        totals = stage_totals(tracer.records)
        assert totals["MDNorm"] == timings.seconds("MDNorm")
        assert totals["Total"] == timings.seconds("Total")


class TestDisabledTracer:
    @pytest.mark.parametrize("seed", range(0, N_SEEDS, 10))
    def test_disabled_tracer_records_nothing(self, seed):
        rng = np.random.default_rng(seed)
        tracer = NullTracer()
        _random_span_tree(tracer, rng)
        tracer.count("events", 100)
        tracer.gauge("bytes", 1.0)
        assert tracer.n_spans == 0
        assert tracer.records == []
        assert tracer.counters == {}
        assert tracer.gauges == {}

    def test_disabled_spans_still_carry_time(self):
        sp = DISABLED.begin("x")
        DISABLED.end(sp)
        assert sp.t1 is not None
        assert sp.duration >= 0.0

    def test_stage_timings_work_under_disabled_tracer(self):
        timings = StageTimings(label="off")
        with timings.stage("MDNorm"):
            np.sum(np.arange(100))
        assert timings.seconds("MDNorm") > 0.0
        assert timings.stages["MDNorm"].ncalls == 1

    def test_process_default_is_disabled(self):
        assert trace_mod.active_tracer() is DISABLED
        assert not trace_mod.active_tracer().enabled


class TestActiveTracer:
    def test_use_tracer_restores_previous(self):
        t1, t2 = Tracer(label="one"), Tracer(label="two")
        assert trace_mod.active_tracer() is DISABLED
        with use_tracer(t1):
            assert trace_mod.active_tracer() is t1
            with use_tracer(t2):
                assert trace_mod.active_tracer() is t2
            assert trace_mod.active_tracer() is t1
        assert trace_mod.active_tracer() is DISABLED

    def test_use_tracer_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError("boom")
        assert trace_mod.active_tracer() is DISABLED

    def test_set_tracer_none_resets(self):
        t = trace_mod.set_tracer(Tracer(label="tmp"))
        assert trace_mod.active_tracer() is t
        trace_mod.set_tracer(None)
        assert trace_mod.active_tracer() is DISABLED


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("events", 10)
        tracer.count("events", 5)
        tracer.count("bytes", 2.5)
        assert tracer.counters == {"events": 15.0, "bytes": 2.5}

    def test_gauges_last_write_wins(self):
        tracer = Tracer()
        tracer.gauge("width", 4)
        tracer.gauge("width", 9)
        assert tracer.gauges == {"width": 9.0}

    def test_counters_thread_safe(self):
        tracer = Tracer()

        def bump():
            for _ in range(1000):
                tracer.count("n", 1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.counters["n"] == 4000


class TestSerialization:
    def _traced(self) -> Tracer:
        tracer = Tracer(label="roundtrip")
        with use_tracer(tracer):
            with tracer.span("workflow", kind="workflow", implementation="core"):
                with tracer.span("kernel:mdnorm", kind="kernel",
                                 backend="serial", dims=[2, 3]):
                    pass
            tracer.count("events", 42)
            tracer.gauge("width", 7.0)
        return tracer

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self._traced()
        path = str(tmp_path / "t.jsonl")
        n = tracer.write_jsonl(path)
        meta, records = load_file(path)
        assert meta["schema"] == SCHEMA_VERSION
        assert meta["label"] == "roundtrip"
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["kernel:mdnorm", "workflow"]
        assert n == 1 + len(records)
        counters = {r["name"]: r["value"] for r in records
                    if r["type"] == "counter"}
        assert counters == {"events": 42.0}

    def test_validate_file_accepts_good_trace(self, tmp_path):
        tracer = self._traced()
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)
        info = validate_file(path)
        assert info["n_spans"] == 2
        assert "workflow" in info["span_names"]
        assert info["counters"] == {"events": 42.0}
        assert info["gauges"] == {"width": 7.0}

    @pytest.mark.parametrize("mutation", [
        lambda rec: rec.pop("dur"),                     # missing key
        lambda rec: rec.update(dur=-1.0),               # negative duration
        lambda rec: rec.update(t1=rec["t0"] - 1.0, dur=-1.0),  # backwards
        lambda rec: rec.update(dur=rec["dur"] + 0.5),   # dur != t1-t0
        lambda rec: rec.update(parent_id=999999),       # dangling parent
        lambda rec: rec.update(name=""),                # empty name
        lambda rec: rec.update(attrs=[1, 2]),           # attrs not a dict
    ])
    def test_validate_file_rejects_corruption(self, tmp_path, mutation):
        tracer = self._traced()
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)
        lines = [json.loads(l) for l in open(path)]
        span_idx = next(i for i, r in enumerate(lines) if r["type"] == "span")
        mutation(lines[span_idx])
        with open(path, "w") as fh:
            for rec in lines:
                fh.write(json.dumps(rec) + "\n")
        with pytest.raises(TraceError):
            validate_file(path)

    def test_validate_file_rejects_bad_schema_and_missing_meta(self, tmp_path):
        p1 = tmp_path / "schema.jsonl"
        p1.write_text(json.dumps({"type": "meta", "schema": 99}) + "\n")
        with pytest.raises(TraceError, match="schema"):
            validate_file(str(p1))
        p2 = tmp_path / "nometa.jsonl"
        p2.write_text(json.dumps({"type": "counter", "name": "x", "value": 1}) + "\n")
        with pytest.raises(TraceError, match="missing meta"):
            validate_file(str(p2))

    def test_numpy_attrs_serialize(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", n=np.int64(3), x=np.float64(1.5),
                         flag=np.bool_(True), arr=np.arange(3)):
            pass
        path = str(tmp_path / "np.jsonl")
        tracer.write_jsonl(path)
        _, records = load_file(path)
        attrs = records[0]["attrs"]
        assert attrs == {"n": 3, "x": 1.5, "flag": True, "arr": [0, 1, 2]}


class TestChromeExport:
    def test_chrome_trace_structure(self, tmp_path):
        tracer = Tracer(label="chrome")
        with tracer.span("outer", kind="op"):
            with tracer.span("inner", kind="kernel"):
                pass
        path = str(tmp_path / "chrome.json")
        n = tracer.write_chrome_trace(path)
        doc = json.load(open(path))
        events = doc["traceEvents"]
        assert n == len(events)
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"outer", "inner"}
        for e in xs:
            assert e["dur"] >= 0.0
            assert isinstance(e["ts"], float)
        metas = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metas)
        assert any(e["name"] == "thread_name" for e in metas)

    def test_chrome_rows_per_rank(self, tmp_path):
        tracer = Tracer()
        for rank in (0, 1):
            with trace_mod.rank_scope(rank):
                with tracer.span("work"):
                    pass
        path = str(tmp_path / "ranks.json")
        write_chrome_trace(path, tracer.records)
        doc = json.load(open(path))
        rows = {e["args"]["name"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"}
        assert rows == {"rank 0", "rank 1"}


class TestSummary:
    def test_kernel_totals_aggregation(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("kernel:mdnorm", kind="kernel", backend="serial"):
                pass
        with tracer.span("kernel:bin_events", kind="kernel", backend="threads"):
            pass
        totals = kernel_totals(tracer.records)
        assert totals["kernel:mdnorm [serial]"]["launches"] == 3
        assert totals["kernel:bin_events [threads]"]["launches"] == 1

    def test_summary_reproduces_wct_rows(self):
        tracer = Tracer(label="wct")
        timings = StageTimings(label="wct")
        with use_tracer(tracer):
            with timings.stage("Total"):
                with timings.stage("UpdateEvents"):
                    pass
                with timings.stage("MDNorm"):
                    pass
                with timings.stage("BinMD"):
                    pass
            tracer.count("events", 9)
        text = tracer.summary()
        for row in ("UpdateEvents", "MDNorm", "BinMD", "MDNorm + BinMD",
                    "Total", "events"):
            assert row in text
        # numbers in the table come from the same records that equal the
        # live accumulator exactly
        derived = stage_timings_from_records(tracer.records, label="wct")
        assert derived.seconds("Total") == timings.seconds("Total")

    def test_summary_from_empty_records(self):
        assert "trace summary" in summary_from_records([])
