"""Unit tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.util.rng import RunStreams, make_rng


class TestMakeRng:
    def test_same_seed_same_sequence(self):
        a = make_rng(42).random(16)
        b = make_rng(42).random(16)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(16), make_rng(2).random(16))

    def test_none_seed_is_allowed(self):
        assert make_rng(None).random() >= 0.0


class TestRunStreams:
    def test_per_run_determinism(self):
        s1 = RunStreams(99)
        s2 = RunStreams(99)
        assert np.array_equal(s1.for_run(5).random(8), s2.for_run(5).random(8))

    def test_runs_are_independent_of_draw_order(self):
        s = RunStreams(7)
        later = s.for_run(3).random(8)
        s2 = RunStreams(7)
        _ = s2.for_run(0).random(100)  # drawing other runs first
        _ = s2.for_run(9).random(3)
        assert np.array_equal(later, s2.for_run(3).random(8))

    def test_distinct_runs_distinct_streams(self):
        s = RunStreams(7)
        assert not np.array_equal(s.for_run(0).random(8), s.for_run(1).random(8))

    def test_distinct_roots_distinct_streams(self):
        assert not np.array_equal(
            RunStreams(1).for_run(0).random(8), RunStreams(2).for_run(0).random(8)
        )

    def test_negative_run_index_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            RunStreams(0).for_run(-1)
