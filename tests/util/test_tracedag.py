"""Unit tests of :mod:`repro.util.tracedag` — merging per-process
trace files into one causal DAG, its invariants, the critical-path
machinery and the model-vs-measured anomaly detector.

Files are synthesized two ways: through the real :class:`Tracer` (the
cross-process propagation API) and by hand (exact timings for the
critical-path arithmetic).
"""

import json

import pytest

from repro.util import trace as trace_mod
from repro.util import tracedag
from repro.util.trace import TraceError, Tracer

CAMPAIGN = "c" * 32


# ---------------------------------------------------------------------------
# synthetic-file helpers
# ---------------------------------------------------------------------------

def _meta(campaign=CAMPAIGN, *, schema=3, pid=1234, epoch=1000.0,
          label="test"):
    m = {
        "type": "meta", "schema": schema, "label": label, "pid": pid,
        "epoch_unix": epoch, "tool": "repro.util.trace",
    }
    if schema >= 3:
        m["campaign_id"] = campaign
    return m


def _span(name, uid, parent_uid, t0, t1, *, rank=None, span_id=0,
          parent_id=None, seq=0, thread="main", **attrs):
    return {
        "type": "span", "name": name, "span_id": span_id,
        "parent_id": parent_id, "rank": rank, "thread": thread,
        "t0": float(t0), "t1": float(t1), "dur": float(t1) - float(t0),
        "seq": seq, "attrs": attrs, "uid": uid, "parent_uid": parent_uid,
    }


def _link(src, dst, *, kind="steal", seq=0, **attrs):
    return {"type": "link", "kind": kind, "src": src, "dst": dst,
            "seq": seq, "attrs": attrs}


def _write(path, meta, records):
    with open(path, "w") as fh:
        fh.write(json.dumps(meta) + "\n")
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
    return str(path)


def _tree_files(tmp_path):
    """A tiny 2-rank campaign: main file with the root + plan spans,
    one file per rank, one steal link back to a plan span."""
    root = _span("campaign", "-:m:0", None, 0.0, 10.0, seq=9,
                 kind="campaign")
    plan = _span("plan:mdnorm", "-:m:1", "-:m:0", 0.1, 0.2,
                 span_id=1, seq=1, kind="plan_task", run=0, shard=0)
    main = _write(tmp_path / "trace-main.jsonl", _meta(),
                  [plan, root])
    r0 = _write(tmp_path / "trace-rank0.jsonl", _meta(), [
        _span("steal:mdnorm", "0:m:2", "-:m:0", 0.3, 4.0, rank=0,
              span_id=2, seq=2, kind="steal_task", run=0, shard=0,
              completed=True, stolen=False),
    ])
    r1 = _write(tmp_path / "trace-rank1.jsonl", _meta(), [
        _span("steal:mdnorm", "1:m:3", "-:m:0", 0.3, 9.0, rank=1,
              span_id=3, seq=3, kind="steal", run=0, shard=1,
              completed=True, stolen=True),
        _link("1:m:3", "-:m:1", seq=4, run=0, shard=1),
    ])
    return [main, r0, r1]


# ---------------------------------------------------------------------------
# merge + invariants
# ---------------------------------------------------------------------------

class TestMergeInvariants:
    def test_merge_validates_single_rooted_tree(self, tmp_path):
        dag = tracedag.merge_files(_tree_files(tmp_path))
        report = dag.validate()
        assert report["ok"]
        assert report["campaign_id"] == CAMPAIGN
        assert not report["legacy"]
        assert report["n_files"] == 3
        assert report["n_spans"] == 4
        assert report["n_links"] == 1
        assert report["n_steal_links"] == 1
        assert report["roots"] == ["campaign"]
        assert report["ranks"] == [0, 1]
        assert dag.root()["name"] == "campaign"

    def test_merge_dir_equals_merge_files(self, tmp_path):
        _tree_files(tmp_path)
        dag = tracedag.merge_dir(str(tmp_path))
        assert dag.validate()["n_spans"] == 4

    def test_campaign_mismatch_rejected(self, tmp_path):
        files = _tree_files(tmp_path)
        other = _write(tmp_path / "other.jsonl", _meta("d" * 32), [
            _span("campaign", "-:x:0", None, 0.0, 1.0, kind="campaign"),
        ])
        with pytest.raises(TraceError, match="campaign"):
            tracedag.merge_files(files + [other])

    def test_duplicate_uid_rejected(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _meta(), [
            _span("campaign", "-:m:0", None, 0.0, 1.0, kind="campaign"),
        ])
        b = _write(tmp_path / "b.jsonl", _meta(pid=99), [
            _span("other", "-:m:0", None, 0.0, 1.0),
        ])
        with pytest.raises(TraceError, match="duplicate span uid"):
            tracedag.merge_files([a, b])

    def test_orphan_parent_rejected(self, tmp_path):
        p = _write(tmp_path / "a.jsonl", _meta(), [
            _span("campaign", "-:m:0", None, 0.0, 1.0, kind="campaign"),
            _span("waif", "-:m:1", "-:gone:7", 0.1, 0.9, span_id=1,
                  seq=1),
        ])
        with pytest.raises(TraceError, match="orphan"):
            tracedag.merge_files([p]).validate()

    def test_dangling_link_rejected(self, tmp_path):
        p = _write(tmp_path / "a.jsonl", _meta(), [
            _span("campaign", "-:m:0", None, 0.0, 1.0, kind="campaign"),
            _link("-:m:0", "-:gone:3", seq=1),
        ])
        with pytest.raises(TraceError, match="references no span"):
            tracedag.merge_files([p]).validate()

    def test_steal_task_completing_twice_rejected(self, tmp_path):
        recs = [_span("campaign", "-:m:0", None, 0.0, 10.0,
                      kind="campaign")]
        for i in (1, 2):
            recs.append(_span(
                "steal:mdnorm", f"0:m:{i}", "-:m:0", 0.1 * i, 1.0 * i,
                rank=0, span_id=i, seq=i, kind="steal_task",
                run=0, shard=0, completed=True))
        p = _write(tmp_path / "a.jsonl", _meta(), recs)
        with pytest.raises(TraceError, match="completed twice"):
            tracedag.merge_files([p]).validate()

    def test_multi_root_rejected_unless_legacy(self, tmp_path):
        p = _write(tmp_path / "a.jsonl", _meta(), [
            _span("a", "-:m:0", None, 0.0, 1.0),
            _span("b", "-:m:1", None, 0.0, 1.0, span_id=1, seq=1),
        ])
        dag = tracedag.merge_files([p])
        with pytest.raises(TraceError, match="single rooted"):
            dag.validate()
        assert dag.validate(require_single_root=False)["ok"]


# ---------------------------------------------------------------------------
# cross-process propagation through the real Tracer API
# ---------------------------------------------------------------------------

class TestTracerRoundTrip:
    def test_jsonl_dir_round_trip(self, tmp_path):
        tracer = Tracer("rt", campaign_id=trace_mod.new_campaign_id("rt"))
        with tracer.span("campaign", kind="campaign") as root:
            with trace_mod.rank_scope(0), \
                    trace_mod.parent_scope(root.uid):
                pass
            root_uid = root.uid
        # a second tracer stands in for another process of the campaign
        worker = Tracer("rt-w", campaign_id=tracer.campaign_id,
                        uid_ns="w1")
        with trace_mod.rank_scope(1), trace_mod.parent_scope(root_uid):
            with worker.span("steal:binmd", kind="steal_task", run=0,
                             shard=0, completed=True):
                pass
        d = tmp_path / "dir"
        tracer.write_jsonl_dir(str(d))
        worker.write_jsonl_dir(str(d), prefix="worker")
        dag = tracedag.merge_dir(str(d))
        report = dag.validate()
        assert report["ok"] and report["roots"] == ["campaign"]
        assert report["ranks"] == [1]
        (steal_uid,) = [u for u, n in dag.spans.items()
                        if n["name"] == "steal:binmd"]
        assert dag.spans[steal_uid]["parent_uid"] == root_uid


# ---------------------------------------------------------------------------
# legacy (v1/v2) files
# ---------------------------------------------------------------------------

class TestLegacyMerge:
    def _legacy_span(self, name, span_id, parent_id, t0, t1, *,
                     rank=None, seq=0, **attrs):
        return {
            "type": "span", "name": name, "span_id": span_id,
            "parent_id": parent_id, "rank": rank, "thread": "main",
            "t0": float(t0), "t1": float(t1),
            "dur": float(t1) - float(t0), "seq": seq, "attrs": attrs,
        }

    def test_v2_files_merge_with_namespaced_uids(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _meta(schema=2), [
            self._legacy_span("outer", 0, None, 0.0, 2.0),
            self._legacy_span("inner", 1, 0, 0.5, 1.5, seq=1),
            {"type": "metrics", "counters": {"c": 2.0}, "gauges": {}},
        ])
        b = _write(tmp_path / "b.jsonl", _meta(schema=2, pid=77), [
            self._legacy_span("outer", 0, None, 0.0, 1.0),
        ])
        dag = tracedag.merge_files([a, b])
        assert dag.legacy
        report = dag.validate()   # multi-root legal for legacy merges
        assert report["n_spans"] == 3
        assert dag.counters["c"] == 2.0
        # same (pid, span_id) in different files must not collide
        assert len(dag.spans) == 3
        inner = [n for n in dag.spans.values() if n["name"] == "inner"]
        assert inner[0]["parent_uid"] in dag.spans

    def test_v1_file_still_merges(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _meta(schema=1), [
            self._legacy_span("solo", 0, None, 0.0, 1.0),
            {"type": "counter", "name": "k", "value": 3.0},
        ])
        dag = tracedag.merge_files([a])
        assert dag.validate()["ok"]
        assert dag.counters["k"] == 3.0


# ---------------------------------------------------------------------------
# critical path + attribution
# ---------------------------------------------------------------------------

def _crit_files(tmp_path):
    """root [0,10]; a [0,4] -> a1 [1,3.5]; b [4,9] (last finisher)."""
    recs = [
        _span("campaign", "-:m:0", None, 0.0, 10.0, kind="campaign"),
        _span("a", "-:m:1", "-:m:0", 0.0, 4.0, span_id=1, seq=1,
              kind="stage"),
        _span("a1", "-:m:2", "-:m:1", 1.0, 3.5, span_id=2, seq=2,
              kind="op", backend="serial"),
        _span("b", "-:m:3", "-:m:0", 4.0, 9.0, span_id=3, seq=3,
              kind="stage"),
    ]
    return [_write(tmp_path / "crit.jsonl", _meta(), recs)]


class TestCriticalPath:
    def test_chain_descends_by_last_finisher(self, tmp_path):
        dag = tracedag.merge_files(_crit_files(tmp_path))
        chain = dag.critical_chain()
        assert [n["name"] for n in chain] == ["campaign", "b"]
        assert dag.critical_seconds() == pytest.approx(10.0)

    def test_attribution_charges_every_instant_once(self, tmp_path):
        dag = tracedag.merge_files(_crit_files(tmp_path))
        crit = dag.crit_attribution()
        total = sum(crit.values())
        assert total == pytest.approx(dag.critical_seconds(), abs=1e-9)
        by_name = {dag.spans[u]["name"]: s for u, s in crit.items()}
        # b blocks [4,9]; a1 blocks [1,3.5]; a owns its own uncovered
        # windows [0,1] + [3.5,4]; the root owns only the tail [9,10]
        assert by_name["b"] == pytest.approx(5.0)
        assert by_name["a1"] == pytest.approx(2.5)
        assert by_name["a"] == pytest.approx(1.5)
        assert by_name["campaign"] == pytest.approx(1.0)

    def test_rollup_crit_never_exceeds_total(self, tmp_path):
        dag = tracedag.merge_files(_crit_files(tmp_path))
        for row in dag.crit_rollup():
            assert row["crit_s"] <= row["total_s"] + 1e-9

    def test_crit_report_renders(self, tmp_path):
        dag = tracedag.merge_files(_tree_files(tmp_path))
        text = dag.crit_report()
        assert "critical path" in text
        assert "blocking chain" in text
        assert "per-rank attribution" not in text or "rank" in text


# ---------------------------------------------------------------------------
# anomaly flags
# ---------------------------------------------------------------------------

def _sibling_files(tmp_path, durs, *, weights=None, name="kernel:mdnorm",
                   kind="op"):
    recs = [_span("campaign", "-:m:0", None, 0.0, 1000.0,
                  kind="campaign")]
    t = 0.0
    for i, dur in enumerate(durs):
        attrs = {"kind": kind, "backend": "serial"}
        if weights is not None:
            attrs["weight"] = weights[i]
        recs.append(_span(name, f"-:m:{i + 1}", "-:m:0", t, t + dur,
                          span_id=i + 1, seq=i + 1, **attrs))
        t += dur
    return [_write(tmp_path / "sib.jsonl", _meta(), recs)]


class TestAnomalies:
    def test_slow_sibling_flagged(self, tmp_path):
        dag = tracedag.merge_files(
            _sibling_files(tmp_path, [1.0] * 8 + [9.0]))
        flags = dag.anomalies()
        assert len(flags) == 1
        assert flags[0]["dur"] == pytest.approx(9.0)
        assert flags[0]["deviation"] > 1.5

    def test_uniform_siblings_clean(self, tmp_path):
        dag = tracedag.merge_files(
            _sibling_files(tmp_path, [1.0, 1.01, 0.99, 1.0, 1.02]))
        assert dag.anomalies() == []

    def test_small_groups_not_judged(self, tmp_path):
        dag = tracedag.merge_files(_sibling_files(tmp_path, [1.0, 50.0]))
        assert dag.anomalies() == []

    def test_weight_normalizes_expected_cost(self, tmp_path):
        # 10x duration at 10x weight is NOT anomalous once normalized
        dag = tracedag.merge_files(_sibling_files(
            tmp_path, [1.0, 1.0, 1.0, 1.0, 10.0],
            weights=[1.0, 1.0, 1.0, 1.0, 10.0],
            name="steal:mdnorm", kind="steal_task"))
        assert dag.anomalies() == []


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------

class TestArtifacts:
    def test_write_dag_document(self, tmp_path):
        dag = tracedag.merge_files(_tree_files(tmp_path))
        out = tmp_path / "dag.json"
        tracedag.write_dag(str(out), dag)
        doc = json.loads(out.read_text())
        assert doc["campaign_id"] == CAMPAIGN
        assert doc["n_spans"] == 4
        assert len(doc["spans"]) == 4
        assert doc["ranks"] == [0, 1]

    def test_chrome_merged_namespaces_pids(self, tmp_path):
        files = _tree_files(tmp_path)
        traces = [trace_mod.load_file(p) for p in files]
        out = tmp_path / "chrome.json"
        trace_mod.write_chrome_trace_merged(str(out), traces)
        doc = json.loads(out.read_text())
        rows = [e for e in doc["traceEvents"]
                if e.get("name") == "process_name"]
        # same OS pid, three rank streams -> three distinct chrome pids
        assert len({r["pid"] for r in rows}) == 3

    def test_chrome_merged_rejects_empty(self, tmp_path):
        with pytest.raises(TraceError):
            trace_mod.write_chrome_trace_merged(
                str(tmp_path / "x.json"), [])
