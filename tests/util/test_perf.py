"""The kernel-level performance model (PR 4 tentpole 1).

Locks down the cost model's arithmetic, the determinism of the
:class:`~repro.util.perf.PerfModel` rollup, the roofline CSV schema,
and the "derived purely from the trace" invariant: rolling up a
written JSON-lines file reproduces the live rollup bit for bit.
"""

import csv
import io
import random

import pytest

from repro.util import perf
from repro.util import trace as trace_mod
from repro.util.perf import (
    BYTES_PER_EVENT_READ,
    BYTES_PER_EVENT_WRITE,
    BYTES_PER_SEGMENT_READ,
    BYTES_PER_SEGMENT_WRITE,
    BYTES_PER_TRAJ_READ,
    FLOPS_PER_EVENT,
    FLOPS_PER_SEGMENT,
    FLOPS_PER_TRAJ,
    KernelStats,
    PerfModel,
    WORK_KEYS,
    _is_warm,
    binmd_work,
    compare_traces,
    intersections_work,
    kernel_items,
    mdnorm_work,
    mdnorm_work_from_crossings,
    prepass_work,
)


# ---------------------------------------------------------------------------
# the cost model
# ---------------------------------------------------------------------------

class TestWorkFunctions:
    def test_binmd_work_cold(self):
        w = binmd_work(6, 1000, track_errors=True)
        lanes = 6 * 1000.0
        assert w["events"] == lanes
        assert w["bins_touched"] == lanes
        assert w["bytes_read"] == lanes * BYTES_PER_EVENT_READ
        assert w["bytes_written"] == lanes * BYTES_PER_EVENT_WRITE
        assert w["flops"] == lanes * FLOPS_PER_EVENT

    def test_binmd_work_without_errors_halves_writes(self):
        lanes = 2 * 500.0
        w = binmd_work(2, 500, track_errors=False)
        assert w["bytes_written"] == lanes * 8.0

    def test_binmd_work_warm_is_cheaper(self):
        cold = binmd_work(4, 100)
        warm = binmd_work(4, 100, cache_hit=True)
        assert warm["events"] == cold["events"]
        assert warm["flops"] < cold["flops"]
        assert warm["bytes_read"] < cold["bytes_read"]

    def test_mdnorm_work_shape(self):
        n_ops, n_det, width = 6, 50, 12
        w = mdnorm_work(n_ops, n_det, width)
        traj = float(n_ops * n_det)
        segments = traj * (width - 1)
        assert w["trajectories"] == traj
        assert w["segments"] == segments
        assert w["intersections"] == traj * (width - 2)
        assert w["bytes_read"] == (traj * BYTES_PER_TRAJ_READ
                                   + segments * BYTES_PER_SEGMENT_READ)
        assert w["bytes_written"] == segments * BYTES_PER_SEGMENT_WRITE
        assert w["flops"] == (traj * FLOPS_PER_TRAJ
                              + segments * FLOPS_PER_SEGMENT)

    def test_mdnorm_work_warm_plan_is_cheaper(self):
        cold = mdnorm_work(6, 50, 12)
        warm = mdnorm_work(6, 50, 12, warm_plan=True)
        assert warm["segments"] == cold["segments"]
        assert warm["flops"] < cold["flops"]
        assert warm["bytes_read"] < cold["bytes_read"]

    def test_mdnorm_work_degenerate_width(self):
        w = mdnorm_work(2, 3, 0)
        assert w["segments"] == 0.0
        assert w["intersections"] == 0.0

    def test_mdnorm_work_from_crossings(self):
        w = mdnorm_work_from_crossings(100, 700)
        assert w["trajectories"] == 100.0
        assert w["intersections"] == 700.0
        # segments = crossings + one per trajectory
        assert w["segments"] == 800.0

    def test_intersections_work_sort_term_grows_superlinearly(self):
        w8 = intersections_work(10, 8)["flops"]
        w16 = intersections_work(10, 16)["flops"]
        assert w16 > 2 * w8  # w log w

    def test_prepass_and_items(self):
        assert prepass_work(10)["trajectories"] == 10.0
        assert kernel_items((4, 5, 6))["items"] == 120.0

    def test_all_work_dicts_use_known_keys(self):
        for w in (
            binmd_work(2, 3),
            binmd_work(2, 3, cache_hit=True),
            mdnorm_work(2, 3, 8),
            mdnorm_work(2, 3, 8, warm_plan=True),
            mdnorm_work_from_crossings(5, 9),
            intersections_work(5, 8),
            prepass_work(5),
            kernel_items((2, 2)),
        ):
            assert set(w) <= set(WORK_KEYS)
            assert all(isinstance(v, float) for v in w.values())


class TestWarmAttribution:
    def test_warm_plan_wins(self):
        assert _is_warm({"warm_plan": True}) is True

    def test_cache_hit_flag(self):
        assert _is_warm({"cache_hit": True}) is True
        assert _is_warm({"cache_hit": False}) is False

    def test_unknown_is_none(self):
        assert _is_warm({}) is None
        assert _is_warm({"backend": "serial"}) is None


# ---------------------------------------------------------------------------
# the rollup
# ---------------------------------------------------------------------------

def _span(name, seq, dur, attrs):
    return {
        "type": "span", "name": name, "seq": seq, "dur": dur,
        "t0": 0.0, "t1": dur, "span_id": seq, "parent_id": None,
        "rank": None, "thread": "main", "attrs": attrs,
    }


def _synthetic_records():
    rng = random.Random(77)
    records = []
    seq = 0
    for i in range(12):
        warm = i % 3 == 0
        records.append(_span(
            "mdnorm", seq, 0.01 + 0.001 * i,
            {"backend": "vectorized", "warm_plan": warm,
             "perf": mdnorm_work(6, 40, 10, warm_plan=warm)},
        ))
        seq += 1
        records.append(_span(
            "binmd", seq, 0.02 + 0.001 * i,
            {"backend": "vectorized", "cache_hit": i % 2 == 0,
             "perf": binmd_work(6, 500 + i, cache_hit=i % 2 == 0)},
        ))
        seq += 1
        # an unprofiled span must not contribute
        records.append(_span("run", seq, 0.5, {"run": i}))
        seq += 1
    records.append({"type": "counter", "name": "geom_cache.hit",
                    "value": 4.0})
    records.append({"type": "counter", "name": "binmd.events",
                    "value": 6000.0})
    records.append({"type": "gauge", "name": "minivates.bytes_h2d",
                    "value": 123.0})
    rng.shuffle(records)  # from_records must not care
    return records


class TestPerfModel:
    def test_rollup_basics(self):
        model = PerfModel.from_records(_synthetic_records())
        assert model.n_kernels == 2
        md = model.get("mdnorm", "vectorized")
        bd = model.get("binmd", "vectorized")
        assert md.launches == 12 and bd.launches == 12
        assert md.warm_launches == 4 and md.cold_launches == 8
        assert bd.warm_launches == 6
        assert md.trajectories_per_s > 0
        assert bd.events_per_s > 0
        assert model.counters["geom_cache.hit"] == 4.0
        assert model.gauges["minivates.bytes_h2d"] == 123.0

    def test_rates_are_work_over_seconds(self):
        model = PerfModel.from_records(_synthetic_records())
        k = model.get("binmd", "vectorized")
        assert k.events_per_s == pytest.approx(
            k.work["events"] / k.seconds
        )
        assert k.arithmetic_intensity == pytest.approx(
            k.work["flops"] / (k.work["bytes_read"] + k.work["bytes_written"])
        )

    def test_rollup_deterministic_over_50_shuffles(self):
        base = PerfModel.from_records(_synthetic_records()).as_dict()
        records = _synthetic_records()
        for seed in range(50):
            shuffled = list(records)
            random.Random(seed).shuffle(shuffled)
            assert PerfModel.from_records(shuffled).as_dict() == base

    def test_cold_warm_summary(self):
        model = PerfModel.from_records(_synthetic_records())
        cw = model.cold_warm_summary()
        assert cw["cold_launches"] + cw["warm_launches"] == 24.0
        assert cw["geom_cache.hit"] == 4.0
        assert "binmd.events" not in cw  # not a cache counter
        assert cw["cold_seconds"] > 0.0 and cw["warm_seconds"] > 0.0

    def test_table_renders_every_kernel(self):
        model = PerfModel.from_records(_synthetic_records())
        text = model.table()
        assert "mdnorm" in text and "binmd" in text
        assert "events/s" in text and "isects/s" in text

    def test_empty_model(self):
        model = PerfModel.from_records([])
        assert model.n_kernels == 0
        assert "(no profiled spans" in model.table()
        assert model.roofline_csv().count("\n") == 1  # header only


class TestRooflineCsv:
    def test_schema_round_trip(self):
        model = PerfModel.from_records(_synthetic_records())
        rows = list(csv.DictReader(io.StringIO(model.roofline_csv())))
        assert len(rows) == model.n_kernels
        for row, k in zip(rows, model.rows()):
            assert row["kernel"] == k.name
            assert row["backend"] == k.backend
            assert int(row["launches"]) == k.launches
            assert float(row["seconds"]) == pytest.approx(k.seconds)
            assert float(row["arithmetic_intensity"]) == pytest.approx(
                k.arithmetic_intensity, rel=1e-5
            )
            assert float(row["flops_per_s"]) == pytest.approx(
                k.flops_per_s, rel=1e-5
            )


# ---------------------------------------------------------------------------
# derived purely from the trace: offline == live
# ---------------------------------------------------------------------------

class TestOfflineRecompute:
    def test_written_file_reproduces_live_rollup(self, tmp_path):
        tracer = trace_mod.Tracer(label="perf-offline")
        with trace_mod.use_tracer(tracer):
            for i in range(4):
                with tracer.span("mdnorm", backend="serial",
                                 warm_plan=i % 2 == 1,
                                 perf=mdnorm_work(2, 10, 6,
                                                  warm_plan=i % 2 == 1)):
                    pass
                with tracer.span("binmd", backend="serial",
                                 perf=binmd_work(2, 50)):
                    pass
            tracer.count("geom_cache.hit", 3)
            tracer.gauge("minivates.bytes_h2d", 42.0)
        live = PerfModel.from_records(
            tracer.records, counters=tracer.counters, gauges=tracer.gauges
        )
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)
        offline = PerfModel.from_file(path)
        assert offline.as_dict() == live.as_dict()
        assert offline.table() == live.table()
        assert offline.roofline_csv() == live.roofline_csv()


# ---------------------------------------------------------------------------
# the differential report
# ---------------------------------------------------------------------------

class TestCompareTraces:
    def test_compare_smoke(self):
        a = _synthetic_records()
        # B: same work, half the time -> ratios ~0.5 / rates ~2x
        b = []
        for r in _synthetic_records():
            r = dict(r)
            if r.get("type") == "span":
                r["dur"] = r["dur"] / 2.0
            b.append(r)
        text = compare_traces(a, b, label_a="slow", label_b="fast")
        assert "A=slow" in text and "B=fast" in text
        assert "mdnorm [vectorized]" in text
        assert "binmd [vectorized]" in text

    def test_compare_handles_disjoint_kernels(self):
        a = [_span("mdnorm", 0, 0.1,
                   {"backend": "serial", "perf": mdnorm_work(1, 5, 6)})]
        b = [_span("binmd", 0, 0.1,
                   {"backend": "cpp", "perf": binmd_work(1, 10)})]
        text = compare_traces(a, b)
        assert "mdnorm [serial]" in text
        assert "binmd [cpp]" in text
        assert "n/a" in text


class TestKernelStats:
    def test_zero_seconds_rates_are_zero(self):
        k = KernelStats(name="x", backend="-")
        assert k.rate("events") == 0.0
        assert k.bytes_per_s == 0.0
        assert k.arithmetic_intensity == 0.0

    def test_si_notation(self):
        assert perf._si(0.0) == "-"
        assert perf._si(1234.0) == "1.23k"
        assert perf._si(2.5e6) == "2.50M"
        assert perf._si(3.0e9) == "3.00G"
        assert perf._si(12.0) == "12.0"


class TestStealSummary:
    """Per-rank attribution of the stealing executor's task spans."""

    @staticmethod
    def _records():
        return [
            _span("steal:binmd", 1, 2.0,
                  {"kind": "steal_task", "exec_rank": 0, "completed": True}),
            _span("steal:mdnorm", 2, 1.0,
                  {"kind": "steal_task", "exec_rank": 0, "completed": True}),
            _span("steal:binmd", 3, 0.5,
                  {"kind": "steal", "exec_rank": 1, "owner": 0,
                   "victim": 0, "stolen": True, "completed": True}),
            _span("steal:binmd", 4, 0.5,
                  {"kind": "steal_task", "exec_rank": 1, "completed": False}),
            # non-stealing spans must be invisible to the rollup
            _span("kernel:binmd", 5, 9.0, {"kind": "kernel"}),
            {"type": "counter", "name": "steals", "value": 1.0},
        ]

    def test_rolls_up_per_rank(self):
        s = perf.steal_summary(self._records())
        assert sorted(s) == [0, 1]
        assert s[0]["tasks"] == 2.0 and s[0]["stolen"] == 0.0
        assert s[0]["task_seconds"] == pytest.approx(3.0)
        assert s[1]["tasks"] == 2.0 and s[1]["stolen"] == 1.0
        assert s[1]["stolen_seconds"] == pytest.approx(0.5)
        assert s[1]["incomplete"] == 1.0

    def test_table_renders_share_and_totals(self):
        text = perf.steal_table(perf.steal_summary(self._records()))
        assert "elastic stealing" in text
        lines = text.splitlines()
        assert any(line.strip().startswith("0") for line in lines)
        assert "50.0%" in text  # rank 1: 0.5 stolen of 1.0 busy seconds

    def test_empty_trace_degrades_gracefully(self):
        assert perf.steal_summary([]) == {}
        assert "no stealing-executor spans" in perf.steal_table({})
