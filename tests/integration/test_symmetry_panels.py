"""Fig. 4's physics: symmetry and run accumulation fill reciprocal space.

The paper's four panels — single run, single run + symmetry, all runs,
all runs + symmetry — show monotonically increasing coverage of the
(H, K) plane.  These tests verify that behaviour quantitatively on the
synthetic Benzil ensemble.
"""

import numpy as np
import pytest

from repro.core.cross_section import compute_cross_section
from repro.core.md_event_workspace import load_md
from repro.crystal.symmetry import point_group


def _panel(exp, n_runs, pg_symbol):
    pg = point_group(pg_symbol)
    return compute_cross_section(
        load_run=lambda i: load_md(exp.md_paths[i]),
        n_runs=n_runs,
        grid=exp.grid,
        point_group=pg,
        flux=exp.flux,
        det_directions=exp.instrument.directions,
        solid_angles=exp.vanadium.detector_weights,
        backend="vectorized",
    )


@pytest.fixture(scope="module")
def panels(tiny_experiment):
    exp = tiny_experiment
    return {
        "single": _panel(exp, 1, "1"),
        "single+sym": _panel(exp, 1, "321"),
        "all": _panel(exp, 3, "1"),
        "all+sym": _panel(exp, 3, "321"),
    }


class TestCoverageOrdering:
    def test_symmetry_increases_binmd_coverage(self, panels):
        assert (
            panels["single+sym"].binmd.nonzero_fraction()
            > panels["single"].binmd.nonzero_fraction()
        )
        assert (
            panels["all+sym"].binmd.nonzero_fraction()
            > panels["all"].binmd.nonzero_fraction()
        )

    def test_more_runs_increase_coverage(self, panels):
        assert (
            panels["all"].binmd.nonzero_fraction()
            > panels["single"].binmd.nonzero_fraction()
        )

    def test_full_panel_has_best_coverage(self, panels):
        fractions = {k: p.binmd.nonzero_fraction() for k, p in panels.items()}
        assert max(fractions, key=fractions.get) == "all+sym"

    def test_normalization_coverage_follows_same_ordering(self, panels):
        assert (
            panels["all+sym"].mdnorm.nonzero_fraction()
            >= panels["single"].mdnorm.nonzero_fraction()
        )


class TestSignalConservation:
    def test_symmetry_multiplies_binmd_total_by_order(self, panels):
        """Each of the 6 ops re-deposits (approximately) the events;
        edge losses make it slightly less than 6x."""
        ratio = panels["single+sym"].binmd.total() / panels["single"].binmd.total()
        assert 3.0 < ratio <= 6.0 + 1e-9

    def test_runs_accumulate_signal(self, panels):
        assert panels["all"].binmd.total() > panels["single"].binmd.total()

    def test_symmetrized_histogram_contains_unsymmetrized(self, panels):
        """Bins lit in the P1 panel stay lit after symmetrization."""
        base = panels["single"].binmd.signal > 0
        sym = panels["single+sym"].binmd.signal > 0
        assert np.all(sym[base])
