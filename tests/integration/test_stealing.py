"""Steal-schedule fuzzing harness (ISSUE 7 centerpiece).

The elastic work-stealing executor's whole contract is that the steal
schedule is **numerically invisible**: for any interleaving of steals,
births, leaves and deaths the reduced histograms are bit-identical to
the static recovering loop (the serial oracle).  This suite attacks
that claim from every angle the ScheduleController can express:

* a fuzz matrix — 50 seeds x {2, 3, 4} ranks, rotating through every
  schedule policy, each campaign asserted bit-identical to the oracle;
* the adversarial presets by name: ``no-steal`` (the calibration leg —
  trivially the static plan), ``all-steal``, ``herd`` (thundering
  herd), birth-during-drain, clean leave, scheduled death, and a
  rank killed *while holding a claimed task* (fault injection at the
  ``steal.task`` site);
* record/replay — a recorded schedule round-trips through JSON and
  replays bit-identically (degrading gracefully against a different
  thread interleaving);
* exactly-once accounting — the trace stream carries one
  ``completed=True`` steal span per planned ``(run, stage, shard)``
  cell, under chaos included;
* the executor x back-end conformance sweep — the stealing result is
  bit-identical to the serial-order oracle on *every* registered back
  end (the record/replay path is scalar; back ends only accelerate
  the exact-integer pre-pass).

Histogram note: the stealing executor always folds ``error_sq`` from
its per-run deltas, while the uncheckpointed static oracle drops it in
the final Reduce; ``error_sq`` is therefore compared against a
stealing self-reference (and against the static result whenever the
oracle carries one).
"""

import json
from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.core.checkpoint import RecoveryConfig
from repro.core.cross_section import compute_cross_section
from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import convert_to_md, load_md, save_md
from repro.core.sharding import (
    ShardConfig,
    available_executors,
    register_executor,
    resolve_executor,
)
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil
from repro.crystal.symmetry import point_group
from repro.crystal.ub import UBMatrix
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.jacc import available_backends
from repro.mpi import run_world
from repro.mpi.stealing import run_stealing_campaign
from repro.util import trace as trace_mod
from repro.util.faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    use_fault_plan,
)
from repro.util.schedule import POLICIES, ScheduleController
from repro.util.validation import ValidationError

N_RUNS = 3
N_SHARDS = 2
N_FUZZ_SEEDS = 50
SIZES = (2, 3, 4)
POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.0)

#: the matrix rows, auto-discovered like the back-end matrix's
EXECUTORS = tuple(available_executors())
BACKENDS = tuple(available_backends())


@dataclass
class StealExperiment:
    """A 3-run experiment small enough for hundreds of campaigns."""

    instrument: object
    grid: HKLGrid
    point_group: object
    flux: object
    vanadium: object
    md_paths: List[str]

    def loader(self, i):
        return load_md(self.md_paths[i])

    def kw(self):
        return dict(
            n_runs=len(self.md_paths),
            grid=self.grid,
            point_group=self.point_group,
            flux=self.flux,
            det_directions=self.instrument.directions,
            solid_angles=self.vanadium.detector_weights,
        )


@pytest.fixture(scope="module", autouse=True)
def _dispose_pool_after_module():
    from repro.jacc.workers import GLOBAL_POOL

    yield
    GLOBAL_POOL.dispose()


@pytest.fixture(scope="module")
def exp(tmp_path_factory) -> StealExperiment:
    base = tmp_path_factory.mktemp("stealing")
    structure = benzil()
    instrument = make_corelli(n_pixels=24)
    ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0],
                                 [1.0, 0.0, 0.0])
    grid = HKLGrid.benzil_grid(bins=(7, 7, 1))
    pg = point_group("321")
    flux = make_flux(instrument)
    vanadium = make_vanadium(instrument)
    md_paths = []
    for i, omega in enumerate((0.0, 40.0, 80.0)):
        run = synthesize_run(
            instrument=instrument, structure=structure, ub=ub,
            goniometer=Goniometer(omega).rotation, n_events=80,
            rng=np.random.default_rng(6200 + i), run_number=i,
        )
        ws = convert_to_md(run, instrument, run_index=i)
        path = str(base / f"run_{i}.md.h5")
        save_md(path, ws)
        md_paths.append(path)
    return StealExperiment(
        instrument=instrument, grid=grid, point_group=pg, flux=flux,
        vanadium=vanadium, md_paths=md_paths,
    )


@pytest.fixture(scope="module")
def golden(exp):
    """The serial oracle: the static recovering loop, fault-free."""
    return compute_cross_section(
        exp.loader, recovery=RecoveryConfig(retry=POLICY), **exp.kw()
    )


@pytest.fixture(scope="module")
def steal_baseline(exp):
    """Sequential no-steal stealing run: the error_sq self-reference."""
    return _steal_seq(exp, ScheduleController(seed=0, policy="no-steal"))


def _shards():
    return ShardConfig(n_shards=N_SHARDS, workers=1)


def _steal_seq(exp, schedule, *, recovery=None, backend=None):
    return run_stealing_campaign(
        exp.loader,
        recovery=recovery or RecoveryConfig(retry=POLICY),
        shards=_shards(), schedule=schedule, backend=backend, **exp.kw()
    )


def _steal_world(exp, size, schedule, *, recovery=None, plan=None):
    """Run one multi-rank stealing campaign; return the root's result."""

    def body(comm):
        return run_stealing_campaign(
            exp.loader, comm=comm,
            recovery=recovery or RecoveryConfig(retry=POLICY),
            shards=_shards(), schedule=schedule, **exp.kw()
        )

    if plan is not None:
        with use_fault_plan(plan):
            results = run_world(size, body, barrier_timeout=60.0)
    else:
        results = run_world(size, body, barrier_timeout=60.0)
    roots = [r for r in results if r is not None
             and r.cross_section is not None]
    assert len(roots) == 1
    return roots[0]


def _assert_identical(res, golden, baseline=None, label=""):
    """Bit-identity against the oracle (error_sq where available)."""
    assert np.array_equal(res.binmd.signal, golden.binmd.signal), label
    assert np.array_equal(res.mdnorm.signal, golden.mdnorm.signal), label
    assert np.array_equal(res.cross_section.signal,
                          golden.cross_section.signal, equal_nan=True), label
    if golden.binmd.error_sq is not None:
        assert np.array_equal(res.binmd.error_sq,
                              golden.binmd.error_sq), label
    if baseline is not None:
        assert np.array_equal(res.binmd.error_sq,
                              baseline.binmd.error_sq), label


def _planned_cells():
    """Every (run, stage, shard) cell the plan cuts for this fixture:
    24 detectors and 80 in-memory events both split into N_SHARDS
    contiguous ranges per run."""
    return {
        (run, stage, idx)
        for run in range(N_RUNS)
        for stage in ("mdnorm", "binmd")
        for idx in range(N_SHARDS)
    }


def _completed_cells(records):
    """(run, stage, shard) of every completed steal span, with
    multiplicity (exactly-once accounting reads this)."""
    cells = {}
    for rec in trace_mod.iter_spans(records):
        if not rec["name"].startswith("steal:"):
            continue
        if not rec["attrs"].get("completed"):
            continue
        key = (rec["attrs"]["run"], rec["name"].split(":", 1)[1],
               rec["attrs"]["shard"])
        cells[key] = cells.get(key, 0) + 1
    return cells


# ---------------------------------------------------------------------------
# calibration + dispatch
# ---------------------------------------------------------------------------

class TestStaticEquivalence:
    def test_no_steal_is_the_static_plan(self, exp, golden):
        """The calibration leg: a schedule that never steals executes
        the static plan and must match it with zero steals."""
        res = _steal_seq(exp, ScheduleController(seed=0, policy="no-steal"))
        _assert_identical(res, golden)
        assert res.extras["stealing"]["steals"] == 0
        assert res.extras["stealing"]["tasks"] == 2 * N_SHARDS * N_RUNS
        assert res.extras["stealing"]["policy"] == "no-steal"

    def test_sequential_random_matches_static(self, exp, golden):
        res = _steal_seq(exp, ScheduleController(seed=3, policy="random"))
        _assert_identical(res, golden)

    def test_dispatch_through_compute_cross_section(self, exp, golden):
        """`executor="stealing"` routes the public entry point through
        the elastic executor; the result carries the stealing extras."""
        res = compute_cross_section(
            exp.loader, executor="stealing",
            schedule=ScheduleController(seed=5, policy="random"),
            recovery=RecoveryConfig(retry=POLICY),
            shards=_shards(), **exp.kw()
        )
        _assert_identical(res, golden)
        assert res.extras["stealing"]["seed"] == 5

    def test_schedule_without_dynamic_executor_rejected(self, exp):
        with pytest.raises(ValidationError, match="dynamic executor"):
            compute_cross_section(
                exp.loader, executor="static",
                schedule=ScheduleController(seed=0), **exp.kw()
            )

    def test_unknown_executor_rejected(self, exp):
        with pytest.raises(ValueError, match="stealing"):
            compute_cross_section(exp.loader, executor="fifo", **exp.kw())

    def test_kernel_impl_overrides_not_stealable(self, exp):
        with pytest.raises(ValidationError, match="not stealable"):
            run_stealing_campaign(
                exp.loader, binmd_impl=lambda *a, **k: None, **exp.kw()
            )

    def test_worker_pool_path_matches(self, exp, golden):
        """workers > 1 ships each task through the process pool; the
        deposit logs (and so the replay) are unchanged."""
        res = run_stealing_campaign(
            exp.loader, recovery=RecoveryConfig(retry=POLICY),
            shards=ShardConfig(n_shards=N_SHARDS, workers=2),
            schedule=ScheduleController(seed=9, policy="random"), **exp.kw()
        )
        _assert_identical(res, golden)


# ---------------------------------------------------------------------------
# the fuzz matrix
# ---------------------------------------------------------------------------

class TestFuzzMatrix:
    """50 seeds x {2, 3, 4} ranks, policies rotating — every campaign
    bit-identical to the serial oracle, whatever got stolen."""

    @pytest.mark.parametrize("size", SIZES)
    def test_fifty_seeds_bit_identical(self, exp, golden, steal_baseline,
                                       size):
        total_steals = 0
        for seed in range(N_FUZZ_SEEDS):
            policy = POLICIES[seed % len(POLICIES)]
            ctl = ScheduleController(
                seed=seed, policy=policy,
                p_steal=0.25 + 0.5 * ((seed // len(POLICIES)) % 3) / 2.0,
            )
            res = _steal_world(exp, size, ctl)
            _assert_identical(res, golden, steal_baseline,
                              label=f"size={size} seed={seed} {policy}")
            stats = res.extras["stealing"]
            assert stats["tasks"] == 2 * N_SHARDS * N_RUNS
            assert len(stats["schedule_signature"]) == 16
            total_steals += stats["steals"]
        # the matrix is not vacuous: schedules other than no-steal
        # actually moved work between ranks
        assert total_steals > 0

    def test_sequential_campaign_fully_deterministic(self, exp):
        """With one rank there is no interleaving left: the same seed
        reproduces the exact decision record (and its signature)."""
        def signature(seed):
            ctl = ScheduleController(seed=seed, policy="random")
            _steal_seq(exp, ctl)
            return ctl.schedule_signature(), list(ctl.events)

        sig_a, events_a = signature(21)
        sig_b, events_b = signature(21)
        assert sig_a == sig_b
        assert events_a == events_b


# ---------------------------------------------------------------------------
# adversarial presets
# ---------------------------------------------------------------------------

class TestAdversarialSchedules:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("size", (2, 3))
    def test_named_policies(self, exp, golden, steal_baseline, size, policy):
        ctl = ScheduleController(seed=13, policy=policy)
        res = _steal_world(exp, size, ctl)
        _assert_identical(res, golden, steal_baseline,
                          label=f"{policy}@{size}")
        if policy == "no-steal":
            assert res.extras["stealing"]["steals"] == 0

    def test_birth_during_drain(self, exp, golden, steal_baseline):
        """A rank born mid-campaign drains the queue alongside the
        world; its deposits merge through the same ordered replay."""
        tracer = trace_mod.Tracer()
        ctl = ScheduleController(seed=7, policy="random", births=(2,))
        with trace_mod.use_tracer(tracer):
            res = _steal_world(exp, 2, ctl)
        _assert_identical(res, golden, steal_baseline)
        assert res.extras["stealing"]["births"] == 1
        assert tracer.counters["steal.births"] == 1
        born = [r for r in trace_mod.iter_spans(tracer.records)
                if r["name"] == "rank" and r["attrs"].get("born")]
        assert len(born) == 1
        assert born[0]["attrs"]["rank"] == 2  # helper ids start at size

    def test_clean_leave_requeues_backlog(self, exp, golden, steal_baseline):
        """Drain-and-requeue: the leaver's remaining deque becomes
        orphan work and is adopted, never lost."""
        tracer = trace_mod.Tracer()
        ctl = ScheduleController(seed=11, policy="no-steal",
                                 leaves=((1, 1),))
        with trace_mod.use_tracer(tracer):
            res = _steal_world(exp, 3, ctl)
        _assert_identical(res, golden, steal_baseline)
        assert tracer.counters["steal.leaves"] == 1
        # with stealing vetoed, the leaver's backlog can only have
        # moved through orphan adoption
        assert res.extras["stealing"]["adoptions"] > 0
        assert {d["status"] for d in res.dispositions.values()} == {"done"}

    def test_scheduled_death_between_tasks(self, exp, golden,
                                           steal_baseline):
        ctl = ScheduleController(seed=17, policy="random",
                                 deaths=((2, 1),))
        res = _steal_world(exp, 3, ctl)
        _assert_identical(res, golden, steal_baseline)
        assert res.extras["recovery"]["failed_ranks"] == [1]

    def test_death_holding_claimed_work(self, exp, golden, steal_baseline):
        """The hardest preset: the rank dies *inside* a task attempt,
        while the task is claimed.  The claim must requeue and execute
        exactly once elsewhere."""
        plan = FaultPlan(
            [FaultSpec(site="steal.task", kind="rank_crash",
                       probability=1.0, ranks=(1,), max_hits=1)],
            seed=19,
        )
        ctl = ScheduleController(seed=19, policy="all-steal")
        tracer = trace_mod.Tracer()
        with trace_mod.use_tracer(tracer):
            res = _steal_world(exp, 3, ctl, plan=plan)
        assert plan.stats()["injected"] == 1
        _assert_identical(res, golden, steal_baseline)
        assert res.extras["recovery"]["failed_ranks"] == [1]
        cells = _completed_cells(tracer.records)
        assert cells == {key: 1 for key in _planned_cells()}

    def test_birth_after_death(self, exp, golden, steal_baseline):
        """The elastic extremes composed: a rank dies, a replacement
        is born, the campaign still lands bit-identically."""
        ctl = ScheduleController(seed=23, policy="random",
                                 deaths=((1, 1),), births=(3,))
        res = _steal_world(exp, 3, ctl)
        _assert_identical(res, golden, steal_baseline)
        assert res.extras["recovery"]["failed_ranks"] == [1]
        assert res.extras["stealing"]["births"] == 1


# ---------------------------------------------------------------------------
# record / replay
# ---------------------------------------------------------------------------

class TestRecordReplay:
    def test_json_round_trip_replays_bit_identical(self, exp, golden,
                                                   steal_baseline):
        ctl = ScheduleController(seed=29, policy="random")
        first = _steal_world(exp, 3, ctl)
        _assert_identical(first, golden, steal_baseline)

        record = ctl.to_json()
        json.loads(json.dumps(record))  # genuinely serializable
        replayed = _steal_world(exp, 3, ScheduleController.from_json(record))
        _assert_identical(replayed, golden, steal_baseline)

    def test_replay_from_file(self, exp, golden, steal_baseline, tmp_path):
        ctl = ScheduleController(seed=31, policy="all-steal")
        _assert_identical(_steal_world(exp, 2, ctl), golden, steal_baseline)
        path = str(tmp_path / "schedule.json")
        ctl.save(path)
        replay = ScheduleController.from_file(path)
        _assert_identical(_steal_world(exp, 2, replay), golden,
                          steal_baseline)

    def test_signature_reported_in_extras(self, exp):
        ctl = ScheduleController(seed=37, policy="random")
        res = _steal_world(exp, 2, ctl)
        assert (res.extras["stealing"]["schedule_signature"]
                == ctl.schedule_signature())


# ---------------------------------------------------------------------------
# exactly-once accounting through the trace stream
# ---------------------------------------------------------------------------

class TestExactlyOnceAccounting:
    def test_every_planned_cell_completes_exactly_once(self, exp, golden):
        tracer = trace_mod.Tracer()
        ctl = ScheduleController(seed=41, policy="all-steal", births=(2,))
        with trace_mod.use_tracer(tracer):
            res = _steal_world(exp, 3, ctl)
        _assert_identical(res, golden)
        cells = _completed_cells(tracer.records)
        assert cells == {key: 1 for key in _planned_cells()}
        assert tracer.counters["mdnorm.shard_tasks"] == N_SHARDS * N_RUNS
        assert tracer.counters["binmd.shard_tasks"] == N_SHARDS * N_RUNS
        assert tracer.counters.get("steals", 0) == float(
            res.extras["stealing"]["steals"])
        assert "steal.queue_depth" in tracer.gauges

    def test_steal_spans_carry_provenance(self, exp):
        """Each stolen task's span names thief, victim and the planned
        owner — the audit trail the fault tests lean on."""
        tracer = trace_mod.Tracer()
        with trace_mod.use_tracer(tracer):
            res = _steal_world(
                exp, 2, ScheduleController(seed=43, policy="all-steal"))
        stolen = [r for r in trace_mod.iter_spans(tracer.records)
                  if r["name"].startswith("steal:")
                  and r["attrs"].get("stolen")]
        assert res.extras["stealing"]["steals"] == len(stolen)
        assert stolen
        for rec in stolen:
            attrs = rec["attrs"]
            assert attrs["victim"] != attrs["exec_rank"]
            assert {"run", "shard", "owner", "exec_rank"} <= set(attrs)


# ---------------------------------------------------------------------------
# executor x back-end conformance sweep
# ---------------------------------------------------------------------------

class TestExecutorBackendConformance:
    """The stealing executor rides the back-end matrix: record/replay
    runs the scalar element bodies, so the campaign is bit-identical to
    the serial-order oracle on every registered back end (the back end
    only accelerates the exact-integer intersection pre-pass)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_bit_identical_under_random_schedules(
        self, exp, golden, steal_baseline, backend
    ):
        for seed in (0, 1, 2):
            res = _steal_seq(
                exp, ScheduleController(seed=seed, policy="random"),
                backend=backend,
            )
            _assert_identical(res, golden, steal_baseline,
                              label=f"{backend} seed={seed}")

    def test_executor_rows_auto_discovered(self):
        """The matrix rows come from the executor registry, exactly as
        the back-end matrix's come from the back-end registry."""
        assert set(EXECUTORS) <= set(available_executors())
        assert {"static", "stealing"} <= set(EXECUTORS)

    def test_future_executors_auto_register(self, exp, golden):
        """Registering an executor is sufficient to put it in the
        matrix: the rows are derived from the registry, and the oracle
        check passes against a probe without this file changing."""
        register_executor(
            "conformance-probe", "repro.mpi.stealing:run_stealing_campaign"
        )
        try:
            assert "conformance-probe" in available_executors()
            res = compute_cross_section(
                exp.loader, executor="conformance-probe",
                schedule=ScheduleController(seed=2, policy="random"),
                recovery=RecoveryConfig(retry=POLICY),
                shards=_shards(), **exp.kw()
            )
            _assert_identical(res, golden)
        finally:
            from repro.core.sharding import _EXECUTORS

            _EXECUTORS.pop("conformance-probe", None)
        assert "conformance-probe" not in available_executors()
        with pytest.raises(ValueError):
            resolve_executor("conformance-probe")
