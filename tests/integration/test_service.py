"""Multi-tenant campaign service, end to end (PR 8 acceptance suite).

The ISSUE's acceptance invariants, each proven on real reductions of
the session-wide tiny experiment:

(a) two concurrent submissions of the same configuration run **one**
    reduction and both jobs get bit-identical results (single-flight);
(b) a poisoned job (injected fault plan) quarantines alone while its
    neighbour's panel is bit-identical to a solo run (isolation);
(c) a job cancelled or expired mid-campaign has its completed runs
    durably checkpointed and a later submission of the same science
    resumes them bit-identically (cancel/deadline safety);
(d) an over-quota submission is rejected with a structured reason
    (admission control);
(e) drain leaves no in-flight job without a durable checkpoint
    (graceful shutdown).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointManager, RecoveryConfig
from repro.core.workflow import ReductionWorkflow, WorkflowConfig
from repro.crystal.symmetry import point_group  # noqa: F401  (fixture deps)
from repro.core.grid import HKLGrid
from repro.service import (
    AdmissionPolicy,
    CampaignService,
    JobSpec,
    TenantQuota,
    workflow_digest,
)
from repro.service.queue import (
    REASON_DRAINING,
    REASON_TENANT_BYTES,
    REASON_TENANT_JOBS,
)
from repro.util.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.util.monitor import parse_metrics

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0)


def _config(exp, **overrides) -> WorkflowConfig:
    base = dict(
        md_paths=list(exp.md_paths),
        flux_path=exp.flux_path,
        vanadium_path=exp.vanadium_path,
        instrument=exp.instrument,
        grid=exp.grid,
        point_group=exp.point_group,
        recovery=RecoveryConfig(retry=FAST_RETRY),
    )
    base.update(overrides)
    return WorkflowConfig(**base)


def _small_grid():
    return HKLGrid.benzil_grid(bins=(21, 21, 1))


def _poison_plan():
    """Every attempt at every run fails -> all runs quarantine."""
    return FaultPlan(
        [FaultSpec(site="run", kind="io_error", probability=1.0,
                   scope="recovery")],
        seed=5,
    )


def _slow_plan(delay_s=0.5):
    """Runs succeed but each takes >= delay_s (cancel windows)."""
    return FaultPlan(
        [FaultSpec(site="run", kind="slow", probability=1.0,
                   delay_s=delay_s, scope="recovery")],
        seed=6,
    )


def _wait_for_checkpointed_run(root, digest, timeout=30.0):
    """Poll until the digest's manifest records >= 1 completed run."""
    manifest = os.path.join(root, "ckpt", digest, "manifest.json")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(manifest) as fh:
                doc = json.load(fh)
            if doc.get("runs"):
                return sorted(int(k) for k in doc["runs"])
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.005)
    raise AssertionError("no run was checkpointed in time")


@pytest.fixture(scope="module")
def ref_full(tiny_experiment):
    """Solo, service-free reduction of the full-grid configuration."""
    return ReductionWorkflow(_config(tiny_experiment)).run(None)


@pytest.fixture(scope="module")
def ref_small(tiny_experiment):
    """Solo reduction of the small-grid configuration."""
    return ReductionWorkflow(
        _config(tiny_experiment, grid=_small_grid())).run(None)


class TestSingleFlight:
    def test_concurrent_duplicate_digest_runs_once(
            self, tmp_path, tiny_experiment, ref_full):
        cfg = _config(tiny_experiment)
        with CampaignService(tmp_path / "svc", workers=2) as svc:
            job_a, dec_a = svc.submit(JobSpec(tenant="hb2c", config=cfg))
            job_b, dec_b = svc.submit(JobSpec(tenant="cncs", config=cfg))
            assert dec_a and dec_b
            assert job_a.digest == job_b.digest
            assert svc.wait(timeout=120.0)
            stats = svc.store.stats()
            stored = svc.store.get(job_a.digest)
        assert job_a.state == job_b.state == "done"
        provenances = {job_a.result["provenance"],
                       job_b.result["provenance"]}
        assert "computed" in provenances
        assert provenances <= {"computed", "coalesced", "cache"}
        # exactly one reduction happened
        assert stats["misses"] == 1
        assert stats["hits"] + stats["coalesced"] == 1
        # and both tenants read the same bit-identical science
        assert job_a.result["binmd_total"] == job_b.result["binmd_total"]
        assert np.array_equal(stored.cross_section,
                              ref_full.cross_section.signal,
                              equal_nan=True)
        assert np.array_equal(stored.binmd_signal, ref_full.binmd.signal)


class TestIsolation:
    def test_poisoned_job_quarantines_alone(
            self, tmp_path, tiny_experiment, ref_full):
        clean_cfg = _config(tiny_experiment)
        poison_cfg = _config(tiny_experiment, grid=_small_grid())
        with CampaignService(tmp_path / "svc", workers=2) as svc:
            bad, _ = svc.submit(JobSpec(tenant="chaos", config=poison_cfg,
                                        fault_plan=_poison_plan()))
            good, _ = svc.submit(JobSpec(tenant="prod", config=clean_cfg))
            assert svc.wait(timeout=120.0)
            stored = svc.store.get(good.digest)
        assert bad.state == "quarantined"
        assert bad.result["degraded"] is True
        assert bad.result["quarantined_runs"] == [0, 1, 2]
        # degraded science never entered the store
        assert svc.store.get(bad.digest) is None
        # the neighbour's panel is bit-identical to the solo run
        assert good.state == "done"
        assert np.array_equal(stored.cross_section,
                              ref_full.cross_section.signal,
                              equal_nan=True)
        assert np.array_equal(stored.binmd_signal, ref_full.binmd.signal)
        if ref_full.binmd.error_sq is not None:
            assert np.array_equal(stored.binmd_error_sq,
                                  ref_full.binmd.error_sq)

    def test_clean_resubmit_retries_quarantined_runs(
            self, tmp_path, tiny_experiment, ref_small):
        cfg = _config(tiny_experiment, grid=_small_grid())
        with CampaignService(tmp_path / "svc", workers=1) as svc:
            bad, _ = svc.submit(JobSpec(tenant="chaos", config=cfg,
                                        fault_plan=_poison_plan()))
            assert svc.wait(bad.id, timeout=120.0)
            assert bad.state == "quarantined"
            # same digest, clean environment: the new attempt clears the
            # old quarantine and computes full fidelity
            good, _ = svc.submit(JobSpec(tenant="prod", config=cfg))
            assert svc.wait(good.id, timeout=120.0)
            stored = svc.store.get(good.digest)
        assert good.state == "done"
        assert good.result["provenance"] == "computed"
        assert np.array_equal(stored.cross_section,
                              ref_small.cross_section.signal,
                              equal_nan=True)
        ck = CheckpointManager(
            os.path.join(svc.root, "ckpt", good.digest),
            config_digest=good.digest)
        assert ck.quarantined_runs() == []
        assert ck.completed_runs() == [0, 1, 2]


class TestCancelAndDeadline:
    def test_cancel_mid_campaign_then_resume_bit_identical(
            self, tmp_path, tiny_experiment, ref_full):
        cfg = _config(tiny_experiment)
        digest = workflow_digest(cfg)
        root = str(tmp_path / "svc")
        with CampaignService(root, workers=1) as svc:
            job, _ = svc.submit(JobSpec(tenant="hb2c", config=cfg,
                                        fault_plan=_slow_plan(0.5)))
            done_runs = _wait_for_checkpointed_run(root, digest)
            assert svc.cancel(job.id, "operator request")
            assert svc.wait(job.id, timeout=60.0)
            assert job.state == "cancelled"
            assert "operator request" in job.error
            # the cancelled campaign left durable, digest-bound progress
            ck = CheckpointManager(os.path.join(root, "ckpt", digest),
                                   config_digest=digest)
            completed = ck.completed_runs()
            assert completed and completed[0] == 0
            assert len(completed) < len(cfg.md_paths)
            delta_files = {
                i: os.path.join(ck.directory, ck.run_record(i)["file"])
                for i in completed
            }
            mtimes = {i: os.path.getmtime(p)
                      for i, p in delta_files.items()}
            # resubmit the same science, clean: it must *resume*, not
            # recompute, and end bit-identical to the uninterrupted run
            again, _ = svc.submit(JobSpec(tenant="hb2c", config=cfg))
            assert svc.wait(again.id, timeout=120.0)
            stored = svc.store.get(digest)
        assert again.state == "done"
        assert np.array_equal(stored.cross_section,
                              ref_full.cross_section.signal,
                              equal_nan=True)
        assert np.array_equal(stored.mdnorm_signal, ref_full.mdnorm.signal)
        for i, path in delta_files.items():
            assert os.path.getmtime(path) == mtimes[i], \
                f"run {i} was recomputed, not resumed"
        assert done_runs[0] == 0

    def test_deadline_expiry_is_checkpointed_and_resumable(
            self, tmp_path, tiny_experiment, ref_full):
        cfg = _config(tiny_experiment)
        digest = workflow_digest(cfg)
        root = str(tmp_path / "svc")

        class FakeClock:
            def __init__(self):
                self.t = 0.0

            def __call__(self):
                return self.t

        clock = FakeClock()
        with CampaignService(root, workers=1,
                             cancel_clock=clock) as svc:
            job, _ = svc.submit(JobSpec(tenant="cncs", config=cfg,
                                        timeout_s=100.0,
                                        fault_plan=_slow_plan(0.4)))
            _wait_for_checkpointed_run(root, digest)
            clock.t = 1000.0  # blow the deadline deterministically
            assert svc.wait(job.id, timeout=60.0)
            assert job.state == "expired"
            assert job.cancel.reason == "deadline"
            ck = CheckpointManager(os.path.join(root, "ckpt", digest),
                                   config_digest=digest)
            assert ck.completed_runs()
            again, _ = svc.submit(JobSpec(tenant="cncs", config=cfg))
            assert svc.wait(again.id, timeout=120.0)
            stored = svc.store.get(digest)
        assert again.state == "done"
        assert np.array_equal(stored.cross_section,
                              ref_full.cross_section.signal,
                              equal_nan=True)


class TestAdmission:
    def test_over_quota_rejected_with_structured_reason(
            self, tmp_path, tiny_experiment):
        cfg = _config(tiny_experiment, grid=_small_grid())
        policy = AdmissionPolicy(
            default_quota=TenantQuota(max_jobs=1),
            quotas={"tiny": TenantQuota(max_jobs=8, max_bytes=1)},
        )
        svc = CampaignService(tmp_path / "svc", policy=policy, workers=1)
        with svc:
            first, dec = svc.submit(JobSpec(tenant="hb2c", config=cfg,
                                            fault_plan=_slow_plan(0.3)))
            assert dec
            second, dec2 = svc.submit(JobSpec(tenant="hb2c", config=cfg))
            assert not dec2
            assert dec2.code == REASON_TENANT_JOBS
            assert dec2.limits == {"max_jobs": 1, "jobs": 1}
            assert second.error == f"rejected: {REASON_TENANT_JOBS}"
            # rejected jobs are not tracked by the service
            assert [j.id for j in svc.jobs()] == [first.id]
            third, dec3 = svc.submit(JobSpec(tenant="tiny", config=cfg))
            assert not dec3
            assert dec3.code == REASON_TENANT_BYTES
            assert dec3.limits["max_bytes"] == 1
            assert dec3.limits["est_bytes"] > 1
            assert svc.wait(timeout=120.0)


class TestDrain:
    def test_drain_leaves_durable_checkpoints(
            self, tmp_path, tiny_experiment):
        running_cfg = _config(tiny_experiment)
        queued_cfg = _config(tiny_experiment, grid=_small_grid())
        root = str(tmp_path / "svc")
        svc = CampaignService(root, workers=1).start()
        running, _ = svc.submit(JobSpec(tenant="hb2c", config=running_cfg,
                                        fault_plan=_slow_plan(0.5)))
        queued, _ = svc.submit(JobSpec(tenant="cncs", config=queued_cfg,
                                       fault_plan=_slow_plan(0.5)))
        _wait_for_checkpointed_run(root, running.digest)
        assert svc.drain(cancel_running=True, timeout=60.0)
        assert running.state == "cancelled"
        assert queued.state == "cancelled"
        # the dispatched job's progress survived durably and digest-bound
        ck = CheckpointManager(os.path.join(root, "ckpt", running.digest),
                               config_digest=running.digest)
        assert ck.completed_runs()
        # the never-dispatched job never ran
        assert "running" not in queued.timestamps
        # and the drained service admits nothing
        late, dec = svc.submit(JobSpec(tenant="hb2c", config=running_cfg))
        assert not dec and dec.code == REASON_DRAINING


class TestHealthEndpoint:
    def test_metrics_exposition_has_service_and_job_labels(
            self, tmp_path, tiny_experiment):
        cfg = _config(tiny_experiment, grid=_small_grid())
        with CampaignService(tmp_path / "svc", workers=1) as svc:
            job, _ = svc.submit(JobSpec(tenant="hb2c", config=cfg,
                                        label="panel-21"))
            assert svc.wait(timeout=120.0)
            text = svc.metrics()
        families = parse_metrics(text)
        assert "repro_service_queue_depth" in families
        assert "repro_service_active_jobs" in families
        assert "repro_service_store_hits" in families
        state = families["repro_service_job_state"]
        assert {("job", job.id), ("state", "done"),
                ("tenant", "hb2c")} <= set(next(iter(state)))
        # per-job campaign metrics carry the job/tenant labels
        labelled = [
            labels
            for name, table in families.items()
            if name.startswith("repro_campaign")
            for labels in table
            if ("job", job.id) in labels
        ]
        assert labelled, "no campaign family carried the job label"
        # lifecycle transitions were observable as trace counters too
        assert job.timestamps["queued"] <= job.timestamps["admitted"] \
            <= job.timestamps["running"] <= job.timestamps["done"]
