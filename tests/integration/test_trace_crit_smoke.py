"""End-to-end smoke of the campaign trace tooling.

The acceptance scenario of the causal-tracing PR on a small Benzil
campaign: per-rank files merge into one validating schema-v3 DAG, the
critical path reconciles with the measured wall-clock, steal links
resolve, an injected ``slow`` fault is flagged as a model-vs-measured
anomaly — and tracing on/off stays bit-identical in the science.
"""

import time
from typing import List

import numpy as np
import pytest

from repro.core.checkpoint import RecoveryConfig
from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import convert_to_md, load_md, save_md
from repro.core.sharding import ShardConfig
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil
from repro.crystal.symmetry import point_group
from repro.crystal.ub import UBMatrix
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.mpi import run_world
from repro.mpi.stealing import run_stealing_campaign
from repro.util import trace as trace_mod
from repro.util import tracedag
from repro.util.faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    use_fault_plan,
)
from repro.util.schedule import ScheduleController

N_RUNS = 3
N_SHARDS = 2
POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.0)


@pytest.fixture(scope="module", autouse=True)
def _dispose_pool_after_module():
    from repro.jacc.workers import GLOBAL_POOL

    yield
    GLOBAL_POOL.dispose()


@pytest.fixture(scope="module")
def exp(tmp_path_factory):
    base = tmp_path_factory.mktemp("critsmoke")
    structure = benzil()
    instrument = make_corelli(n_pixels=24)
    ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0],
                                 [1.0, 0.0, 0.0])
    grid = HKLGrid.benzil_grid(bins=(7, 7, 1))
    pg = point_group("321")
    flux = make_flux(instrument)
    vanadium = make_vanadium(instrument)
    md_paths: List[str] = []
    for i, omega in enumerate((0.0, 40.0, 80.0)):
        run = synthesize_run(
            instrument=instrument, structure=structure, ub=ub,
            goniometer=Goniometer(omega).rotation, n_events=60,
            rng=np.random.default_rng(8300 + i), run_number=i,
        )
        ws = convert_to_md(run, instrument, run_index=i)
        path = str(base / f"run_{i}.md.h5")
        save_md(path, ws)
        md_paths.append(path)
    return {
        "md_paths": md_paths,
        "kw": dict(
            n_runs=N_RUNS, grid=grid, point_group=pg, flux=flux,
            det_directions=instrument.directions,
            solid_angles=vanadium.detector_weights,
        ),
    }


def _campaign(exp, *, size, schedule, tracer=None, plan=None):
    """One stealing world; returns (root result, wall seconds)."""

    def loader(i):
        return load_md(exp["md_paths"][i])

    def body(comm):
        return run_stealing_campaign(
            loader, comm=comm, recovery=RecoveryConfig(retry=POLICY),
            shards=ShardConfig(n_shards=N_SHARDS, workers=1),
            schedule=schedule, **exp["kw"]
        )

    def launch():
        if plan is not None:
            with use_fault_plan(plan):
                return run_world(size, body, barrier_timeout=60.0)
        return run_world(size, body, barrier_timeout=60.0)

    t_start = time.monotonic()
    if tracer is None:
        results = launch()
    else:
        with trace_mod.use_tracer(tracer):
            with tracer.span("campaign", kind="campaign"):
                results = launch()
    wall = time.monotonic() - t_start
    roots = [r for r in results if r is not None
             and r.cross_section is not None]
    assert len(roots) == 1
    return roots[0], wall


class TestCritSmoke:
    def test_two_rank_stealing_campaign_reconciles(self, exp, tmp_path):
        tracer = trace_mod.Tracer(
            label="crit-smoke",
            campaign_id=trace_mod.new_campaign_id("crit-smoke"),
        )
        res, wall = _campaign(
            exp, size=2,
            schedule=ScheduleController(seed=5, policy="all-steal"),
            tracer=tracer,
        )
        out = tmp_path / "traces"
        paths = tracer.write_jsonl_dir(str(out))
        assert len(paths) >= 3  # main + one per rank
        for p in paths:
            info = trace_mod.validate_file(p)
            assert info["schema"] == 3
            assert info["campaign_id"] == tracer.campaign_id

        dag = tracedag.merge_dir(str(out))
        report = dag.validate()
        assert report["ok"] and report["roots"] == ["campaign"]
        assert report["n_steal_links"] >= 1

        # the critical path reconciles with the measured wall-clock:
        # never longer, and the campaign dominated by the reduction
        crit_s = dag.critical_seconds()
        assert crit_s <= wall + 1e-6
        assert crit_s >= 0.9 * wall, (crit_s, wall)

        # the report renders every block
        text = dag.crit_report()
        assert "blocking chain" in text
        assert "per-rank attribution" in text

    def test_tracing_is_bit_identical_to_disabled(self, exp):
        schedule = ScheduleController(seed=9, policy="all-steal")
        baseline, _ = _campaign(exp, size=2, schedule=schedule)
        tracer = trace_mod.Tracer(label="bitident")
        traced, _ = _campaign(
            exp, size=2,
            schedule=ScheduleController(seed=9, policy="all-steal"),
            tracer=tracer,
        )
        assert np.array_equal(traced.binmd.signal, baseline.binmd.signal)
        assert np.array_equal(traced.mdnorm.signal,
                              baseline.mdnorm.signal)
        assert np.array_equal(traced.cross_section.signal,
                              baseline.cross_section.signal,
                              equal_nan=True)
        if baseline.binmd.error_sq is not None:
            assert np.array_equal(traced.binmd.error_sq,
                                  baseline.binmd.error_sq)


class TestAnomalyFlag:
    def test_injected_slow_fault_is_flagged(self, exp, tmp_path):
        """A ``slow`` fault on one shard-task site must surface as a
        model-vs-measured anomaly among its siblings."""
        tracer = trace_mod.Tracer(
            label="anomaly",
            campaign_id=trace_mod.new_campaign_id("anomaly"),
        )
        plan = FaultPlan(
            [FaultSpec(site="steal.task", kind="slow", probability=1.0,
                       max_hits=1, delay_s=0.35)],
            seed=13,
        )
        res, _ = _campaign(
            exp, size=2,
            schedule=ScheduleController(seed=13, policy="no-steal"),
            tracer=tracer, plan=plan,
        )
        assert plan.stats()["injected"] == 1
        out = tmp_path / "traces"
        tracer.write_jsonl_dir(str(out))
        dag = tracedag.merge_dir(str(out))
        dag.validate()
        flags = dag.anomalies()
        assert flags, "slow-faulted span not flagged"
        worst = max(flags, key=lambda f: f["deviation"])
        assert worst["name"].startswith("steal:")
        assert worst["dur"] >= 0.35
        assert worst["deviation"] > 1.5
