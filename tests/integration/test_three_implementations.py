"""The paper's artifact promise: all three implementations reproduce the
same cross-section from the same measurement."""

import numpy as np
import pytest

from repro.baseline.garnet import GarnetConfig, GarnetWorkflow
from repro.core.geom_cache import GeomCache
from repro.mpi import run_world
from repro.proxy.cpp_proxy import CppProxyConfig, CppProxyWorkflow
from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow


@pytest.fixture(scope="module")
def all_results(tiny_experiment):
    exp = tiny_experiment
    garnet = GarnetWorkflow(
        GarnetConfig(
            nexus_paths=exp.nexus_paths,
            instrument=exp.instrument,
            grid=exp.grid,
            point_group_symbol="321",
            flux=exp.flux,
            solid_angles=exp.vanadium.detector_weights,
        )
    ).run()
    cpp = CppProxyWorkflow(
        CppProxyConfig(
            md_paths=exp.md_paths,
            flux_path=exp.flux_path,
            vanadium_path=exp.vanadium_path,
            instrument=exp.instrument,
            grid=exp.grid,
            point_group=exp.point_group,
        )
    ).run()
    minivates = MiniVatesWorkflow(
        MiniVatesConfig(
            md_paths=exp.md_paths,
            flux_path=exp.flux_path,
            vanadium_path=exp.vanadium_path,
            instrument=exp.instrument,
            grid=exp.grid,
            point_group=exp.point_group,
        )
    ).run()
    return garnet, cpp, minivates


class TestAgreement:
    def test_binmd_identical(self, all_results):
        garnet, cpp, minivates = all_results
        assert np.allclose(garnet.binmd.signal, cpp.binmd.signal)
        assert np.allclose(garnet.binmd.signal, minivates.binmd.signal)

    def test_mdnorm_identical(self, all_results):
        garnet, cpp, minivates = all_results
        assert np.allclose(garnet.mdnorm.signal, cpp.mdnorm.signal, rtol=1e-9)
        assert np.allclose(garnet.mdnorm.signal, minivates.mdnorm.signal, rtol=1e-9)

    def test_cross_sections_identical_where_defined(self, all_results):
        garnet, cpp, minivates = all_results
        mask = ~np.isnan(garnet.cross_section.signal)
        assert mask.any()
        for other in (cpp, minivates):
            other_mask = ~np.isnan(other.cross_section.signal)
            assert np.array_equal(mask, other_mask)
            assert np.allclose(
                garnet.cross_section.signal[mask], other.cross_section.signal[mask],
                rtol=1e-8,
            )

    def test_physics_sanity(self, all_results):
        """Signal exists, normalization is positive where there is signal
        coverage, and the cross-section is non-negative."""
        garnet, _, _ = all_results
        assert garnet.binmd.total() > 0
        assert garnet.mdnorm.total() > 0
        finite = garnet.cross_section.signal[~np.isnan(garnet.cross_section.signal)]
        assert np.all(finite >= 0)


class TestGeometryCacheAcrossImplementations:
    def test_minivates_warm_cache_matches_cold(self, tiny_experiment, all_results):
        """Two MiniVATES passes over one shared cache: the warm pass
        hits and reproduces the canonical result bit for bit."""
        exp = tiny_experiment
        _, _, canonical = all_results
        cache = GeomCache()

        def one():
            return MiniVatesWorkflow(
                MiniVatesConfig(
                    md_paths=exp.md_paths,
                    flux_path=exp.flux_path,
                    vanadium_path=exp.vanadium_path,
                    instrument=exp.instrument,
                    grid=exp.grid,
                    point_group=exp.point_group,
                    cold_start=False,  # warm runs may use the cache
                    geom_cache=cache,
                )
            ).run()

        first = one()
        second = one()
        assert cache.stats.hits > 0
        assert second.extras["geom_cache"]["hits"] > first.extras["geom_cache"]["hits"]
        for res in (first, second):
            assert np.array_equal(res.binmd.signal, canonical.binmd.signal)
            assert np.array_equal(res.mdnorm.signal, canonical.mdnorm.signal)

    def test_cold_start_ignores_cache(self, tiny_experiment):
        """cold_start=True measures the from-scratch pipeline: the
        pre-pass D2H copy happens even with a populated cache supplied."""
        exp = tiny_experiment
        cache = GeomCache()
        cfg = MiniVatesConfig(
            md_paths=exp.md_paths[:1],
            flux_path=exp.flux_path,
            vanadium_path=exp.vanadium_path,
            instrument=exp.instrument,
            grid=exp.grid,
            point_group=exp.point_group,
            cold_start=True,
            geom_cache=cache,
        )
        MiniVatesWorkflow(cfg).run()
        res = MiniVatesWorkflow(cfg).run()
        assert len(cache) == 0  # nothing was stored
        assert res.extras["bytes_d2h"] > 0  # the pre-pass really ran


class TestMpiAgreement:
    def test_minivates_under_mpi(self, tiny_experiment, all_results):
        exp = tiny_experiment
        _, _, single = all_results

        def spmd(comm):
            res = MiniVatesWorkflow(
                MiniVatesConfig(
                    md_paths=exp.md_paths,
                    flux_path=exp.flux_path,
                    vanadium_path=exp.vanadium_path,
                    instrument=exp.instrument,
                    grid=exp.grid,
                    point_group=exp.point_group,
                    cold_start=False,  # JIT cache is shared across rank threads
                )
            ).run(comm=comm)
            return res.binmd.signal if res.is_root else None

        outs = run_world(3, spmd)
        assert np.allclose(outs[0], single.binmd.signal)

    def test_cpp_proxy_under_mpi(self, tiny_experiment, all_results):
        exp = tiny_experiment
        _, single, _ = all_results

        def spmd(comm):
            res = CppProxyWorkflow(
                CppProxyConfig(
                    md_paths=exp.md_paths,
                    flux_path=exp.flux_path,
                    vanadium_path=exp.vanadium_path,
                    instrument=exp.instrument,
                    grid=exp.grid,
                    point_group=exp.point_group,
                    n_threads=1,
                )
            ).run(comm=comm)
            return res.mdnorm.signal if res.is_root else None

        outs = run_world(2, spmd)
        assert np.allclose(outs[0], single.mdnorm.signal, rtol=1e-9)
