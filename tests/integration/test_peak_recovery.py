"""End-to-end physics validation: the reduction recovers the lattice.

The synthetic events were sampled from benzil's reciprocal lattice; a
correct reduction must therefore produce a cross-section whose strong
peaks sit on allowed (H, K, L) nodes.  This closes the full loop:
lattice -> events -> NeXus -> MDEvents -> BinMD/MDNorm -> peaks.
"""

import numpy as np
import pytest

from repro.core.cross_section import compute_cross_section
from repro.core.md_event_workspace import load_md
from repro.core.peaks import PeakList, find_peaks, match_to_reflections
from repro.crystal.reflections import generate_reflections


@pytest.fixture(scope="module")
def reduced(tiny_experiment):
    exp = tiny_experiment
    return compute_cross_section(
        load_run=lambda i: load_md(exp.md_paths[i]),
        n_runs=len(exp.md_paths),
        grid=exp.grid,
        point_group=exp.point_group,
        flux=exp.flux,
        det_directions=exp.instrument.directions,
        solid_angles=exp.vanadium.detector_weights,
        backend="vectorized",
    )


class TestFindPeaks:
    def test_finds_peaks_in_binmd(self, reduced):
        peaks = find_peaks(reduced.binmd)
        assert peaks.n_peaks > 0
        assert np.all(peaks.intensity > 0)
        # returned sorted by intensity, strongest first
        assert np.all(np.diff(peaks.intensity) <= 0)

    def test_empty_histogram(self, tiny_experiment):
        from repro.core.hist3 import Hist3

        peaks = find_peaks(Hist3(tiny_experiment.grid))
        assert peaks.n_peaks == 0

    def test_threshold_filters(self, reduced):
        loose = find_peaks(reduced.binmd, min_intensity=1e-9)
        tight = find_peaks(reduced.binmd,
                           min_intensity=float(reduced.binmd.signal.max()))
        assert loose.n_peaks >= tight.n_peaks
        assert tight.n_peaks >= 1  # the global maximum always qualifies

    def test_strongest_subset(self, reduced):
        peaks = find_peaks(reduced.binmd)
        if peaks.n_peaks >= 3:
            top = peaks.strongest(3)
            assert top.n_peaks == 3
            assert top.intensity[0] == peaks.intensity[0]

    def test_grid_coords_within_grid(self, reduced):
        peaks = find_peaks(reduced.binmd)
        grid = reduced.binmd.grid
        for axis in range(3):
            assert np.all(peaks.grid_coords[:, axis] >= grid.minimum[axis])
            assert np.all(peaks.grid_coords[:, axis] <= grid.maximum[axis])

    def test_hkl_mapping_uses_basis(self, reduced):
        """grid coords (c0, c1, 0) on the benzil basis map to
        (c0+c1, c0-c1, 0) in HKL."""
        peaks = find_peaks(reduced.binmd)
        if peaks.n_peaks:
            c = peaks.grid_coords[0]
            hkl = peaks.hkl[0]
            assert hkl[0] == pytest.approx(c[0] + c[1])
            assert hkl[1] == pytest.approx(c[0] - c[1])


class TestPhysicsRecovery:
    def test_strong_peaks_sit_on_lattice_nodes(self, tiny_experiment, reduced):
        """The majority of the strongest BinMD peaks must be within half
        a bin of an allowed benzil reflection — the generated physics
        survives the full pipeline."""
        exp = tiny_experiment
        refl = generate_reflections(exp.structure, q_max=8.0, q_min=0.3)
        # symmetrize the reflection list the same way the reduction does
        images = exp.point_group.apply(refl.hkl.astype(float))
        all_nodes = images.reshape(-1, 3)

        peaks = find_peaks(reduced.binmd).strongest(10)
        assert peaks.n_peaks >= 3
        # tolerance: one bin width in the H/K directions (grid coords ->
        # HKL stretches by the basis; use a generous half-r.l.u.)
        matched = match_to_reflections(peaks, all_nodes, tolerance=0.5)
        assert matched.mean() >= 0.7, (
            f"only {matched.sum()}/{peaks.n_peaks} strong peaks match "
            f"lattice nodes"
        )

    def test_match_tolerance_monotone(self, tiny_experiment, reduced):
        exp = tiny_experiment
        refl = generate_reflections(exp.structure, q_max=8.0)
        peaks = find_peaks(reduced.binmd).strongest(10)
        tight = match_to_reflections(peaks, refl.hkl, tolerance=0.05)
        loose = match_to_reflections(peaks, refl.hkl, tolerance=1.0)
        assert loose.sum() >= tight.sum()

    def test_empty_inputs(self):
        empty = PeakList(
            grid_coords=np.empty((0, 3)), hkl=np.empty((0, 3)),
            intensity=np.empty(0),
        )
        assert match_to_reflections(empty, np.empty((0, 3)), tolerance=0.1).shape == (0,)
