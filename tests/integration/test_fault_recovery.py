"""Fault-tolerant reduction, end to end (PR 3 acceptance suite).

Covers the failure model's contract on the real pipeline:

* the recovering loop with no faults matches the historical loop;
* every (fault site x fault kind) pair is survivable: transient faults
  are retried and the result is bit-identical to the fault-free
  recovering run;
* injection is deterministic: the same plan seed reproduces the same
  schedule, retry counters and quarantine set (seed sweep);
* runs that exhaust retries are quarantined and the campaign completes
  degraded;
* kill-and-resume is bit-identical for the core workflow and both
  proxies, sequentially and under ``run_world(4)`` with a dead rank
  whose backlog is redistributed;
* the streaming reduction retries / quarantines per-run, dropping a
  dead run's late batches.
"""

import os
from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointManager, RecoveryConfig
from repro.core.cross_section import compute_cross_section
from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import convert_to_md, load_md, save_md
from repro.core.streaming import EventStream, StreamingReduction
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil
from repro.crystal.symmetry import point_group
from repro.crystal.ub import UBMatrix
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.mpi import run_world
from repro.nexus.corrections import write_flux_file, write_vanadium_file
from repro.proxy.cpp_proxy import CppProxyConfig, CppProxyWorkflow
from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow
from repro.util import trace as trace_mod
from repro.util.faults import (
    FaultPlan,
    FaultSpec,
    RankCrashError,
    RetryExhaustedError,
    RetryPolicy,
    use_fault_plan,
)

N_RUNS = 4
POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.0)


@dataclass
class MicroExperiment:
    """A 4-run experiment small enough for dozens of full campaigns."""

    instrument: object
    grid: HKLGrid
    point_group: object
    flux: object
    vanadium: object
    runs: List[object]
    md_paths: List[str]
    flux_path: str
    vanadium_path: str

    def loader(self, i):
        return load_md(self.md_paths[i])

    def kw(self):
        return dict(
            n_runs=len(self.md_paths),
            grid=self.grid,
            point_group=self.point_group,
            flux=self.flux,
            det_directions=self.instrument.directions,
            solid_angles=self.vanadium.detector_weights,
        )


@pytest.fixture(scope="module")
def exp(tmp_path_factory) -> MicroExperiment:
    base = tmp_path_factory.mktemp("fault_recovery")
    structure = benzil()
    instrument = make_corelli(n_pixels=120)
    ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0],
                                 [1.0, 0.0, 0.0])
    grid = HKLGrid.benzil_grid(bins=(13, 13, 1))
    pg = point_group("321")
    flux = make_flux(instrument)
    vanadium = make_vanadium(instrument)
    runs, md_paths = [], []
    for i, omega in enumerate((0.0, 30.0, 60.0, 90.0)):
        run = synthesize_run(
            instrument=instrument, structure=structure, ub=ub,
            goniometer=Goniometer(omega).rotation, n_events=300,
            rng=np.random.default_rng(7100 + i), run_number=i,
        )
        ws = convert_to_md(run, instrument, run_index=i)
        path = str(base / f"run_{i}.md.h5")
        save_md(path, ws)
        runs.append(run)
        md_paths.append(path)
    flux_path = str(base / "flux.h5")
    vanadium_path = str(base / "vanadium.h5")
    write_flux_file(flux_path, flux)
    write_vanadium_file(vanadium_path, vanadium)
    return MicroExperiment(
        instrument=instrument, grid=grid, point_group=pg, flux=flux,
        vanadium=vanadium, runs=runs, md_paths=md_paths,
        flux_path=flux_path, vanadium_path=vanadium_path,
    )


@pytest.fixture(scope="module")
def golden(exp):
    """The fault-free *recovering* run every faulty run must match."""
    return compute_cross_section(
        exp.loader, recovery=RecoveryConfig(retry=POLICY), **exp.kw()
    )


class TestRecoveryEquivalence:
    def test_recovering_loop_matches_plain_loop(self, exp, golden):
        plain = compute_cross_section(exp.loader, **exp.kw())
        assert np.allclose(plain.cross_section.signal,
                           golden.cross_section.signal,
                           equal_nan=True, rtol=1e-12)
        assert not golden.degraded
        assert {d["status"] for d in golden.dispositions.values()} == {"done"}

    def test_checkpointed_run_bit_identical_to_uncheckpointed(
        self, exp, golden, tmp_path
    ):
        """The ascending-run-order delta sum reproduces the in-memory
        accumulation exactly."""
        ck = CheckpointManager(tmp_path / "ck", config_digest="eq")
        res = compute_cross_section(
            exp.loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
            **exp.kw(),
        )
        assert np.array_equal(res.binmd.signal, golden.binmd.signal)
        assert np.array_equal(res.mdnorm.signal, golden.mdnorm.signal)
        assert np.array_equal(res.cross_section.signal,
                              golden.cross_section.signal, equal_nan=True)
        assert ck.completed_runs() == list(range(N_RUNS))
        assert ck.campaign_complete


SITES = ["nexus.read_events", "h5lite.read", "run",
         "kernel.mdnorm", "kernel.binmd"]
KINDS = ["io_error", "corrupt", "truncate", "kernel_error"]


class TestFaultMatrix:
    """Every site x kind pair: transient faults recover bit-identically."""

    @pytest.mark.parametrize("site", SITES)
    @pytest.mark.parametrize("kind", KINDS)
    def test_transient_fault_recovered(self, exp, golden, site, kind):
        plan = FaultPlan(
            [FaultSpec(site=site, kind=kind, probability=1.0, max_hits=2)],
            seed=17,
        )
        with use_fault_plan(plan):
            res = compute_cross_section(
                exp.loader, recovery=RecoveryConfig(retry=POLICY), **exp.kw()
            )
        assert plan.stats()["injected"] == 2, (site, kind)
        assert not res.degraded
        assert np.array_equal(res.cross_section.signal,
                              golden.cross_section.signal, equal_nan=True)

    def test_slow_fault_only_delays(self, exp, golden):
        plan = FaultPlan(
            [FaultSpec(site="run", kind="slow", probability=1.0,
                       delay_s=0.001, max_hits=2)],
            seed=17,
        )
        with use_fault_plan(plan):
            res = compute_cross_section(
                exp.loader, recovery=RecoveryConfig(retry=POLICY), **exp.kw()
            )
        assert plan.stats()["injected"] == 2
        assert not res.degraded
        assert np.array_equal(res.cross_section.signal,
                              golden.cross_section.signal, equal_nan=True)


class TestDeterminism:
    """Same plan seed => same schedule, same counters, same result."""

    def _campaign(self, exp, seed):
        plan = FaultPlan(
            [FaultSpec(site="run", kind="io_error", probability=0.5),
             FaultSpec(site="kernel.*", kind="kernel_error",
                       probability=0.25)],
            seed=seed,
        )
        tracer = trace_mod.Tracer()
        with trace_mod.use_tracer(tracer), use_fault_plan(plan):
            res = compute_cross_section(
                exp.loader, recovery=RecoveryConfig(retry=POLICY), **exp.kw()
            )
        recovery_counters = trace_mod.recovery_summary(
            tracer.records, counters=tracer.counters
        )
        recovery_counters.pop("recover.backoff.seconds", None)  # wall time
        return (plan.schedule_signature(), recovery_counters,
                res.quarantined_runs, res.cross_section.signal)

    @pytest.mark.parametrize("seed", range(50))
    def test_seed_reproduces_campaign(self, exp, seed):
        sig_a, counters_a, quarantined_a, signal_a = self._campaign(exp, seed)
        sig_b, counters_b, quarantined_b, signal_b = self._campaign(exp, seed)
        assert sig_a == sig_b
        assert counters_a == counters_b
        assert quarantined_a == quarantined_b
        assert np.array_equal(signal_a, signal_b, equal_nan=True)


class TestQuarantine:
    def test_persistent_fault_quarantines_run(self, exp, golden):
        plan = FaultPlan(
            [FaultSpec(site="kernel.mdnorm", kind="kernel_error",
                       probability=1.0, runs=(1,))],
            seed=5,
        )
        tracer = trace_mod.Tracer()
        with trace_mod.use_tracer(tracer), use_fault_plan(plan):
            res = compute_cross_section(
                exp.loader, recovery=RecoveryConfig(retry=POLICY), **exp.kw()
            )
        assert res.degraded
        assert res.quarantined_runs == (1,)
        assert res.dispositions[1]["status"] == "quarantined"
        assert res.dispositions[1]["attempts"] == POLICY.max_attempts
        assert {i for i, d in res.dispositions.items()
                if d["status"] == "done"} == {0, 2, 3}
        # degraded output: strictly less accumulated than the full run
        assert res.mdnorm.total() < golden.mdnorm.total()
        assert tracer.counters["quarantine.runs"] == 1
        assert tracer.counters["retry.exhausted"] == 1

    def test_quarantine_disabled_raises(self, exp):
        plan = FaultPlan(
            [FaultSpec(site="run", kind="io_error", probability=1.0,
                       runs=(0,))],
            seed=5,
        )
        with use_fault_plan(plan):
            with pytest.raises(RetryExhaustedError):
                compute_cross_section(
                    exp.loader,
                    recovery=RecoveryConfig(retry=POLICY, quarantine=False),
                    **exp.kw(),
                )

    def test_quarantine_durable_across_resume(self, exp, tmp_path):
        ckdir = tmp_path / "ck"
        plan = FaultPlan(
            [FaultSpec(site="run", kind="io_error", probability=1.0,
                       runs=(2,))],
            seed=5,
        )
        ck = CheckpointManager(ckdir, config_digest="q")
        with use_fault_plan(plan):
            res = compute_cross_section(
                exp.loader,
                recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
                **exp.kw(),
            )
        assert res.quarantined_runs == (2,)
        # resume with no faults: the quarantine verdict sticks (the
        # manifest is the durable disposition record)
        ck2 = CheckpointManager(ckdir, config_digest="q")
        res2 = compute_cross_section(
            exp.loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck2,
                                    resume=True),
            **exp.kw(),
        )
        assert res2.quarantined_runs == (2,)
        assert np.array_equal(res2.cross_section.signal,
                              res.cross_section.signal, equal_nan=True)


class TestKillAndResumeCore:
    def _crash_plan(self, run, seed=7):
        return FaultPlan(
            [FaultSpec(site="run", kind="rank_crash", probability=1.0,
                       runs=(run,), max_hits=1)],
            seed=seed,
        )

    def test_kill_and_resume_bit_identical(self, exp, tmp_path):
        ckdir = tmp_path / "ck"
        ck = CheckpointManager(ckdir, config_digest="core")
        with use_fault_plan(self._crash_plan(2)):
            with pytest.raises(RankCrashError):
                compute_cross_section(
                    exp.loader,
                    recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
                    **exp.kw(),
                )
        assert ck.completed_runs() == [0, 1]
        assert not ck.campaign_complete

        ck2 = CheckpointManager(ckdir, config_digest="core")
        res = compute_cross_section(
            exp.loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck2,
                                    resume=True),
            **exp.kw(),
        )
        gold_ck = CheckpointManager(tmp_path / "gold", config_digest="core")
        gold = compute_cross_section(
            exp.loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=gold_ck),
            **exp.kw(),
        )
        assert np.array_equal(res.binmd.signal, gold.binmd.signal)
        assert np.array_equal(res.binmd.error_sq, gold.binmd.error_sq)
        assert np.array_equal(res.mdnorm.signal, gold.mdnorm.signal)
        assert np.array_equal(res.cross_section.signal,
                              gold.cross_section.signal, equal_nan=True)
        assert res.extras["recovery"]["resumed"] == [0, 1]
        assert ck2.campaign_complete

    def test_resume_of_complete_campaign_replays_everything(
        self, exp, tmp_path
    ):
        ckdir = tmp_path / "ck"
        ck = CheckpointManager(ckdir, config_digest="core")
        gold = compute_cross_section(
            exp.loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
            **exp.kw(),
        )
        ck2 = CheckpointManager(ckdir, config_digest="core")
        res = compute_cross_section(
            exp.loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck2,
                                    resume=True),
            **exp.kw(),
        )
        assert res.extras["recovery"]["resumed"] == list(range(N_RUNS))
        assert np.array_equal(res.cross_section.signal,
                              gold.cross_section.signal, equal_nan=True)

    def test_corrupt_checkpoint_delta_recomputed_on_resume(
        self, exp, tmp_path
    ):
        ckdir = tmp_path / "ck"
        ck = CheckpointManager(ckdir, config_digest="core")
        gold = compute_cross_section(
            exp.loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
            **exp.kw(),
        )
        # flip one byte of run 1's persisted delta
        victim = os.path.join(ck.directory, ck.run_record(1)["file"])
        raw = bytearray(open(victim, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(victim, "wb").write(bytes(raw))

        ck2 = CheckpointManager(ckdir, config_digest="core")
        tracer = trace_mod.Tracer()
        with trace_mod.use_tracer(tracer):
            res = compute_cross_section(
                exp.loader,
                recovery=RecoveryConfig(retry=POLICY, checkpoint=ck2,
                                        resume=True),
                **exp.kw(),
            )
        assert tracer.counters["checkpoint.corrupt"] == 1
        assert res.extras["recovery"]["resumed"] == [0, 2, 3]
        assert res.dispositions[1]["status"] == "done"
        assert np.array_equal(res.cross_section.signal,
                              gold.cross_section.signal, equal_nan=True)


class TestKillAndResumeProxies:
    """The same kill-and-resume contract through both proxy drivers."""

    def _cpp_cfg(self, exp, recovery):
        return CppProxyConfig(
            md_paths=exp.md_paths, flux_path=exp.flux_path,
            vanadium_path=exp.vanadium_path, instrument=exp.instrument,
            grid=exp.grid, point_group=exp.point_group, recovery=recovery,
        )

    def _mv_cfg(self, exp, recovery):
        return MiniVatesConfig(
            md_paths=exp.md_paths, flux_path=exp.flux_path,
            vanadium_path=exp.vanadium_path, instrument=exp.instrument,
            grid=exp.grid, point_group=exp.point_group,
            cold_start=False, recovery=recovery,
        )

    @pytest.mark.parametrize("impl", ["cpp_proxy", "minivates"])
    def test_proxy_kill_and_resume(self, exp, tmp_path, impl):
        make_cfg = self._cpp_cfg if impl == "cpp_proxy" else self._mv_cfg
        make_wf = (CppProxyWorkflow if impl == "cpp_proxy"
                   else MiniVatesWorkflow)
        plan = FaultPlan(
            [FaultSpec(site="run", kind="rank_crash", probability=1.0,
                       runs=(2,), max_hits=1)],
            seed=9,
        )
        ckdir = tmp_path / impl
        ck = CheckpointManager(ckdir, config_digest=impl)
        with use_fault_plan(plan):
            with pytest.raises(RankCrashError):
                make_wf(make_cfg(
                    exp, RecoveryConfig(retry=POLICY, checkpoint=ck)
                )).run()
        assert ck.completed_runs() == [0, 1]

        ck2 = CheckpointManager(ckdir, config_digest=impl)
        res = make_wf(make_cfg(
            exp, RecoveryConfig(retry=POLICY, checkpoint=ck2, resume=True)
        )).run()
        gold_ck = CheckpointManager(tmp_path / f"{impl}-gold",
                                    config_digest=impl)
        gold = make_wf(make_cfg(
            exp, RecoveryConfig(retry=POLICY, checkpoint=gold_ck)
        )).run()
        assert np.array_equal(res.cross_section.signal,
                              gold.cross_section.signal, equal_nan=True)
        assert res.extras["recovery"]["resumed"] == [0, 1]
        assert ck2.campaign_complete


class TestMPIFaultRecovery:
    """run_world(4): a dead rank's backlog is redistributed and the
    checkpointed result stays bit-identical to the sequential one."""

    def _sequential_golden(self, exp, tmp_path):
        ck = CheckpointManager(tmp_path / "gold", config_digest="mpi")
        return compute_cross_section(
            exp.loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
            **exp.kw(),
        )

    def test_world4_no_faults_matches_sequential(self, exp, tmp_path):
        gold = self._sequential_golden(exp, tmp_path)
        ck = CheckpointManager(tmp_path / "ck", config_digest="mpi")

        def body(comm):
            return compute_cross_section(
                exp.loader, comm=comm,
                recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
                **exp.kw(),
            )

        results = run_world(4, body, barrier_timeout=60.0)
        roots = [r for r in results if r.cross_section is not None]
        assert len(roots) == 1
        assert np.array_equal(roots[0].cross_section.signal,
                              gold.cross_section.signal, equal_nan=True)

    def test_world4_rank_crash_redistributed_bit_identical(
        self, exp, tmp_path
    ):
        gold = self._sequential_golden(exp, tmp_path)
        ck = CheckpointManager(tmp_path / "ck", config_digest="mpi")
        plan = FaultPlan(
            [FaultSpec(site="run", kind="rank_crash", probability=1.0,
                       ranks=(2,), max_hits=1)],
            seed=11,
        )

        def body(comm):
            return compute_cross_section(
                exp.loader, comm=comm,
                recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
                **exp.kw(),
            )

        with use_fault_plan(plan):
            results = run_world(4, body, barrier_timeout=60.0)

        assert plan.stats()["injected"] == 1
        roots = [r for r in results if r.cross_section is not None]
        assert len(roots) == 1
        res = roots[0]
        assert res.extras["recovery"]["failed_ranks"] == [2]
        # rank 2's run was adopted by a survivor
        assert res.dispositions[2]["status"] == "done"
        assert res.dispositions[2]["rank"] != 2
        assert sorted(res.dispositions) == list(range(N_RUNS))
        assert np.array_equal(res.binmd.signal, gold.binmd.signal)
        assert np.array_equal(res.mdnorm.signal, gold.mdnorm.signal)
        assert np.array_equal(res.cross_section.signal,
                              gold.cross_section.signal, equal_nan=True)


class TestChunkFaults:
    """Per-chunk fault sites on the out-of-core read path (ISSUE 6).

    Chunked (format v2) run files are read chunk-by-chunk through the
    tile manager, so the fault surface moves from "the file" to "one
    chunk": ``h5lite.read_chunk`` faults must be retryable, a genuinely
    bad chunk must raise ``CorruptFileError`` without poisoning its
    siblings, retries must invalidate only the affected run's
    geom-cache entries, and kill-and-resume must stay bit-identical
    when every byte of event data flows through bounded windows.
    """

    BUDGET = 2 * 64 * 8 * 8  # two 64-event chunks of decoded cache

    @pytest.fixture(scope="class")
    def chunked(self, exp, tmp_path_factory):
        base = tmp_path_factory.mktemp("chunked_runs")
        paths = []
        for i, src in enumerate(exp.md_paths):
            ws = load_md(src)
            path = str(base / f"run_{i}.md.h5")
            save_md(path, ws, chunk_events=64, codec="zlib")
            paths.append(path)
        return paths

    def _loader(self, paths):
        return lambda i: load_md(paths[i], memory_budget=self.BUDGET)

    def test_out_of_core_matches_in_memory_golden(self, exp, golden, chunked):
        res = compute_cross_section(
            self._loader(chunked), recovery=RecoveryConfig(retry=POLICY),
            **exp.kw(),
        )
        assert np.array_equal(res.cross_section.signal,
                              golden.cross_section.signal, equal_nan=True)
        assert np.array_equal(res.binmd.signal, golden.binmd.signal)

    @pytest.mark.parametrize("kind", ["io_error", "corrupt", "truncate"])
    def test_transient_chunk_fault_recovered(self, exp, golden, chunked, kind):
        plan = FaultPlan(
            [FaultSpec(site="h5lite.read_chunk", kind=kind,
                       probability=1.0, max_hits=2)],
            seed=31,
        )
        with use_fault_plan(plan):
            res = compute_cross_section(
                self._loader(chunked), recovery=RecoveryConfig(retry=POLICY),
                **exp.kw(),
            )
        assert plan.stats()["injected"] == 2, kind
        assert not res.degraded
        assert np.array_equal(res.cross_section.signal,
                              golden.cross_section.signal, equal_nan=True)

    def test_on_disk_chunk_corruption_is_isolated(self, chunked, tmp_path):
        """Flipping bytes in one stored chunk fails exactly that chunk."""
        import shutil

        from repro.nexus.h5lite import CorruptFileError, File
        from repro.nexus.tiles import EVENT_TABLE_PATH

        victim = str(tmp_path / "corrupt.md.h5")
        shutil.copy(chunked[1], victim)
        with File(victim, "r") as f:
            ds = f.require_dataset(EVENT_TABLE_PATH)
            offset, stored, _crc, _rows = ds._chunk_index[2]
            n_chunks = ds.n_chunks
        with open(victim, "r+b") as fh:
            fh.seek(offset + stored // 2)
            fh.write(bytes([fh.read(1)[0] ^ 0xFF]))

        with File(victim, "r") as f:
            ds = f.require_dataset(EVENT_TABLE_PATH)
            with pytest.raises(CorruptFileError):
                ds.read_chunk(2)
            # every sibling chunk still decodes and CRC-verifies
            for ci in range(n_chunks):
                if ci != 2:
                    ds.read_chunk(ci)

    def test_persistent_chunk_corruption_quarantines_run(
        self, exp, chunked, tmp_path
    ):
        import shutil

        from repro.nexus.h5lite import File
        from repro.nexus.tiles import EVENT_TABLE_PATH

        paths = list(chunked)
        victim = str(tmp_path / "run_1_corrupt.md.h5")
        shutil.copy(chunked[1], victim)
        with File(victim, "r") as f:
            offset, stored, _crc, _rows = (
                f.require_dataset(EVENT_TABLE_PATH)._chunk_index[0])
        with open(victim, "r+b") as fh:
            fh.seek(offset + stored // 2)
            fh.write(bytes([fh.read(1)[0] ^ 0xFF]))
        paths[1] = victim

        res = compute_cross_section(
            self._loader(paths), recovery=RecoveryConfig(retry=POLICY),
            **exp.kw(),
        )
        assert res.degraded
        assert res.quarantined_runs == (1,)
        assert res.dispositions[1]["attempts"] == POLICY.max_attempts
        assert {i for i, d in res.dispositions.items()
                if d["status"] == "done"} == {0, 2, 3}

    def test_chunk_retry_invalidates_only_affected_run(
        self, exp, golden, chunked
    ):
        """The recovering loop's retry hook scopes cache invalidation to
        the faulted run: the other runs' geometry entries survive."""
        from repro.core.geom_cache import GeomCache

        cache = GeomCache()
        # warm every run's geometry, then fault run 0's first chunk reads
        compute_cross_section(
            self._loader(chunked), recovery=RecoveryConfig(retry=POLICY),
            cache=cache, **exp.kw(),
        )
        warm_entries = len(cache)
        assert warm_entries > 0
        plan = FaultPlan(
            [FaultSpec(site="h5lite.read_chunk", kind="io_error",
                       probability=1.0, max_hits=2)],
            seed=41,
        )
        with use_fault_plan(plan):
            res = compute_cross_section(
                self._loader(chunked), recovery=RecoveryConfig(retry=POLICY),
                cache=cache, **exp.kw(),
            )
        assert not res.degraded
        assert cache.stats.invalidations >= 1
        # runs 1..3 were never retried: their tagged entries are intact
        # (invalidate() returns how many entries carried the tag)
        for run in (1, 2, 3):
            assert cache.invalidate(f"run:{run}") >= 1, run
        assert np.array_equal(res.cross_section.signal,
                              golden.cross_section.signal, equal_nan=True)

    def test_kill_and_resume_through_tile_manager(self, exp, chunked,
                                                  tmp_path):
        """rank_crash mid-campaign + resume, all I/O through tiles."""
        loader = self._loader(chunked)
        ckdir = tmp_path / "ck"
        ck = CheckpointManager(ckdir, config_digest="ooc")
        plan = FaultPlan(
            [FaultSpec(site="run", kind="rank_crash", probability=1.0,
                       runs=(2,), max_hits=1)],
            seed=13,
        )
        with use_fault_plan(plan):
            with pytest.raises(RankCrashError):
                compute_cross_section(
                    loader,
                    recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
                    **exp.kw(),
                )
        assert ck.completed_runs() == [0, 1]

        ck2 = CheckpointManager(ckdir, config_digest="ooc")
        res = compute_cross_section(
            loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck2,
                                    resume=True),
            **exp.kw(),
        )
        gold_ck = CheckpointManager(tmp_path / "gold", config_digest="ooc")
        gold = compute_cross_section(
            loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=gold_ck),
            **exp.kw(),
        )
        assert res.extras["recovery"]["resumed"] == [0, 1]
        assert np.array_equal(res.binmd.signal, gold.binmd.signal)
        assert np.array_equal(res.binmd.error_sq, gold.binmd.error_sq)
        assert np.array_equal(res.mdnorm.signal, gold.mdnorm.signal)
        assert np.array_equal(res.cross_section.signal,
                              gold.cross_section.signal, equal_nan=True)


class TestStreamingRecovery:
    def _stream(self, exp, recovery, runs=None, plan=None):
        sr = StreamingReduction(
            grid=exp.grid, point_group=exp.point_group, flux=exp.flux,
            instrument=exp.instrument,
            solid_angles=exp.vanadium.detector_weights,
            recovery=recovery,
        )
        ctx = use_fault_plan(plan) if plan is not None else None
        try:
            if ctx is not None:
                ctx.__enter__()
            for run in (runs if runs is not None else exp.runs):
                sr.open_run(run)
                for batch in EventStream(run, batch_size=128):
                    sr.consume(batch)
                sr.close_run(run.run_number)
        finally:
            if ctx is not None:
                ctx.__exit__(None, None, None)
        return sr

    def test_transient_stream_faults_recovered(self, exp):
        clean = self._stream(exp, RecoveryConfig(retry=POLICY))
        plan = FaultPlan(
            [FaultSpec(site="stream.*", kind="io_error", probability=1.0,
                       max_hits=2)],
            seed=23,
        )
        faulty = self._stream(exp, RecoveryConfig(retry=POLICY), plan=plan)
        assert plan.stats()["injected"] == 2
        assert not faulty.quarantined
        assert np.array_equal(faulty.snapshot().signal,
                              clean.snapshot().signal, equal_nan=True)

    def test_consume_quarantine_evicts_run_and_drops_late_batches(self, exp):
        plan = FaultPlan(
            [FaultSpec(site="stream.consume", kind="io_error",
                       probability=1.0, runs=(1,))],
            seed=23,
        )
        tracer = trace_mod.Tracer()
        with trace_mod.use_tracer(tracer):
            faulty = self._stream(exp, RecoveryConfig(retry=POLICY),
                                  plan=plan)
        assert list(faulty.quarantined) == [1]
        assert tracer.counters["stream.dropped"] > 0
        # the live histograms degrade to the surviving runs
        survivors = self._stream(
            exp, RecoveryConfig(retry=POLICY),
            runs=[r for r in exp.runs if r.run_number != 1],
        )
        assert np.allclose(faulty.snapshot().signal,
                           survivors.snapshot().signal, equal_nan=True)

    def test_open_run_quarantine_never_contributes(self, exp):
        plan = FaultPlan(
            [FaultSpec(site="stream.open_run", kind="kernel_error",
                       probability=1.0, runs=(2,))],
            seed=23,
        )
        faulty = self._stream(exp, RecoveryConfig(retry=POLICY), plan=plan)
        assert list(faulty.quarantined) == [2]
        survivors = self._stream(
            exp, RecoveryConfig(retry=POLICY),
            runs=[r for r in exp.runs if r.run_number != 2],
        )
        assert np.array_equal(faulty.mdnorm_hist.signal,
                              survivors.mdnorm_hist.signal)


class TestKillAndResumeStealing:
    """Kill-and-resume through the elastic executor: the campaign dies
    mid-steal, then resumes with a *different* worker count and steal
    seed, and must still be bit-identical to an uninterrupted
    checkpointed reference (ISSUE 7 satellite)."""

    def _steal(self, exp, *, size, schedule, recovery):
        from repro.core.sharding import ShardConfig
        from repro.mpi.stealing import run_stealing_campaign

        def body(comm):
            return run_stealing_campaign(
                exp.loader, comm=comm, recovery=recovery,
                shards=ShardConfig(n_shards=2, workers=1),
                schedule=schedule, **exp.kw())

        if size == 1:
            from repro.mpi import SequentialComm
            return body(SequentialComm())
        results = run_world(size, body, barrier_timeout=60.0)
        roots = [r for r in results
                 if r is not None and r.cross_section is not None]
        assert len(roots) == 1
        return roots[0]

    def test_kill_and_resume_different_world_and_seed(self, exp, tmp_path):
        from repro.util.schedule import ScheduleController

        ckdir = tmp_path / "ck"
        ck = CheckpointManager(ckdir, config_digest="steal")
        plan = FaultPlan(
            [FaultSpec(site="steal.task", kind="rank_crash",
                       probability=1.0, runs=(2,), max_hits=1)],
            seed=29,
        )
        # leg 1: sequential campaign, seed 29, dies on run 2's first task
        with use_fault_plan(plan):
            with pytest.raises(RankCrashError):
                self._steal(
                    exp, size=1,
                    schedule=ScheduleController(seed=29, policy="no-steal"),
                    recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
                )
        assert plan.stats()["injected"] == 1
        assert ck.completed_runs() == [0, 1]
        assert not ck.campaign_complete

        # leg 2: resume with 2 workers and a different steal seed
        ck2 = CheckpointManager(ckdir, config_digest="steal")
        res = self._steal(
            exp, size=2,
            schedule=ScheduleController(seed=101, policy="random"),
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck2,
                                    resume=True),
        )
        gold_ck = CheckpointManager(tmp_path / "gold", config_digest="steal")
        gold = compute_cross_section(
            exp.loader,
            recovery=RecoveryConfig(retry=POLICY, checkpoint=gold_ck),
            **exp.kw(),
        )
        assert res.extras["recovery"]["resumed"] == [0, 1]
        assert ck2.campaign_complete
        assert np.array_equal(res.binmd.signal, gold.binmd.signal)
        assert np.array_equal(res.binmd.error_sq, gold.binmd.error_sq)
        assert np.array_equal(res.mdnorm.signal, gold.mdnorm.signal)
        assert np.array_equal(res.cross_section.signal,
                              gold.cross_section.signal, equal_nan=True)

    def test_resumed_stealing_requeues_only_missing_runs(self, exp,
                                                         tmp_path):
        """The in-flight (crashed) run and the never-started run are the
        only tasks the resumed campaign executes."""
        from repro.util.schedule import ScheduleController

        ckdir = tmp_path / "ck"
        ck = CheckpointManager(ckdir, config_digest="steal-q")
        plan = FaultPlan(
            [FaultSpec(site="steal.task", kind="rank_crash",
                       probability=1.0, runs=(2,), max_hits=1)],
            seed=31,
        )
        with use_fault_plan(plan):
            with pytest.raises(RankCrashError):
                self._steal(
                    exp, size=1,
                    schedule=ScheduleController(seed=31, policy="no-steal"),
                    recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
                )

        ck2 = CheckpointManager(ckdir, config_digest="steal-q")
        res = self._steal(
            exp, size=3,
            schedule=ScheduleController(seed=77, policy="all-steal"),
            recovery=RecoveryConfig(retry=POLICY, checkpoint=ck2,
                                    resume=True),
        )
        # only runs 2 and 3 re-executed: 2 runs x 2 stages x 2 shards
        assert res.extras["stealing"]["tasks"] == 8
        assert res.extras["recovery"]["resumed"] == [0, 1]
        assert ck2.campaign_complete
