"""Shard-invariance property suite (ISSUE 5 satellite b).

The contract under test: intra-run sharding is an *execution* detail,
never a *numerics* detail.  For the full Benzil-shaped pipeline the
cross-section (and both of its factors) must be **bit-identical** —
``np.array_equal(..., equal_nan=True)``, not allclose — across:

* shard counts 1, 2, 3, 7 (including shards > items axes);
* worker counts (in-process degenerate pool vs real process pool);
* count-balanced vs activity-balanced detector cuts;
* streaming batch sizes, with sharded ``open_run`` normalization;
* kill-one-shard + retry and checkpoint/resume, riding the PR 3
  fault-plan machinery at the ``shard.mdnorm`` / ``shard.binmd`` sites.

The recovering loop folds per-run scratch deltas (different float
association than the fail-fast loop — a pre-existing, documented
property), so recovery cases compare against a *recovery-without-
shards* golden, which they must match bit for bit.
"""

import numpy as np
import pytest

from repro.core.binmd import bin_events
from repro.core.checkpoint import CheckpointManager, RecoveryConfig
from repro.core.cross_section import compute_cross_section
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import convert_to_md
from repro.core.mdnorm import mdnorm
from repro.core.sharding import ShardConfig, ShardExecutionError, sharded_binmd, sharded_mdnorm
from repro.core.streaming import EventStream, StreamingReduction
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil
from repro.crystal.symmetry import point_group
from repro.crystal.ub import UBMatrix
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.jacc.backend import BackendError
from repro.jacc.workers import GLOBAL_POOL
from repro.util.faults import FaultPlan, FaultSpec, RetryPolicy, use_fault_plan

N_RUNS = 3
SHARD_COUNTS = (1, 2, 3, 7)
POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.0)


def same(a, b):
    """Bit-identity including the NaNs of empty (0/0) bins."""
    return np.array_equal(a, b, equal_nan=True)


class _Exp:
    def __init__(self):
        structure = benzil()
        self.instrument = make_corelli(n_pixels=150)
        self.ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0],
                                          [1.0, 0.0, 0.0])
        self.grid = HKLGrid.benzil_grid(bins=(15, 15, 1))
        self.pg = point_group("321")
        self.flux = make_flux(self.instrument)
        self.vanadium = make_vanadium(self.instrument)
        self.sa = self.vanadium.detector_weights
        self.runs, self.wss = [], []
        for i, omega in enumerate((0.0, 40.0, 80.0)):
            run = synthesize_run(
                instrument=self.instrument, structure=structure, ub=self.ub,
                goniometer=Goniometer(omega).rotation, n_events=400,
                rng=np.random.default_rng(6200 + i), run_number=i,
            )
            self.runs.append(run)
            self.wss.append(convert_to_md(run, self.instrument, run_index=i))

    def loader(self, i):
        return self.wss[i]

    def compute(self, loader=None, **kw):
        kw.setdefault("backend", "serial")
        return compute_cross_section(
            loader or self.loader, N_RUNS, self.grid, self.pg, self.flux,
            self.instrument.directions, self.sa, **kw,
        )


@pytest.fixture(scope="module")
def exp():
    e = _Exp()
    yield e
    GLOBAL_POOL.dispose()


@pytest.fixture(scope="module")
def golden(exp):
    """The unsharded serial cross-section every sharded run must match."""
    return exp.compute()


@pytest.fixture(scope="module")
def golden_recovering(exp):
    """The unsharded *recovering-loop* result (its scratch-delta fold
    re-associates floats relative to the fail-fast loop, so recovery
    cases get their own golden)."""
    return exp.compute(recovery=RecoveryConfig())


def assert_identical(res, ref):
    assert same(res.cross_section.signal, ref.cross_section.signal)
    assert np.array_equal(res.binmd.signal, ref.binmd.signal)
    assert np.array_equal(res.mdnorm.signal, ref.mdnorm.signal)
    if ref.binmd.error_sq is not None:
        assert np.array_equal(res.binmd.error_sq, ref.binmd.error_sq)


# ---------------------------------------------------------------------------
# the invariance matrix on the full pipeline
# ---------------------------------------------------------------------------

class TestShardInvariance:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_shard_count_invariance(self, exp, golden, n_shards):
        """shards=7 > the 3-op outer axis and still partitions the
        inner axes exactly — empty shards are no-ops."""
        res = exp.compute(shards=ShardConfig(n_shards=n_shards, workers=1))
        assert_identical(res, golden)

    @pytest.mark.parametrize("workers", (1, 2))
    def test_worker_count_invariance(self, exp, golden, workers):
        """In-process degenerate pool vs real process pool: same
        record/replay path, same bits."""
        res = exp.compute(shards=ShardConfig(n_shards=3, workers=workers))
        assert_identical(res, golden)

    @pytest.mark.parametrize("n_shards", (2, 3))
    def test_balanced_cut_invariance(self, exp, golden, n_shards):
        """Activity-balanced detector boundaries change only the load
        split, never the replayed deposit order."""
        res = exp.compute(
            shards=ShardConfig(n_shards=n_shards, workers=1, balanced=True))
        assert_identical(res, golden)

    def test_run_weighted_outer_level(self, exp, golden):
        """Weight-balanced run blocks (single rank: the whole block) do
        not perturb the result."""
        res = exp.compute(
            shards=ShardConfig(n_shards=2, workers=1),
            run_weights=[float(len(r.detector_ids)) for r in exp.runs],
        )
        assert_identical(res, golden)

    def test_multiprocess_backend_composes_with_shards(self, exp, golden):
        """Backend engine for the non-sharded kernels (max_intersections
        pre-pass) + shard fan-out for the deposits: still bit-identical."""
        res = exp.compute(backend="multiprocess",
                          shards=ShardConfig(n_shards=2, workers=1))
        assert_identical(res, golden)


# ---------------------------------------------------------------------------
# per-op equivalence (one run, direct against mdnorm / bin_events)
# ---------------------------------------------------------------------------

class TestShardedOps:
    def _transforms(self, exp, ws):
        traj = exp.grid.transforms_for(ws.ub_matrix, exp.pg,
                                       goniometer=ws.goniometer)
        ev = exp.grid.transforms_for(ws.ub_matrix, exp.pg)
        return traj, ev

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_mdnorm_bit_identical(self, exp, n_shards):
        ws = exp.wss[1]
        traj, _ = self._transforms(exp, ws)
        ref = Hist3(exp.grid)
        mdnorm(ref, traj, exp.instrument.directions, exp.sa, exp.flux,
               ws.momentum_band, charge=ws.proton_charge, backend="serial")
        got = Hist3(exp.grid)
        sharded_mdnorm(
            got, traj, exp.instrument.directions, exp.sa, exp.flux,
            ws.momentum_band, shards=ShardConfig(n_shards=n_shards, workers=1),
            charge=ws.proton_charge, backend="serial",
        )
        assert np.array_equal(got.signal, ref.signal)

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_binmd_bit_identical(self, exp, n_shards):
        ws = exp.wss[2]
        _, ev = self._transforms(exp, ws)
        ref = Hist3(exp.grid, track_errors=True)
        bin_events(ref, ws.events, ev, backend="serial")
        got = Hist3(exp.grid, track_errors=True)
        sharded_binmd(got, ws.events, ev,
                      shards=ShardConfig(n_shards=n_shards, workers=1))
        assert np.array_equal(got.signal, ref.signal)
        assert np.array_equal(got.error_sq, ref.error_sq)

    def test_shard_heartbeats_reported(self, exp):
        ws = exp.wss[0]
        traj, _ = self._transforms(exp, ws)
        seen = []
        sharded_mdnorm(
            Hist3(exp.grid), traj, exp.instrument.directions, exp.sa,
            exp.flux, ws.momentum_band,
            shards=ShardConfig(n_shards=3, workers=1),
            on_shard=lambda s, n: seen.append((s, n)),
        )
        assert seen == [(0, 3), (1, 3), (2, 3)]


# ---------------------------------------------------------------------------
# streaming: sharded open_run normalization, batch-size invariance
# ---------------------------------------------------------------------------

class TestStreamingSharded:
    def _reduce(self, exp, *, shards=None, batch_size=128):
        sr = StreamingReduction(exp.grid, exp.pg, exp.flux, exp.instrument,
                                exp.sa, backend="serial", shards=shards)
        for run in exp.runs:
            sr.open_run(run)
            for batch in EventStream(run, batch_size=batch_size):
                sr.consume(batch)
            sr.close_run(run.run_number)
        return sr.snapshot()

    def test_sharded_matches_plain(self, exp):
        plain = self._reduce(exp)
        shard = self._reduce(exp, shards=ShardConfig(n_shards=3, workers=1))
        assert same(shard.signal, plain.signal)

    @pytest.mark.parametrize("batch_size", (37, 256))
    def test_batch_size_invariance_under_shards(self, exp, batch_size):
        a = self._reduce(exp, shards=ShardConfig(n_shards=2, workers=1),
                         batch_size=batch_size)
        b = self._reduce(exp, shards=ShardConfig(n_shards=2, workers=1),
                         batch_size=101)
        assert same(a.signal, b.signal)


# ---------------------------------------------------------------------------
# fault tolerance: kill-one-shard + retry, checkpoint/resume
# ---------------------------------------------------------------------------

class TestShardFaults:
    def test_shard_execution_error_is_retryable(self):
        """OSError subclass ⇒ the PR 3 default retryable set covers a
        broken shard pool without special-casing."""
        err = ShardExecutionError("pool broke")
        assert isinstance(err, OSError)

    @pytest.mark.parametrize("site", ("shard.mdnorm", "shard.binmd"))
    def test_kill_one_shard_then_retry(self, exp, golden_recovering, site):
        """An io_error injected at a shard dispatch kills that run's
        attempt; the run-level retry re-executes the run and the final
        campaign is bit-identical to the fault-free recovering one."""
        plan = FaultPlan(
            [FaultSpec(site=site, kind="io_error", probability=1.0,
                       max_hits=1)],
            seed=42,
        )
        with use_fault_plan(plan):
            res = exp.compute(
                shards=ShardConfig(n_shards=3, workers=1),
                recovery=RecoveryConfig(retry=POLICY),
            )
        assert len(plan.events) == 1  # the shard really was killed
        assert plan.events[0]["site"] == site
        assert_identical(res, golden_recovering)

    def test_kill_every_shard_of_one_run_quarantines(self, exp):
        """A run whose shards always die exhausts its retries and is
        quarantined; survivors complete the campaign."""
        plan = FaultPlan(
            [FaultSpec(site="shard.mdnorm", kind="io_error",
                       probability=1.0, runs=(1,))],
            seed=7,
        )
        with use_fault_plan(plan):
            res = exp.compute(
                shards=ShardConfig(n_shards=2, workers=1),
                recovery=RecoveryConfig(retry=POLICY, quarantine=True),
            )
        assert res.quarantined_runs == (1,)
        assert res.degraded
        ref = compute_cross_section(
            exp.loader, N_RUNS, exp.grid, exp.pg, exp.flux,
            exp.instrument.directions, exp.sa, backend="serial",
            recovery=RecoveryConfig(),
            )
        # degraded result differs from the full campaign
        assert not same(res.cross_section.signal, ref.cross_section.signal)

    def test_checkpoint_resume_with_shards(self, exp, golden_recovering,
                                           tmp_path):
        """Kill the campaign after run 0's delta is checkpointed, then
        resume with shards: replayed runs + sharded fresh runs are
        bit-identical to the uninterrupted recovering campaign."""
        ckpt_dir = str(tmp_path / "ckpt")
        plan = FaultPlan(
            [FaultSpec(site="shard.binmd", kind="io_error",
                       probability=1.0, runs=(1,))],
            seed=3,
        )
        first = RecoveryConfig(
            retry=RetryPolicy(max_attempts=1, base_delay_s=0.0),
            quarantine=False,
            checkpoint=CheckpointManager(ckpt_dir),
        )
        with use_fault_plan(plan):
            with pytest.raises(Exception):
                exp.compute(shards=ShardConfig(n_shards=2, workers=1),
                            recovery=first)
        resume = RecoveryConfig(
            retry=POLICY, checkpoint=CheckpointManager(ckpt_dir), resume=True,
        )
        res = exp.compute(shards=ShardConfig(n_shards=3, workers=1),
                          recovery=resume)
        assert_identical(res, golden_recovering)


# ---------------------------------------------------------------------------
# configuration validation
# ---------------------------------------------------------------------------

class TestShardConfigValidation:
    @pytest.mark.parametrize("bad", (0, -2, "three"))
    def test_bad_shard_count_rejected(self, bad):
        with pytest.raises(BackendError):
            ShardConfig(n_shards=bad)

    def test_bad_workers_rejected(self):
        with pytest.raises(BackendError, match="shard workers"):
            ShardConfig(n_shards=2, workers=0)

    def test_from_options(self):
        assert ShardConfig.from_options(None) is None
        cfg = ShardConfig.from_options(4, 2, balanced=True)
        assert cfg == ShardConfig(n_shards=4, workers=2, balanced=True)
        assert cfg.effective_workers == 2


# ---------------------------------------------------------------------------
# out-of-core invariance (ISSUE 6): chunk size / codec / budget are
# execution details of the same bit-identical reduction
# ---------------------------------------------------------------------------

class TestOutOfCoreInvariance:
    ROW_BYTES = 8 * 8

    @pytest.fixture(scope="class")
    def chunked_paths(self, exp, tmp_path_factory):
        """The same three runs stored at several chunk sizes/codecs."""
        from repro.core.md_event_workspace import save_md

        base = tmp_path_factory.mktemp("ooc_invariance")
        layouts = {}
        for chunk, codec in ((32, "zlib"), (57, "shuffle-zlib"),
                             (128, "none"), (1024, "zlib")):
            paths = []
            for i, ws in enumerate(exp.wss):
                p = str(base / f"c{chunk}_{codec}_r{i}.md.h5")
                save_md(p, ws, chunk_events=chunk, codec=codec)
                paths.append(p)
            layouts[(chunk, codec)] = paths
        return layouts

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_chunk_size_invariance_full_pipeline(
        self, exp, golden, chunked_paths, n_shards
    ):
        from repro.core.md_event_workspace import load_md

        for (chunk, codec), paths in chunked_paths.items():
            budget = 2 * chunk * self.ROW_BYTES
            res = exp.compute(
                loader=lambda i, p=paths: load_md(p[i],
                                                  memory_budget=budget),
                shards=ShardConfig(n_shards=n_shards, workers=1),
            )
            assert_identical(res, golden)

    def test_worker_backend_invariance(self, exp, golden, chunked_paths):
        from repro.core.md_event_workspace import load_md

        paths = chunked_paths[(57, "shuffle-zlib")]
        budget = 3 * 57 * self.ROW_BYTES
        for workers in (1, 2):
            res = exp.compute(
                loader=lambda i: load_md(paths[i], memory_budget=budget),
                shards=ShardConfig(n_shards=3, workers=workers),
            )
            assert_identical(res, golden)

    def test_shard_tasks_align_with_chunk_plan(self, exp, chunked_paths):
        """The runtime fans out exactly the chunk-aligned ranges the
        planner predicts (boundaries land on chunk boundaries)."""
        from repro.core.md_event_workspace import load_md
        from repro.mpi import chunk_aligned_event_ranges
        from repro.nexus.tiles import LazyEventTable
        from repro.util import trace as trace_mod

        paths = chunked_paths[(32, "zlib")]
        budget = 2 * 32 * self.ROW_BYTES
        expected = 0
        for p in paths:
            lazy = LazyEventTable(p, memory_budget=budget)
            ranges = chunk_aligned_event_ranges(
                lazy.chunk_bounds(), 3,
                chunk_weights=[float(b) for b in lazy.chunk_stored_nbytes()],
                max_rows=budget // lazy.row_nbytes,
            )
            bound_set = set(lazy.chunk_bounds())
            for a, b in ranges:
                assert a in bound_set and b in bound_set
            expected += len(ranges)
            lazy.close()

        tracer = trace_mod.Tracer()
        with trace_mod.use_tracer(tracer):
            exp.compute(
                loader=lambda i: load_md(paths[i], memory_budget=budget),
                shards=ShardConfig(n_shards=3, workers=1),
            )
        assert tracer.counters["binmd.shard_tasks"] == expected
