"""Live campaign monitoring, end to end (PR 4 tentpole 3).

Heartbeats and per-rank gauges from the real Algorithm-1 loop under
``run_world(4)``, stall detection with an injected clock, quarantine /
resume / crash visibility from the PR 3 recovery protocol, and the
OpenMetrics text exposition (atomic file + parse round-trip).
"""

import math
import threading
from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointManager, RecoveryConfig
from repro.core.cross_section import compute_cross_section
from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import convert_to_md, load_md, save_md
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil
from repro.crystal.symmetry import point_group
from repro.crystal.ub import UBMatrix
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.mpi import run_world
from repro.util import monitor as monitor_mod
from repro.util.faults import (
    FaultPlan,
    FaultSpec,
    RankCrashError,
    RetryPolicy,
    use_fault_plan,
)
from repro.util.monitor import (
    DISABLED,
    CampaignMonitor,
    NullMonitor,
    active_monitor,
    parse_metrics,
    use_monitor,
    watch_report,
)

N_RUNS = 4
POLICY = RetryPolicy(max_attempts=2, base_delay_s=0.0)


@dataclass
class MicroExperiment:
    instrument: object
    grid: HKLGrid
    point_group: object
    flux: object
    vanadium: object
    md_paths: List[str]

    def loader(self, i):
        return load_md(self.md_paths[i])

    def kw(self):
        return dict(
            n_runs=len(self.md_paths),
            grid=self.grid,
            point_group=self.point_group,
            flux=self.flux,
            det_directions=self.instrument.directions,
            solid_angles=self.vanadium.detector_weights,
        )


@pytest.fixture(scope="module")
def exp(tmp_path_factory) -> MicroExperiment:
    base = tmp_path_factory.mktemp("monitor")
    structure = benzil()
    instrument = make_corelli(n_pixels=120)
    ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0],
                                 [1.0, 0.0, 0.0])
    grid = HKLGrid.benzil_grid(bins=(13, 13, 1))
    pg = point_group("321")
    flux = make_flux(instrument)
    vanadium = make_vanadium(instrument)
    md_paths = []
    for i, omega in enumerate((0.0, 30.0, 60.0, 90.0)):
        run = synthesize_run(
            instrument=instrument, structure=structure, ub=ub,
            goniometer=Goniometer(omega).rotation, n_events=300,
            rng=np.random.default_rng(8400 + i), run_number=i,
        )
        ws = convert_to_md(run, instrument, run_index=i)
        path = str(base / f"run_{i}.md.h5")
        save_md(path, ws)
        md_paths.append(path)
    return MicroExperiment(
        instrument=instrument, grid=grid, point_group=pg, flux=flux,
        vanadium=vanadium, md_paths=md_paths,
    )


class TestHeartbeats:
    def test_sequential_campaign_fully_accounted(self, exp):
        mon = CampaignMonitor(label="seq")
        with use_monitor(mon):
            res = compute_cross_section(exp.loader, **exp.kw())
        assert res.cross_section is not None
        snap = mon.snapshot()
        assert snap["n_runs"] == N_RUNS
        assert snap["runs_completed"] == N_RUNS
        assert snap["events_processed"] == pytest.approx(4 * 300.0)
        assert snap["finished_at"] is not None
        assert snap["eta_seconds"] == 0.0
        [rank] = snap["ranks"]
        assert rank["rank"] == 0
        assert rank["runs_assigned"] == N_RUNS
        assert rank["status"] == "done"

    def test_four_rank_world_heartbeats(self, exp):
        mon = CampaignMonitor(label="world4")

        def body(comm):
            # the process-global monitor is shared by the rank threads
            return compute_cross_section(exp.loader, comm=comm, **exp.kw())

        with use_monitor(mon):
            run_world(4, body)
        snap = mon.snapshot()
        assert [r["rank"] for r in snap["ranks"]] == [0, 1, 2, 3]
        assert snap["runs_completed"] == N_RUNS
        assert sum(r["runs_assigned"] for r in snap["ranks"]) == N_RUNS
        assert all(r["status"] == "done" for r in snap["ranks"])
        assert snap["stalled_ranks"] == []

    def test_monitoring_does_not_change_the_result(self, exp):
        bare = compute_cross_section(exp.loader, **exp.kw())
        with use_monitor(CampaignMonitor()):
            monitored = compute_cross_section(exp.loader, **exp.kw())
        assert np.array_equal(bare.cross_section.signal,
                              monitored.cross_section.signal,
                              equal_nan=True)

    def test_default_monitor_is_disabled(self):
        assert active_monitor() is DISABLED
        assert not DISABLED.enabled
        # NullMonitor swallows everything without growing state
        DISABLED.heartbeat(0, site="x")
        DISABLED.run_completed(0, 0, events=5.0)
        assert DISABLED.snapshot()["runs_completed"] == 0


class TestStallDetection:
    def test_stall_detector_with_injected_clock(self):
        t = [100.0]
        mon = CampaignMonitor(stall_deadline=30.0, clock=lambda: t[0])
        mon.start_campaign(4, 2)
        mon.heartbeat(0, site="run:0/MDNorm", run=0)
        mon.heartbeat(1, site="run:2/BinMD", run=2)
        assert mon.stalled_ranks() == []
        t[0] = 120.0
        mon.heartbeat(1)  # rank 1 keeps making progress
        t[0] = 140.0
        assert mon.stalled_ranks() == [0]  # 40 s silent > 30 s deadline
        assert mon.snapshot()["stalled_ranks"] == [0]
        t[0] = 180.0
        assert mon.stalled_ranks() == [0, 1]
        mon.finish_campaign()
        assert mon.stalled_ranks() == []  # a finished campaign never stalls

    def test_slow_fault_shows_as_late_heartbeat(self, exp):
        """The PR 3 ``slow`` fault delays a run; the heartbeat ages."""
        mon = CampaignMonitor(stall_deadline=0.02)
        plan = FaultPlan(
            [FaultSpec(site="run", kind="slow", probability=1.0,
                       delay_s=0.06, runs=(1,), max_hits=1)],
            seed=3,
        )
        stalls = []

        def spy_loader(i):
            stalls.append(mon.stalled_ranks())
            return exp.loader(i)

        with use_monitor(mon), use_fault_plan(plan):
            compute_cross_section(
                spy_loader, recovery=RecoveryConfig(retry=POLICY),
                **exp.kw(),
            )
        # the run after the injected sleep saw rank 0 past its deadline
        assert any(0 in s for s in stalls)

    def test_eta_estimator(self):
        t = [0.0]
        mon = CampaignMonitor(clock=lambda: t[0])
        mon.start_campaign(4, 1)
        assert mon.eta_seconds() is None  # no throughput sample yet
        t[0] = 10.0
        mon.run_completed(0, 0)
        # 1 run / 10 s -> 3 remaining at 10 s each
        assert mon.eta_seconds() == pytest.approx(30.0)
        t[0] = 20.0
        mon.run_completed(0, 1)
        assert mon.eta_seconds() == pytest.approx(20.0)
        mon.record_quarantine(0, 2)  # accounted, not completed
        mon.run_completed(0, 3)
        assert mon.eta_seconds() == 0.0


class TestRecoveryVisibility:
    def test_quarantine_is_visible(self, exp):
        mon = CampaignMonitor()
        plan = FaultPlan(
            [FaultSpec(site="run", kind="io_error", probability=1.0,
                       runs=(1,))],
            seed=5,
        )
        with use_monitor(mon), use_fault_plan(plan):
            res = compute_cross_section(
                exp.loader, recovery=RecoveryConfig(retry=POLICY),
                **exp.kw(),
            )
        assert res.quarantined_runs == (1,)
        snap = mon.snapshot()
        assert snap["runs_quarantined"] == 1
        assert snap["runs_completed"] == N_RUNS - 1
        assert snap["eta_seconds"] == 0.0  # degraded campaign converges
        text = mon.openmetrics()
        parsed = parse_metrics(text)
        assert parsed["repro_campaign_runs_quarantined"][()] == 1.0

    def test_resume_is_visible(self, exp, tmp_path):
        ck = CheckpointManager(tmp_path / "ck", config_digest="mon")
        with use_monitor(CampaignMonitor()):
            compute_cross_section(
                exp.loader,
                recovery=RecoveryConfig(retry=POLICY, checkpoint=ck),
                **exp.kw(),
            )
        mon2 = CampaignMonitor()
        ck2 = CheckpointManager(tmp_path / "ck", config_digest="mon")
        with use_monitor(mon2):
            compute_cross_section(
                exp.loader,
                recovery=RecoveryConfig(retry=POLICY, checkpoint=ck2,
                                        resume=True),
                **exp.kw(),
            )
        snap = mon2.snapshot()
        assert snap["runs_resumed"] == N_RUNS
        assert snap["runs_completed"] == N_RUNS

    def test_crash_is_visible(self, exp):
        mon = CampaignMonitor()
        plan = FaultPlan(
            [FaultSpec(site="run", kind="rank_crash", probability=1.0,
                       ranks=(1,), max_hits=1)],
            seed=7,
        )

        def body(comm):
            return compute_cross_section(
                exp.loader, comm=comm,
                recovery=RecoveryConfig(retry=POLICY), **exp.kw(),
            )

        with use_monitor(mon), use_fault_plan(plan):
            run_world(2, body)
        snap = mon.snapshot()
        assert snap["crashed_ranks"] == [1]
        assert snap["runs_completed"] == N_RUNS  # survivors adopted the backlog
        parsed = parse_metrics(mon.openmetrics())
        info = parsed["repro_rank_info"]
        statuses = {dict(labels)["rank"]: dict(labels)["status"]
                    for labels in info}
        assert statuses["1"] == "crashed"


class TestOpenMetrics:
    def test_exposition_round_trip(self):
        t = [50.0]
        mon = CampaignMonitor(label="om", clock=lambda: t[0])
        mon.start_campaign(3, 2)
        mon.assign_runs(0, 2)
        mon.assign_runs(1, 1)
        mon.heartbeat(0, site="run:0/MDNorm", run=0)
        t[0] = 60.0
        mon.run_completed(0, 0, events=1200.0)
        text = mon.openmetrics()
        assert text.rstrip().endswith("# EOF")
        parsed = parse_metrics(text)
        assert parsed["repro_campaign_runs_total"][()] == 3.0
        assert parsed["repro_campaign_runs_completed"][()] == 1.0
        assert parsed["repro_campaign_events_processed"][()] == 1200.0
        assert parsed["repro_campaign_eta_seconds"][()] == pytest.approx(20.0)
        per_rank = parsed["repro_rank_runs_completed"]
        assert per_rank[(("rank", "0"),)] == 1.0
        assert per_rank[(("rank", "1"),)] == 0.0

    def test_eta_nan_before_first_completion(self):
        mon = CampaignMonitor()
        mon.start_campaign(2, 1)
        mon.heartbeat(0, site="run:0/UpdateEvents", run=0)
        parsed = parse_metrics(mon.openmetrics())
        assert math.isnan(parsed["repro_campaign_eta_seconds"][()])

    def test_metrics_file_written_during_campaign(self, exp, tmp_path):
        path = str(tmp_path / "metrics.txt")
        mon = CampaignMonitor(metrics_path=path)
        with use_monitor(mon):
            compute_cross_section(exp.loader, **exp.kw())
        with open(path) as fh:
            text = fh.read()
        assert text.rstrip().endswith("# EOF")
        parsed = parse_metrics(text)
        assert parsed["repro_campaign_runs_completed"][()] == float(N_RUNS)
        report = watch_report(path)
        assert f"{N_RUNS}/{N_RUNS} runs" in report
        assert "rank" in report

    def test_parse_rejects_garbage(self):
        with pytest.raises(Exception):
            parse_metrics("this is {not a metric line")


class TestMonitorPlumbing:
    def test_use_monitor_restores_previous(self):
        mon = CampaignMonitor()
        assert active_monitor() is DISABLED
        with use_monitor(mon):
            assert active_monitor() is mon
        assert active_monitor() is DISABLED

    def test_null_monitor_is_reusable_across_campaigns(self):
        null = NullMonitor()
        null.start_campaign(5, 2)
        null.record_crash(0)
        assert null.snapshot()["n_runs"] == 0

    def test_thread_safety_smoke(self):
        mon = CampaignMonitor()
        mon.start_campaign(64, 8)

        def pound(rank):
            for i in range(50):
                mon.heartbeat(rank, site=f"run:{i}/MDNorm", run=i)
                mon.run_completed(rank, i, events=1.0)

        threads = [threading.Thread(target=pound, args=(r,)) for r in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        snap = mon.snapshot()
        assert snap["runs_completed"] == 8 * 50
        assert snap["events_processed"] == 400.0


class TestServiceLabels:
    """PR 8 extensions: constant labels, extra gauges, thread scoping."""

    def test_constant_labels_on_every_sample(self):
        mon = CampaignMonitor(labels={"job": "job-00001", "tenant": "hb2c"})
        mon.start_campaign(4, 1)
        mon.run_completed(0, 0, events=10.0)
        parsed = parse_metrics(mon.openmetrics())
        want = {("job", "job-00001"), ("tenant", "hb2c")}
        for name, table in parsed.items():
            for labels in table:
                assert want <= set(labels), f"{name} lost constant labels"

    def test_set_and_drop_gauge(self):
        mon = CampaignMonitor()
        mon.set_gauge("service_queue_depth", 3)
        mon.set_gauge("service_job_state", 1.0, job="j1", state="running")
        parsed = parse_metrics(mon.openmetrics())
        assert parsed["repro_service_queue_depth"][()] == 3.0
        key = (("job", "j1"), ("state", "running"))
        assert parsed["repro_service_job_state"][key] == 1.0
        mon.drop_gauge("service_job_state", job="j1", state="running")
        mon.set_gauge("service_job_state", 1.0, job="j1", state="done")
        parsed = parse_metrics(mon.openmetrics())
        assert key not in parsed["repro_service_job_state"]
        assert parsed["repro_service_job_state"][
            (("job", "j1"), ("state", "done"))] == 1.0

    def test_labelled_round_trip_through_parse_metrics(self):
        mon = CampaignMonitor(labels={"tenant": "cncs"})
        mon.set_gauge("service_active_jobs", 2, shard="s0")
        text = mon.openmetrics()
        parsed = parse_metrics(text)
        key = (("shard", "s0"), ("tenant", "cncs"))
        assert parsed["repro_service_active_jobs"][key] == 2.0

    def test_thread_monitor_shadows_ambient(self):
        ambient = CampaignMonitor()
        scoped = CampaignMonitor(labels={"job": "j9"})
        seen = {}

        def worker():
            with monitor_mod.thread_monitor(scoped):
                seen["inside"] = active_monitor()
            seen["after"] = active_monitor()

        with use_monitor(ambient):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
            # the override was confined to the worker thread
            assert active_monitor() is ambient
        assert seen["inside"] is scoped
        assert seen["after"] is ambient


class TestLabelEscaping:
    """Label-value escaping per the Prometheus exposition spec:
    backslash, double quote and newline must survive a write/parse
    round trip (satellite of the causal-tracing PR)."""

    def test_quote_backslash_newline_round_trip(self):
        nasty = 'run "A"\\steal\nphase'
        mon = CampaignMonitor(labels={"job": nasty})
        mon.set_gauge("service_active_jobs", 1.0, site='x"y\\z')
        parsed = parse_metrics(mon.openmetrics())
        key = (("job", nasty), ("site", 'x"y\\z'))
        assert parsed["repro_service_active_jobs"][key] == 1.0

    def test_closing_brace_inside_label_value(self):
        mon = CampaignMonitor()
        mon.set_gauge("service_active_jobs", 2.0, site="shard{3}of4")
        parsed = parse_metrics(mon.openmetrics())
        key = (("site", "shard{3}of4"),)
        assert parsed["repro_service_active_jobs"][key] == 2.0

    def test_escaped_backslash_before_n_is_not_newline(self):
        # the classic chained-replace bug: a literal backslash followed
        # by the letter n must NOT come back as a newline
        mon = CampaignMonitor()
        mon.set_gauge("service_active_jobs", 3.0, path="C:\\new\\nodes")
        parsed = parse_metrics(mon.openmetrics())
        key = (("path", "C:\\new\\nodes"),)
        assert parsed["repro_service_active_jobs"][key] == 3.0

    def test_rank_info_site_with_quotes(self):
        mon = CampaignMonitor()
        mon.start_campaign(n_runs=1, world_size=1)
        mon.heartbeat(0, site='run:0/"BinMD"/shard:1of2', run=0)
        parsed = parse_metrics(mon.openmetrics())
        sites = [dict(k).get("site")
                 for k in parsed["repro_rank_info"]]
        assert 'run:0/"BinMD"/shard:1of2' in sites
