"""Fused-back-end pipeline equivalence (ISSUE 10 satellite c).

The contract: ``backend="fused"`` is an *execution* detail of the full
Algorithm-1 pipeline, never a *numerics* detail.  For every instrument
x symmetry-group x execution-mode combination below, the fused
cross-section (and both factors, including ``error_sq``) must be
**bit-identical** to the vectorized back end run the same way:

* plain single-process campaigns (CORELLI/Benzil x 321, TOPAZ/Bixbyite
  x m-3 — 6-op and 24-op plans, distinct grids);
* intra-run sharding (shards > 1, including shard counts larger than
  the op axis);
* the elastic work-stealing executor under a random steal schedule;
* out-of-core runs (chunked event files re-read under a memory
  budget);
* checkpoint/resume across a mid-campaign failure.

Each mode is compared fused-vs-vectorized *within* the mode, so modes
with their own fold order (recovery's scratch-delta fold, stealing's
error_sq self-fold) still demand exact equality.
"""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointManager, RecoveryConfig
from repro.core.cross_section import compute_cross_section
from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import convert_to_md, load_md, save_md
from repro.core.sharding import ShardConfig
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil, bixbyite
from repro.crystal.symmetry import point_group
from repro.crystal.ub import UBMatrix
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.instruments.topaz import make_topaz
from repro.jacc.artifact_cache import ARTIFACT_DIR_ENV
from repro.jacc.fused import FUSED
from repro.jacc.workers import GLOBAL_POOL
from repro.util.faults import FaultPlan, FaultSpec, RetryPolicy, use_fault_plan
from repro.util.schedule import ScheduleController

N_RUNS = 3
POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.0)


class _Exp:
    """One instrument + structure + symmetry group campaign setup."""

    def __init__(self, key):
        if key == "benzil":
            structure = benzil()
            self.instrument = make_corelli(n_pixels=150)
            self.grid = HKLGrid.benzil_grid(bins=(15, 15, 1))
            self.pg = point_group("321")  # 6 ops
            u, v = [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]
        else:
            structure = bixbyite()
            self.instrument = make_topaz(n_pixels=120)
            self.grid = HKLGrid.bixbyite_grid(bins=(13, 13, 1))
            self.pg = point_group("m-3")  # 24 ops
            u, v = [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]
        self.ub = UBMatrix.from_u_vectors(structure.cell, u, v)
        self.flux = make_flux(self.instrument)
        self.sa = make_vanadium(self.instrument).detector_weights
        self.wss = [
            convert_to_md(
                synthesize_run(
                    instrument=self.instrument, structure=structure,
                    ub=self.ub, goniometer=Goniometer(omega).rotation,
                    n_events=400, rng=np.random.default_rng(9300 + i),
                    run_number=i,
                ),
                self.instrument, run_index=i,
            )
            for i, omega in enumerate((0.0, 40.0, 80.0))
        ]

    def loader(self, i):
        return self.wss[i]

    def compute(self, *, backend, loader=None, **kw):
        return compute_cross_section(
            loader or self.loader, N_RUNS, self.grid, self.pg, self.flux,
            self.instrument.directions, self.sa, backend=backend, **kw,
        )


@pytest.fixture(scope="module", params=("benzil", "bixbyite"))
def exp(request):
    e = _Exp(request.param)
    yield e
    GLOBAL_POOL.dispose()


@pytest.fixture(autouse=True)
def _isolated_artifacts(tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path / "artifacts"))
    FUSED.clear()
    yield
    FUSED.clear()


def assert_bit_identical(fused, vec):
    assert fused.mdnorm.signal.sum() > 0  # the campaign deposited
    assert np.array_equal(fused.mdnorm.signal, vec.mdnorm.signal)
    assert np.array_equal(fused.binmd.signal, vec.binmd.signal)
    assert np.array_equal(fused.binmd.error_sq, vec.binmd.error_sq)
    assert np.array_equal(fused.cross_section.signal,
                          vec.cross_section.signal, equal_nan=True)
    if fused.cross_section.error_sq is not None:
        assert np.array_equal(fused.cross_section.error_sq,
                              vec.cross_section.error_sq, equal_nan=True)


class TestFusedPipelineEquivalence:
    def test_plain_campaign(self, exp):
        assert_bit_identical(exp.compute(backend="fused"),
                             exp.compute(backend="vectorized"))

    @pytest.mark.parametrize("n_shards", (2, 7))
    def test_sharded(self, exp, n_shards):
        shards = ShardConfig(n_shards=n_shards, workers=1)
        assert_bit_identical(exp.compute(backend="fused", shards=shards),
                             exp.compute(backend="vectorized", shards=shards))

    def test_stealing_executor(self, exp):
        def run(backend):
            return exp.compute(
                backend=backend, executor="stealing",
                shards=ShardConfig(n_shards=3, workers=1),
                schedule=ScheduleController(seed=5, policy="random"),
            )

        fused, vec = run("fused"), run("vectorized")
        assert fused.extras["stealing"]["tasks"] > 0
        assert_bit_identical(fused, vec)

    def test_out_of_core(self, exp, tmp_path):
        """Chunked event files re-read under a tight memory budget."""
        paths = []
        for i, ws in enumerate(exp.wss):
            p = str(tmp_path / f"run{i}.md.h5")
            save_md(p, ws, chunk_events=64, codec="shuffle-zlib")
            paths.append(p)
        budget = 2 * 64 * 8 * 8  # two chunks of 8-column float64 rows

        def run(backend):
            return exp.compute(
                backend=backend,
                loader=lambda i: load_md(paths[i], memory_budget=budget),
                shards=ShardConfig(n_shards=3, workers=1),
            )

        assert_bit_identical(run("fused"), run("vectorized"))

    def test_checkpoint_resume(self, exp, tmp_path):
        """Kill run 1 mid-campaign, resume from the checkpoint: the
        replayed+fresh fused campaign equals the vectorized one."""
        def run(backend):
            ckpt_dir = str(tmp_path / f"ckpt-{backend}")
            plan = FaultPlan(
                [FaultSpec(site="shard.binmd", kind="io_error",
                           probability=1.0, runs=(1,))],
                seed=3,
            )
            first = RecoveryConfig(
                retry=RetryPolicy(max_attempts=1, base_delay_s=0.0),
                quarantine=False, checkpoint=CheckpointManager(ckpt_dir),
            )
            with use_fault_plan(plan):
                with pytest.raises(Exception):
                    exp.compute(backend=backend,
                                shards=ShardConfig(n_shards=2, workers=1),
                                recovery=first)
            resume = RecoveryConfig(
                retry=POLICY, checkpoint=CheckpointManager(ckpt_dir),
                resume=True,
            )
            return exp.compute(backend=backend,
                               shards=ShardConfig(n_shards=2, workers=1),
                               recovery=resume)

        assert_bit_identical(run("fused"), run("vectorized"))

    def test_recovering_loop(self, exp):
        """The recovery path folds per-run scratch deltas — a different
        float association that fused must reproduce exactly too."""
        assert_bit_identical(
            exp.compute(backend="fused", recovery=RecoveryConfig()),
            exp.compute(backend="vectorized", recovery=RecoveryConfig()),
        )
