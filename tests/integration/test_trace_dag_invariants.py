"""Merged-DAG invariants under adversarial elastic schedules.

Satellite of the causal-tracing PR: 50 seeded stealing campaigns across
world sizes {2, 3, 4} each write per-rank trace files, which must merge
back into ONE validating causal DAG per campaign — a single rooted
tree, every planned shard cell completing exactly once, every steal
link resolving to a real planning span, and a critical path no longer
than the measured wall-clock that contains it.
"""

import time
from typing import List

import numpy as np
import pytest

from repro.core.checkpoint import RecoveryConfig
from repro.core.md_event_workspace import convert_to_md, load_md, save_md
from repro.core.grid import HKLGrid
from repro.core.sharding import ShardConfig
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil
from repro.crystal.symmetry import point_group
from repro.crystal.ub import UBMatrix
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.mpi import run_world
from repro.mpi.stealing import run_stealing_campaign
from repro.util import trace as trace_mod
from repro.util import tracedag
from repro.util.faults import RetryPolicy
from repro.util.schedule import ScheduleController

N_RUNS = 3
N_SHARDS = 2
N_SEEDS = 50
POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.0)


@pytest.fixture(scope="module", autouse=True)
def _dispose_pool_after_module():
    from repro.jacc.workers import GLOBAL_POOL

    yield
    GLOBAL_POOL.dispose()


@pytest.fixture(scope="module")
def exp(tmp_path_factory):
    base = tmp_path_factory.mktemp("dagfuzz")
    structure = benzil()
    instrument = make_corelli(n_pixels=24)
    ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0],
                                 [1.0, 0.0, 0.0])
    grid = HKLGrid.benzil_grid(bins=(7, 7, 1))
    pg = point_group("321")
    flux = make_flux(instrument)
    vanadium = make_vanadium(instrument)
    md_paths: List[str] = []
    for i, omega in enumerate((0.0, 40.0, 80.0)):
        run = synthesize_run(
            instrument=instrument, structure=structure, ub=ub,
            goniometer=Goniometer(omega).rotation, n_events=60,
            rng=np.random.default_rng(7100 + i), run_number=i,
        )
        ws = convert_to_md(run, instrument, run_index=i)
        path = str(base / f"run_{i}.md.h5")
        save_md(path, ws)
        md_paths.append(path)
    return {
        "md_paths": md_paths,
        "kw": dict(
            n_runs=N_RUNS, grid=grid, point_group=pg, flux=flux,
            det_directions=instrument.directions,
            solid_angles=vanadium.detector_weights,
        ),
    }


def _traced_campaign(exp, seed, size, tmp_path):
    """One stealing campaign under a fresh campaign tracer; returns
    (merged DAG, wall seconds)."""
    tracer = trace_mod.Tracer(
        label=f"fuzz-{seed}",
        campaign_id=trace_mod.new_campaign_id(f"dagfuzz:{seed}:{size}"),
    )
    schedule = ScheduleController(seed=seed, policy="all-steal")

    def loader(i):
        return load_md(exp["md_paths"][i])

    def body(comm):
        return run_stealing_campaign(
            loader, comm=comm, recovery=RecoveryConfig(retry=POLICY),
            shards=ShardConfig(n_shards=N_SHARDS, workers=1),
            schedule=schedule, **exp["kw"]
        )

    t_start = time.monotonic()
    with trace_mod.use_tracer(tracer):
        with tracer.span("campaign", kind="campaign", seed=int(seed)):
            results = run_world(size, body, barrier_timeout=60.0)
    wall = time.monotonic() - t_start
    roots = [r for r in results if r is not None
             and r.cross_section is not None]
    assert len(roots) == 1
    out = tmp_path / f"seed{seed}"
    tracer.write_jsonl_dir(str(out))
    return tracedag.merge_dir(str(out)), wall


def _assert_dag_invariants(dag, wall, *, seed, size):
    label = f"seed={seed} size={size}"
    report = dag.validate()

    # one rooted tree per campaign
    assert report["ok"], label
    assert report["roots"] == ["campaign"], label

    # every planned shard cell completes exactly once (validate already
    # rejects duplicates; here: none missing either)
    completed = {
        (n["attrs"]["run"], n["name"], n["attrs"]["shard"])
        for n in dag.spans.values()
        if n.get("kind") in ("steal", "steal_task")
        and n["attrs"].get("completed")
    }
    expected = {
        (run, f"steal:{stage}", shard)
        for run in range(N_RUNS)
        for stage in ("mdnorm", "binmd")
        for shard in range(N_SHARDS)
    }
    assert completed == expected, label

    # steal links tie the executing span to the real planning span
    steal_links = [l for l in dag.links if l["kind"] == "steal"]
    for link in steal_links:
        src, dst = dag.spans[link["src"]], dag.spans[link["dst"]]
        assert src.get("kind") == "steal", label
        assert dst.get("kind") == "plan_task", label
        assert (src["attrs"]["run"], src["attrs"]["shard"]) == \
            (dst["attrs"]["run"], dst["attrs"]["shard"]), label
    # all-steal on >= 2 ranks must actually steal
    assert steal_links, label

    # critical path: a real root-to-leaf chain, no longer than the
    # wall-clock that contains the campaign
    chain = dag.critical_chain()
    assert chain[0]["name"] == "campaign", label
    assert len(chain) >= 2, label
    assert dag.critical_seconds() <= wall + 1e-6, label


@pytest.mark.parametrize("batch", range(5))
def test_fifty_seeded_campaigns_merge_into_valid_dags(
    exp, tmp_path, batch
):
    """10 seeds per batch x 5 batches = the 50-seed sweep, world size
    cycling {2, 3, 4} with the seed."""
    for seed in range(batch * 10, batch * 10 + 10):
        size = seed % 3 + 2
        dag, wall = _traced_campaign(exp, seed, size, tmp_path)
        _assert_dag_invariants(dag, wall, seed=seed, size=size)
