"""Failure injection: corrupted inputs fail loudly, degenerate inputs
produce well-defined results."""

import shutil

import numpy as np
import pytest

from repro.core.binmd import bin_events
from repro.core.cross_section import compute_cross_section
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import MDEventWorkspace, load_md, save_md
from repro.core.mdnorm import mdnorm
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.events import EventTable
from repro.nexus.h5lite import H5LiteError
from repro.util.validation import ValidationError


class TestCorruptedFiles:
    def test_flipped_payload_byte_detected(self, tiny_experiment, tmp_path):
        victim = tmp_path / "corrupt.md.h5"
        shutil.copy(tiny_experiment.md_paths[0], victim)
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(raw)
        with pytest.raises(H5LiteError):
            load_md(str(victim))

    def test_truncated_file_detected(self, tiny_experiment, tmp_path):
        victim = tmp_path / "trunc.md.h5"
        raw = open(tiny_experiment.md_paths[0], "rb").read()
        victim.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(H5LiteError):
            load_md(str(victim))

    def test_workflow_surfaces_load_error(self, tiny_experiment, tmp_path):
        victim = tmp_path / "bad.md.h5"
        victim.write_bytes(b"not a file at all")
        with pytest.raises(H5LiteError):
            compute_cross_section(
                load_run=lambda i: load_md(str(victim)),
                n_runs=1,
                grid=tiny_experiment.grid,
                point_group=tiny_experiment.point_group,
                flux=tiny_experiment.flux,
                det_directions=tiny_experiment.instrument.directions,
                solid_angles=tiny_experiment.vanadium.detector_weights,
            )


class TestDegenerateInputs:
    def test_empty_run_contributes_nothing(self, tiny_experiment, tmp_path):
        """A run with zero events is legal: BinMD adds nothing, MDNorm
        still adds its trajectories."""
        empty = MDEventWorkspace(
            events=EventTable.empty(),
            run_number=99,
            goniometer=np.eye(3),
            proton_charge=1.0,
            momentum_band=tiny_experiment.workspaces[0].momentum_band,
            ub_matrix=tiny_experiment.workspaces[0].ub_matrix,
        )
        path = str(tmp_path / "empty.md.h5")
        save_md(path, empty)
        res = compute_cross_section(
            load_run=lambda i: load_md(path),
            n_runs=1,
            grid=tiny_experiment.grid,
            point_group=tiny_experiment.point_group,
            flux=tiny_experiment.flux,
            det_directions=tiny_experiment.instrument.directions,
            solid_angles=tiny_experiment.vanadium.detector_weights,
            backend="vectorized",
        )
        assert res.binmd.total() == 0.0
        assert res.mdnorm.total() > 0.0
        assert np.all(np.isnan(res.cross_section.signal) |
                      (res.cross_section.signal == 0.0))

    def test_all_events_outside_grid(self):
        grid = HKLGrid(basis=np.eye(3), minimum=(-0.1, -0.1, -0.1),
                       maximum=(0.1, 0.1, 0.1), bins=(2, 2, 2))
        events = EventTable.from_columns(
            signal=np.ones(10), q_sample=np.full((10, 3), 5.0)
        )
        h = Hist3(grid)
        bin_events(h, events, np.eye(3)[None], backend="vectorized")
        assert h.total() == 0.0

    def test_zero_flux_gives_zero_normalization(self):
        grid = HKLGrid(basis=np.eye(3), minimum=(-2, -2, -1), maximum=(2, 2, 1),
                       bins=(4, 4, 2))
        flux = FluxSpectrum(momentum=np.array([1.0, 10.0]),
                            density=np.array([0.0, 0.0]))
        dets = np.array([[0.6, 0.0, 0.8], [0.0, 0.6, 0.8]])
        h = Hist3(grid)
        mdnorm(h, np.eye(3)[None], dets, np.ones(2), flux, (2.0, 8.0),
               backend="vectorized")
        assert h.total() == 0.0

    def test_band_entirely_outside_grid(self):
        """Momentum band too high: no trajectory enters the tiny box."""
        grid = HKLGrid(basis=np.eye(3), minimum=(-0.01, -0.01, -0.01),
                       maximum=(0.01, 0.01, 0.01), bins=(2, 2, 2))
        flux = FluxSpectrum(momentum=np.array([1.0, 100.0]),
                            density=np.array([1.0, 1.0]))
        dets = np.array([[0.6, 0.0, 0.8]])
        h = Hist3(grid)
        mdnorm(h, np.eye(3)[None], dets, np.ones(1), flux, (50.0, 90.0),
               backend="vectorized")
        assert h.total() == 0.0

    def test_non_rotation_goniometer_rejected_at_construction(self):
        with pytest.raises(ValidationError):
            MDEventWorkspace(
                events=EventTable.empty(),
                run_number=0,
                goniometer=np.full((3, 3), np.nan),
                proton_charge=1.0,
                momentum_band=(1.0, 2.0),
            )

    def test_division_by_empty_normalization_is_all_nan(self):
        grid = HKLGrid(basis=np.eye(3), minimum=(-1, -1, -1), maximum=(1, 1, 1),
                       bins=(2, 2, 2))
        num = Hist3(grid)
        num.push(0, 0, 0, 5.0)
        out = num.divide(Hist3(grid))
        assert np.isnan(out.signal).all()
