"""End-to-end trace tests on the tiny Benzil workload.

Four pillars:

* **golden schema** — each implementation's trace carries the required
  span names and attributes (workflow/cross_section/run/stage/kernel);
* **per-rank streams** — under ``run_world(size=4)`` every rank
  produces its own attributed span stream with correct nesting;
* **bit-identical results** — tracing on vs :data:`Tracer.DISABLED`
  leaves the cross-section untouched, bit for bit;
* **differential timings** — the ``StageTimings`` derived from the
  trace equals the live accumulator exactly.
"""

import numpy as np
import pytest

from repro.core.geom_cache import GeomCache
from repro.core.workflow import ReductionWorkflow, WorkflowConfig
from repro.mpi import run_world
from repro.proxy.cpp_proxy import CppProxyConfig, CppProxyWorkflow
from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow
from repro.util import trace as trace_mod
from repro.util.timers import StageTimings
from repro.util.trace import (
    Tracer,
    stage_timings_from_records,
    use_tracer,
    validate_file,
)

STAGE_NAMES = {"UpdateEvents", "MDNorm", "BinMD", "Total"}


def _core_workflow(exp, backend="serial", cache=None) -> ReductionWorkflow:
    return ReductionWorkflow(WorkflowConfig(
        md_paths=exp.md_paths,
        flux_path=exp.flux_path,
        vanadium_path=exp.vanadium_path,
        instrument=exp.instrument,
        grid=exp.grid,
        point_group=exp.point_group,
        backend=backend,
        geom_cache=cache if cache is not None else GeomCache(),
    ))


def _spans_by_name(records):
    out = {}
    for rec in records:
        out.setdefault(rec["name"], []).append(rec)
    return out


class TestGoldenSchema:
    def test_core_workflow_trace_schema(self, tiny_experiment):
        tracer = Tracer(label="core")
        with use_tracer(tracer):
            _core_workflow(tiny_experiment).run()
        spans = _spans_by_name(tracer.records)

        wf = spans["workflow"]
        assert len(wf) == 1
        assert wf[0]["attrs"]["implementation"] == "core"
        assert wf[0]["attrs"]["kind"] == "workflow"

        cs = spans["cross_section"]
        assert cs[0]["attrs"]["kind"] == "algorithm"
        assert cs[0]["attrs"]["n_runs"] == 3
        assert cs[0]["parent_id"] == wf[0]["span_id"]

        runs = spans["run"]
        assert sorted(r["attrs"]["run"] for r in runs) == [0, 1, 2]

        for name in STAGE_NAMES:
            assert name in spans, f"missing stage span {name}"
            for rec in spans[name]:
                assert rec["attrs"]["kind"] == "stage"

        assert "mdnorm" in spans and "binmd" in spans
        assert spans["mdnorm"][0]["attrs"]["kind"] == "op"
        assert "mpi_reduce" in spans

        # kernel spans from the jacc layer, tagged with the backend
        assert "kernel:mdnorm" in spans
        assert "kernel:bin_events" in spans
        for rec in spans["kernel:bin_events"]:
            assert rec["attrs"]["backend"] == "serial"
            assert rec["attrs"]["kind"] == "kernel"

        counters = tracer.counters
        assert counters.get("binmd.events", 0) > 0
        assert counters.get("mdnorm.trajectories", 0) > 0
        assert counters.get("h5lite.bytes_read", 0) > 0
        assert counters.get("jacc.launches", 0) > 0

    def test_cpp_proxy_trace_schema(self, tiny_experiment):
        exp = tiny_experiment
        tracer = Tracer(label="cpp")
        cfg = CppProxyConfig(
            md_paths=exp.md_paths,
            flux_path=exp.flux_path,
            vanadium_path=exp.vanadium_path,
            instrument=exp.instrument,
            grid=exp.grid,
            point_group=exp.point_group,
            n_threads=1,
        )
        with use_tracer(tracer):
            CppProxyWorkflow(cfg).run()
        spans = _spans_by_name(tracer.records)
        assert spans["workflow"][0]["attrs"]["implementation"] == "cpp_proxy"
        assert len(spans["cpp.mdnorm"]) == 3
        assert len(spans["cpp.binmd"]) == 3
        for name in STAGE_NAMES:
            assert name in spans
        # the proxy kernels replace the jacc kernels entirely
        assert not any(n.startswith("kernel:") for n in spans)

    def test_minivates_trace_schema(self, tiny_experiment):
        exp = tiny_experiment
        tracer = Tracer(label="mv")
        cfg = MiniVatesConfig(
            md_paths=exp.md_paths,
            flux_path=exp.flux_path,
            vanadium_path=exp.vanadium_path,
            instrument=exp.instrument,
            grid=exp.grid,
            point_group=exp.point_group,
        )
        with use_tracer(tracer):
            MiniVatesWorkflow(cfg).run()
        spans = _spans_by_name(tracer.records)
        wf = spans["workflow"][0]["attrs"]
        assert wf["implementation"] == "minivates"
        assert wf["backend"] == "vectorized"
        kernel_backends = {
            rec["attrs"]["backend"]
            for name, recs in spans.items() if name.startswith("kernel:")
            for rec in recs
        }
        assert kernel_backends == {"vectorized"}
        gauges = tracer.gauges
        assert gauges["minivates.bytes_h2d"] > 0
        assert gauges["minivates.kernel_launches"] > 0
        assert tracer.counters.get("jacc.bytes_h2d", 0) > 0


class TestPerRankStreams:
    def test_run_world_four_ranks(self, tiny_experiment):
        tracer = Tracer(label="ranks")
        workflow = _core_workflow(tiny_experiment)
        with use_tracer(tracer):
            run_world(4, lambda comm: workflow.run(comm))
        records = tracer.records
        spans = _spans_by_name(records)
        rank_spans = spans["rank"]
        assert sorted(r["attrs"]["rank"] for r in rank_spans) == [0, 1, 2, 3]

        by_id = {r["span_id"]: r for r in records}

        def root_rank(rec):
            while rec["parent_id"] is not None:
                rec = by_id[rec["parent_id"]]
            return rec

        # every cross_section span sits under its own rank's root span,
        # and its rank attribution matches
        for cs in spans["cross_section"]:
            assert cs["rank"] is not None
            root = root_rank(cs)
            assert root["name"] == "rank"
            assert root["attrs"]["rank"] == cs["rank"]
            assert cs["attrs"]["mpi_size"] == 4

        # 3 runs over 4 ranks: each run span belongs to exactly one rank
        run_ranks = [r["rank"] for r in spans["run"]]
        assert len(run_ranks) == 3
        for r in spans["run"]:
            assert r["rank"] is not None

        # the summary renders one block per rank
        text = tracer.summary()
        for rank in range(4):
            assert f"rank {rank}" in text

    def test_per_rank_stage_timings_derivable(self, tiny_experiment):
        tracer = Tracer()
        workflow = _core_workflow(tiny_experiment)
        with use_tracer(tracer):
            run_world(2, lambda comm: workflow.run(comm))
        t0 = stage_timings_from_records(tracer.records, rank=0)
        t1 = stage_timings_from_records(tracer.records, rank=1)
        # both ranks timed a Total; the per-rank MDNorm call counts sum
        # to the number of runs
        assert t0.stages["Total"].ncalls == 1
        assert t1.stages["Total"].ncalls == 1
        n_calls = (t0.stages["MDNorm"].ncalls if "MDNorm" in t0.stages else 0) \
            + (t1.stages["MDNorm"].ncalls if "MDNorm" in t1.stages else 0)
        assert n_calls == 3


class TestBitIdentical:
    def test_tracing_on_off_identical_cross_section(self, tiny_experiment):
        # fresh caches so neither run warms the other
        on = _core_workflow(tiny_experiment, cache=GeomCache()).run
        off = _core_workflow(tiny_experiment, cache=GeomCache()).run

        tracer = Tracer(label="on")
        with use_tracer(tracer):
            res_on = on()
        with use_tracer(trace_mod.DISABLED):
            res_off = off()

        assert tracer.n_spans > 0
        np.testing.assert_array_equal(res_on.cross_section.signal,
                                      res_off.cross_section.signal)
        np.testing.assert_array_equal(res_on.binmd.signal,
                                      res_off.binmd.signal)
        np.testing.assert_array_equal(res_on.mdnorm.signal,
                                      res_off.mdnorm.signal)


class TestDifferentialTimings:
    def test_trace_derived_equals_live_stagetimings(self, tiny_experiment):
        tracer = Tracer(label="diff")
        timings = StageTimings(label="diff")
        with use_tracer(tracer):
            _core_workflow(tiny_experiment).run(timings=timings)
        derived = stage_timings_from_records(tracer.records, label="diff")
        for name in ("UpdateEvents", "MDNorm", "BinMD", "Total"):
            assert derived.seconds(name) == timings.seconds(name)  # exact
            assert derived.stages[name].ncalls == timings.stages[name].ncalls
            assert derived.first_call[name] == timings.first_call[name]
        assert derived.seconds("MDNorm + BinMD") == timings.seconds("MDNorm + BinMD")


class TestExportedFile:
    def test_written_trace_validates_and_summarizes(self, tiny_experiment,
                                                    tmp_path):
        tracer = Tracer(label="export")
        with use_tracer(tracer):
            _core_workflow(tiny_experiment).run()
        jsonl = str(tmp_path / "pipeline.jsonl")
        chrome = str(tmp_path / "pipeline_chrome.json")
        tracer.write_jsonl(jsonl)
        tracer.write_chrome_trace(chrome)

        info = validate_file(jsonl)
        for name in ("workflow", "cross_section", "run", "mdnorm", "binmd",
                     "UpdateEvents", "MDNorm", "BinMD", "Total"):
            assert name in info["span_names"]
        assert info["counters"]["binmd.events"] > 0

        # the summary reproduces the paper's WCT rows from the file alone
        from repro.util.trace import load_file, summary_from_records

        _, records = load_file(jsonl)
        text = summary_from_records(records, counters=info["counters"],
                                    label=info["label"])
        for row in ("UpdateEvents", "MDNorm", "BinMD", "MDNorm + BinMD",
                    "Total", "kernel:"):
            assert row in text
