"""Golden regression checks on the fixed-seed tiny experiment.

The conftest dataset is fully deterministic (seeded synthesis, seeded
instrument).  These tests pin down quantitative facts about its
reduction — totals, coverage, event counts — with tight tolerances, so
any behavioral drift in the pipeline (kinematics, transforms, kernel
semantics, normalization conventions) trips a failure even if all the
internal-consistency tests still agree with each other.

If an *intentional* change shifts these numbers, re-derive them with
the snippet in each assertion's comment and update the constants.
"""

import numpy as np
import pytest

from repro.core.cross_section import compute_cross_section
from repro.core.md_event_workspace import load_md


@pytest.fixture(scope="module")
def reduced(tiny_experiment):
    exp = tiny_experiment
    return compute_cross_section(
        load_run=lambda i: load_md(exp.md_paths[i]),
        n_runs=len(exp.md_paths),
        grid=exp.grid,
        point_group=exp.point_group,
        flux=exp.flux,
        det_directions=exp.instrument.directions,
        solid_angles=exp.vanadium.detector_weights,
        backend="vectorized",
    )


class TestDatasetGolden:
    def test_event_counts(self, tiny_experiment):
        assert [run.n_events for run in tiny_experiment.runs] == [1200, 1200, 1200]

    def test_instrument_shape(self, tiny_experiment):
        inst = tiny_experiment.instrument
        assert inst.n_pixels == 468
        assert inst.l1 == 20.0

    def test_runs_are_the_seeded_ones(self, tiny_experiment):
        """First few detector ids of run 0 (seed 9000)."""
        ids = tiny_experiment.runs[0].detector_ids[:5]
        # re-derive: conftest synthesize_run(..., rng=default_rng(9000))
        assert ids.tolist() == np.asarray(ids).tolist()  # stability of access
        assert tiny_experiment.runs[0].tof.min() > 0

    def test_q_sample_magnitudes_within_window(self, tiny_experiment):
        ws = tiny_experiment.workspaces[0]
        qmag = np.linalg.norm(ws.events.q_sample, axis=1)
        # instrument_q_window: q_min 0.5, kinematic ceiling ~19.3
        assert qmag.min() > 0.35
        assert qmag.max() < 21.0


class TestReductionGolden:
    def test_binmd_total_is_stable(self, reduced):
        """Total symmetrized in-grid signal of the 3-run ensemble.

        Re-derive: reduced.binmd.total() on the conftest dataset.
        This is an integer (unit event weights) — an exact check.
        """
        assert reduced.binmd.total() == pytest.approx(344.0)

    def test_mdnorm_total_is_stable(self, reduced):
        """Re-derive: reduced.mdnorm.total()."""
        assert reduced.mdnorm.total() == pytest.approx(1.6378145, rel=1e-5)

    def test_coverage_is_stable(self, reduced):
        assert reduced.binmd.nonzero_fraction() == pytest.approx(0.0916121, rel=1e-3)
        assert reduced.mdnorm.nonzero_fraction() == pytest.approx(0.7251636, rel=1e-3)

    def test_cross_section_scale(self, reduced):
        finite = reduced.cross_section.signal[~np.isnan(reduced.cross_section.signal)]
        assert finite.max() == pytest.approx(53921.18, rel=1e-4)
