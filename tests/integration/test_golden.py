"""Golden regression checks on the fixed-seed tiny experiment.

The conftest dataset is fully deterministic (seeded synthesis, seeded
instrument).  These tests pin down quantitative facts about its
reduction — totals, coverage, event counts — with tight tolerances, so
any behavioral drift in the pipeline (kinematics, transforms, kernel
semantics, normalization conventions) trips a failure even if all the
internal-consistency tests still agree with each other.

If an *intentional* change shifts these numbers, re-derive them with
the snippet in each assertion's comment and update the constants.
"""

import numpy as np
import pytest

from repro.core.cross_section import compute_cross_section
from repro.core.geom_cache import GeomCache
from repro.core.md_event_workspace import load_md


def _reduce(exp, *, cache=None, solid_angles=None):
    return compute_cross_section(
        load_run=lambda i: load_md(exp.md_paths[i]),
        n_runs=len(exp.md_paths),
        grid=exp.grid,
        point_group=exp.point_group,
        flux=exp.flux,
        det_directions=exp.instrument.directions,
        solid_angles=(
            exp.vanadium.detector_weights if solid_angles is None else solid_angles
        ),
        backend="vectorized",
        cache=cache,
    )


@pytest.fixture(scope="module")
def reduced(tiny_experiment):
    return _reduce(tiny_experiment)


class TestDatasetGolden:
    def test_event_counts(self, tiny_experiment):
        assert [run.n_events for run in tiny_experiment.runs] == [1200, 1200, 1200]

    def test_instrument_shape(self, tiny_experiment):
        inst = tiny_experiment.instrument
        assert inst.n_pixels == 468
        assert inst.l1 == 20.0

    def test_runs_are_the_seeded_ones(self, tiny_experiment):
        """First few detector ids of run 0 (seed 9000)."""
        ids = tiny_experiment.runs[0].detector_ids[:5]
        # re-derive: conftest synthesize_run(..., rng=default_rng(9000))
        assert ids.tolist() == np.asarray(ids).tolist()  # stability of access
        assert tiny_experiment.runs[0].tof.min() > 0

    def test_q_sample_magnitudes_within_window(self, tiny_experiment):
        ws = tiny_experiment.workspaces[0]
        qmag = np.linalg.norm(ws.events.q_sample, axis=1)
        # instrument_q_window: q_min 0.5, kinematic ceiling ~19.3
        assert qmag.min() > 0.35
        assert qmag.max() < 21.0


class TestReductionGolden:
    def test_binmd_total_is_stable(self, reduced):
        """Total symmetrized in-grid signal of the 3-run ensemble.

        Re-derive: reduced.binmd.total() on the conftest dataset.
        This is an integer (unit event weights) — an exact check.
        """
        assert reduced.binmd.total() == pytest.approx(344.0)

    def test_mdnorm_total_is_stable(self, reduced):
        """Re-derive: reduced.mdnorm.total()."""
        assert reduced.mdnorm.total() == pytest.approx(1.6378145, rel=1e-5)

    def test_coverage_is_stable(self, reduced):
        assert reduced.binmd.nonzero_fraction() == pytest.approx(0.0916121, rel=1e-3)
        assert reduced.mdnorm.nonzero_fraction() == pytest.approx(0.7251636, rel=1e-3)

    def test_cross_section_scale(self, reduced):
        finite = reduced.cross_section.signal[~np.isnan(reduced.cross_section.signal)]
        assert finite.max() == pytest.approx(53921.18, rel=1e-4)


class TestCacheGolden:
    """Warm-cache reruns must reproduce the committed golden numbers
    exactly, and calibration changes must invalidate, never stale-hit."""

    def test_warm_rerun_reproduces_golden_exactly(self, tiny_experiment, reduced):
        cache = GeomCache()
        cold = _reduce(tiny_experiment, cache=cache)
        warm = _reduce(tiny_experiment, cache=cache)
        # cold == warm == the golden (cache-independent) reduction
        for res in (cold, warm):
            assert np.array_equal(res.binmd.signal, reduced.binmd.signal)
            assert np.array_equal(res.mdnorm.signal, reduced.mdnorm.signal)
            assert res.binmd.total() == pytest.approx(344.0)
            assert res.mdnorm.total() == pytest.approx(1.6378145, rel=1e-5)
        # and the warm pass really was warm
        assert warm.extras["geom_cache"]["hits"] > cold.extras["geom_cache"]["hits"]
        assert cache.stats.hits > 0

    def test_calibration_mutation_invalidates(self, tiny_experiment):
        """Mutating the vanadium weights changes the content-digest key:
        the rerun misses and recomputes a genuinely different result."""
        exp = tiny_experiment
        cache = GeomCache()
        base = _reduce(exp, cache=cache)
        misses_after_base = cache.stats.misses

        mutated = exp.vanadium.detector_weights.copy()
        mutated[: mutated.size // 2] *= 0.5  # re-calibrate half the array
        fresh = _reduce(exp, cache=cache, solid_angles=mutated)
        # every mdnorm lookup missed (no stale reuse of the old geometry)
        assert cache.stats.misses > misses_after_base
        # and the result reflects the new calibration, not the cached one
        assert not np.array_equal(fresh.mdnorm.signal, base.mdnorm.signal)
        reference = _reduce(exp, solid_angles=mutated)  # uncached truth
        assert np.array_equal(fresh.mdnorm.signal, reference.mdnorm.signal)
        assert np.array_equal(fresh.binmd.signal, reference.binmd.signal)
