"""Unit + integration tests for synthetic event generation."""

import numpy as np
import pytest

from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import benzil
from repro.crystal.ub import UBMatrix
from repro.instruments.conversion import (
    momentum_from_q_elastic,
    q_lab_from_events,
    wavelength_to_momentum,
    tof_to_wavelength,
)
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import (
    SynthesisConfig,
    SynthesisError,
    instrument_q_window,
    make_flux,
    make_vanadium,
    synthesize_run,
)


@pytest.fixture(scope="module")
def setup():
    structure = benzil()
    instrument = make_corelli(n_pixels=600)
    ub = UBMatrix.from_u_vectors(structure.cell, [0, 0, 1], [1, 0, 0])
    return structure, instrument, ub


def _synth(setup, n=2000, seed=5, omega=25.0, **kw):
    structure, instrument, ub = setup
    return synthesize_run(
        instrument=instrument,
        structure=structure,
        ub=ub,
        goniometer=Goniometer(omega).rotation,
        n_events=n,
        rng=np.random.default_rng(seed),
        **kw,
    )


class TestQWindow:
    def test_window_shape(self, setup):
        _, instrument, _ = setup
        q_min, q_max = instrument_q_window(instrument)
        k_min, k_max = instrument.momentum_band()
        assert 0 < q_min < q_max
        assert q_max <= 2 * k_max

    def test_unreachable_q_min_rejected(self, setup):
        _, instrument, _ = setup
        with pytest.raises(Exception):
            instrument_q_window(instrument, q_min=1e6)


class TestSynthesizedEvents:
    def test_requested_count(self, setup):
        run = _synth(setup, n=1234)
        assert run.n_events == 1234
        assert run.detector_ids.shape == (1234,)
        assert run.tof.shape == (1234,)

    def test_determinism(self, setup):
        a = _synth(setup, seed=11)
        b = _synth(setup, seed=11)
        assert np.array_equal(a.detector_ids, b.detector_ids)
        assert np.array_equal(a.tof, b.tof)

    def test_different_seeds_differ(self, setup):
        a = _synth(setup, seed=1)
        b = _synth(setup, seed=2)
        assert not np.array_equal(a.detector_ids, b.detector_ids)

    def test_detector_ids_valid(self, setup):
        _, instrument, _ = setup
        run = _synth(setup)
        assert run.detector_ids.max() < instrument.n_pixels

    def test_tof_within_band(self, setup):
        """Every event's wavelength must lie in the chopper band."""
        _, instrument, _ = setup
        run = _synth(setup)
        path = instrument.flight_paths[run.detector_ids]
        lam = tof_to_wavelength(run.tof, path)
        lo, hi = instrument.wavelength_band
        assert lam.min() >= lo - 1e-9
        assert lam.max() <= hi + 1e-9

    def test_events_decode_to_elastic_q(self, setup):
        """Reducing the synthetic events must recover kinematically
        consistent Q (the inverse round trip of the generator)."""
        _, instrument, _ = setup
        run = _synth(setup)
        ids = run.detector_ids
        q_lab = q_lab_from_events(
            run.tof, instrument.directions[ids], instrument.flight_paths[ids]
        )
        k_event = wavelength_to_momentum(
            tof_to_wavelength(run.tof, instrument.flight_paths[ids])
        )
        k_recovered = momentum_from_q_elastic(q_lab)
        assert np.allclose(k_recovered, k_event, rtol=1e-9)

    def test_q_within_instrument_window(self, setup):
        _, instrument, _ = setup
        run = _synth(setup)
        ids = run.detector_ids
        q_lab = q_lab_from_events(
            run.tof, instrument.directions[ids], instrument.flight_paths[ids]
        )
        q_min, q_max = instrument_q_window(instrument)
        qmag = np.linalg.norm(q_lab, axis=1)
        # pixel snapping moves |Q| slightly; allow a few percent
        assert qmag.min() > q_min * 0.8
        assert qmag.max() < q_max * 1.05

    def test_metadata_propagated(self, setup):
        run = _synth(setup, run_number=99, proton_charge=3.5)
        assert run.run_number == 99
        assert run.proton_charge == 3.5
        assert run.instrument == "CORELLI"
        assert run.sample == "benzil"
        assert run.ub_matrix is not None

    def test_impossible_config_raises(self, setup):
        cfg = SynthesisConfig(max_batches=1, oversample=0.01)
        with pytest.raises(SynthesisError, match="accepted"):
            _synth(setup, n=100000, config=cfg)

    def test_zero_events_rejected(self, setup):
        with pytest.raises(Exception):
            _synth(setup, n=0)


class TestCorrectionsFactories:
    def test_vanadium_matches_solid_angles(self, setup):
        _, instrument, _ = setup
        van = make_vanadium(instrument, efficiency=0.5)
        assert np.allclose(van.detector_weights, instrument.solid_angles * 0.5)

    def test_vanadium_efficiency_validated(self, setup):
        _, instrument, _ = setup
        with pytest.raises(Exception):
            make_vanadium(instrument, efficiency=0.0)

    def test_flux_covers_band(self, setup):
        _, instrument, _ = setup
        flux = make_flux(instrument)
        k_min, k_max = instrument.momentum_band()
        assert flux.k_min == pytest.approx(k_min)
        assert flux.k_max == pytest.approx(k_max)
