"""Unit tests for the CORELLI and TOPAZ geometry builders."""

import numpy as np
import pytest

from repro.instruments.corelli import (
    FULL_PIXELS as CORELLI_FULL,
    L1_M as CORELLI_L1,
    RADIUS_M,
    TWO_THETA_MAX_DEG,
    make_corelli,
)
from repro.instruments.topaz import (
    FULL_PIXELS as TOPAZ_FULL,
    L1_M as TOPAZ_L1,
    N_PANELS,
    PANEL_DISTANCE_M,
    make_topaz,
)
from repro.util.validation import ValidationError


class TestCorelli:
    def test_paper_full_scale(self):
        assert CORELLI_FULL == 372_000  # Table II

    def test_pixel_count_close_to_request(self):
        det = make_corelli(n_pixels=5000)
        assert 0.8 * 5000 <= det.n_pixels <= 1.2 * 5000

    def test_scale_argument(self):
        det = make_corelli(scale=0.001)
        assert 250 <= det.n_pixels <= 450

    def test_cylindrical_radius(self):
        det = make_corelli(n_pixels=2000)
        radial = np.sqrt(det.positions[:, 0] ** 2 + det.positions[:, 2] ** 2)
        assert np.allclose(radial, RADIUS_M)

    def test_angular_coverage(self):
        det = make_corelli(n_pixels=5000)
        tt = np.degrees(det.two_theta)
        assert tt.max() == pytest.approx(TWO_THETA_MAX_DEG, abs=2.0)
        # the beam gap: no pixel within 2.5 degrees of the direct beam
        assert tt.min() > 2.4

    def test_l1(self):
        assert make_corelli(n_pixels=100).l1 == CORELLI_L1

    def test_too_few_pixels_rejected(self):
        with pytest.raises(ValidationError):
            make_corelli(n_pixels=4)

    def test_deterministic(self):
        a = make_corelli(n_pixels=1000)
        b = make_corelli(n_pixels=1000)
        assert np.array_equal(a.positions, b.positions)


class TestTopaz:
    def test_paper_full_scale(self):
        assert TOPAZ_FULL == 1_600_000  # Table II

    def test_panel_structure(self):
        det = make_topaz(n_pixels=2400)
        per_panel = det.n_pixels // N_PANELS
        assert det.n_pixels == per_panel * N_PANELS

    def test_panel_centers_on_sphere(self):
        det = make_topaz(n_pixels=N_PANELS * 4)
        # panel centers sit at PANEL_DISTANCE; pixel corners slightly further
        assert det.l2.min() == pytest.approx(PANEL_DISTANCE_M, rel=0.2)
        assert det.l2.max() < PANEL_DISTANCE_M * 1.2

    def test_short_flight_paths_vs_corelli(self):
        """TOPAZ's compact geometry is what makes its bins/events heavy."""
        topaz = make_topaz(n_pixels=500)
        corelli = make_corelli(n_pixels=500)
        assert topaz.l2.mean() < corelli.l2.mean() / 4

    def test_l1(self):
        assert make_topaz(n_pixels=200).l1 == TOPAZ_L1

    def test_wide_two_theta_coverage(self):
        det = make_topaz(n_pixels=5000)
        tt = np.degrees(det.two_theta)
        assert tt.min() < 30.0
        assert tt.max() > 130.0

    def test_too_few_pixels_rejected(self):
        with pytest.raises(ValidationError):
            make_topaz(n_pixels=10)
