"""Unit tests for the generic detector array."""

import numpy as np
import pytest

from repro.instruments.detector import DetectorArray
from repro.util.validation import ValidationError


def _array(n=9):
    """Pixels on a small ring at 2 m, plus one backscattering pixel."""
    angles = np.linspace(0.2, 2.4, n - 1)
    pos = np.column_stack(
        [2.0 * np.sin(angles), np.zeros(n - 1), 2.0 * np.cos(angles)]
    )
    pos = np.vstack([pos, [0.0, 0.0, -2.0]])
    return DetectorArray(
        name="RING",
        positions=pos,
        pixel_area=np.full(n, 1e-4),
        l1=20.0,
        wavelength_band=(0.5, 3.0),
    )


class TestGeometry:
    def test_l2_and_directions(self):
        det = _array()
        assert np.allclose(det.l2, 2.0)
        assert np.allclose(np.linalg.norm(det.directions, axis=1), 1.0)

    def test_two_theta_range(self):
        det = _array()
        assert det.two_theta.min() == pytest.approx(0.2)
        assert det.two_theta.max() == pytest.approx(np.pi)

    def test_solid_angles(self):
        det = _array()
        assert np.allclose(det.solid_angles, 1e-4 / 4.0)

    def test_flight_paths(self):
        det = _array()
        assert np.allclose(det.flight_paths, 22.0)

    def test_momentum_band(self):
        det = _array()
        k_min, k_max = det.momentum_band()
        assert k_min == pytest.approx(2 * np.pi / 3.0)
        assert k_max == pytest.approx(2 * np.pi / 0.5)


class TestNearestPixel:
    def test_exact_hits(self):
        det = _array()
        idx, hit = det.nearest_pixel(det.directions)
        assert np.all(hit)
        assert np.array_equal(idx, np.arange(det.n_pixels))

    def test_miss_far_from_coverage(self):
        det = _array()
        # a direction pointing at y has no pixel anywhere near it
        idx, hit = det.nearest_pixel(np.array([[0.0, 1.0, 0.0]]))
        assert not hit[0]

    def test_custom_max_angle(self):
        det = _array()
        d = det.directions[0].copy()
        # everything misses with a zero acceptance cone
        _, hit = det.nearest_pixel(d[None, :], max_angle=0.0)
        # chord 0 still accepts exact matches
        assert hit[0]

    def test_shape_validation(self):
        det = _array()
        with pytest.raises(ValidationError):
            det.nearest_pixel(np.zeros(3))


class TestValidation:
    def test_positions_shape(self):
        with pytest.raises(ValidationError, match="positions"):
            DetectorArray("X", np.zeros((3, 2)), np.ones(3), 20.0, (0.5, 3.0))

    def test_area_length(self):
        with pytest.raises(ValidationError, match="pixel_area"):
            DetectorArray("X", np.ones((3, 3)), np.ones(2), 20.0, (0.5, 3.0))

    def test_l1_positive(self):
        with pytest.raises(ValidationError, match="l1"):
            DetectorArray("X", np.ones((3, 3)), np.ones(3), -1.0, (0.5, 3.0))

    def test_band_order(self):
        with pytest.raises(ValidationError, match="wavelength_band"):
            DetectorArray("X", np.ones((3, 3)), np.ones(3), 20.0, (3.0, 0.5))

    def test_pixel_at_sample_rejected(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        with pytest.raises(ValidationError, match="sample position"):
            DetectorArray("X", pos, np.ones(2), 20.0, (0.5, 3.0))
