"""Unit + property tests for TOF kinematics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instruments.conversion import (
    H_OVER_MN,
    momentum_from_q_elastic,
    momentum_to_wavelength,
    q_lab_from_events,
    scattering_direction_from_q,
    tof_to_wavelength,
    wavelength_to_momentum,
    wavelength_to_tof,
)


class TestWavelengthTof:
    def test_known_value(self):
        # lambda = (h/m_n) * t / L; 1 Angstrom over 20 m -> t in seconds
        t_us = wavelength_to_tof(1.0, 20.0)
        assert t_us == pytest.approx(20.0 / H_OVER_MN * 1e6)

    @given(lam=st.floats(0.3, 5.0), path=st.floats(1.0, 30.0))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, lam, path):
        assert tof_to_wavelength(wavelength_to_tof(lam, path), path) == pytest.approx(lam)

    def test_vectorized(self):
        lam = np.array([0.5, 1.0, 2.0])
        paths = np.array([10.0, 20.0, 30.0])
        t = wavelength_to_tof(lam, paths)
        assert t.shape == (3,)
        assert np.allclose(tof_to_wavelength(t, paths), lam)


class TestMomentum:
    def test_k_of_2pi_angstrom(self):
        assert wavelength_to_momentum(2 * np.pi) == pytest.approx(1.0)

    @given(lam=st.floats(0.3, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, lam):
        assert momentum_to_wavelength(wavelength_to_momentum(lam)) == pytest.approx(lam)


class TestQLab:
    def test_forward_scattering_gives_zero_q(self):
        q = q_lab_from_events(
            np.array([1000.0]), np.array([[0.0, 0.0, 1.0]]), np.array([20.0])
        )
        assert np.allclose(q, 0.0, atol=1e-12)

    def test_90_degree_scattering(self):
        lam = 2.0
        tof = wavelength_to_tof(lam, 21.0)
        q = q_lab_from_events(np.array([tof]), np.array([[1.0, 0.0, 0.0]]), np.array([21.0]))
        k = 2 * np.pi / lam
        assert np.allclose(q[0], [-k, 0.0, k])

    def test_elastic_condition(self):
        """|k_f| must equal |k_i| for every event."""
        rng = np.random.default_rng(3)
        d = rng.normal(size=(100, 3))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        tof = rng.uniform(1000, 10000, 100)
        path = rng.uniform(15, 25, 100)
        q = q_lab_from_events(tof, d, path)
        k = wavelength_to_momentum(tof_to_wavelength(tof, path))
        k_f = np.zeros_like(q)
        k_f[:, 2] = k
        k_f -= q  # k_f = k_i - q
        assert np.allclose(np.linalg.norm(k_f, axis=1), k)

    def test_bad_direction_shape_rejected(self):
        with pytest.raises(Exception):
            q_lab_from_events(np.array([1.0]), np.array([1.0, 0.0, 0.0]), np.array([20.0]))


class TestElasticInverse:
    @given(
        tt=st.floats(5.0, 170.0),
        az=st.floats(0.0, 360.0),
        lam=st.floats(0.4, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_momentum_from_q_inverts_q_from_direction(self, tt, az, lam):
        """Generate Q from a scattering geometry, recover k and d_hat."""
        k = 2 * np.pi / lam
        tt_r, az_r = np.radians(tt), np.radians(az)
        d_hat = np.array(
            [np.sin(tt_r) * np.cos(az_r), np.sin(tt_r) * np.sin(az_r), np.cos(tt_r)]
        )
        q = k * (np.array([0.0, 0.0, 1.0]) - d_hat)
        assert momentum_from_q_elastic(q) == pytest.approx(k, rel=1e-9)
        d_back = scattering_direction_from_q(q, np.array(k))
        assert np.allclose(d_back, d_hat, atol=1e-9)

    def test_unreachable_q_returns_inf(self):
        q = np.array([[0.0, 0.0, -1.0], [1.0, 0.0, 0.0]])
        k = momentum_from_q_elastic(q)
        assert np.isinf(k[0])
        assert np.isinf(k[1])  # q_z == 0 also unreachable

    def test_batch_shapes(self):
        q = np.random.default_rng(0).normal(size=(10, 3))
        q[:, 2] = np.abs(q[:, 2]) + 0.1
        k = momentum_from_q_elastic(q)
        d = scattering_direction_from_q(q, k)
        assert k.shape == (10,)
        assert d.shape == (10, 3)
        assert np.allclose(np.linalg.norm(d, axis=1), 1.0)
