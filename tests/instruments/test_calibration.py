"""Tests for the simulated vanadium calibration pipeline."""

import numpy as np
import pytest

from repro.instruments.calibration import (
    calibrate_from_counts,
    calibration_residual,
    simulate_vanadium_run,
)
from repro.instruments.corelli import make_corelli
from repro.instruments.synth import make_vanadium
from repro.nexus.corrections import VanadiumData


@pytest.fixture(scope="module")
def instrument():
    return make_corelli(n_pixels=400)


class TestSimulateRun:
    def test_counts_shape_and_sign(self, instrument, rng):
        counts = simulate_vanadium_run(instrument, rng, total_counts=1e5)
        assert counts.shape == (instrument.n_pixels,)
        assert np.all(counts >= 0)

    def test_total_counts_approximately_requested(self, instrument, rng):
        counts = simulate_vanadium_run(instrument, rng, total_counts=2e5)
        assert counts.sum() == pytest.approx(2e5, rel=0.05)

    def test_rate_follows_solid_angle(self, instrument, rng):
        """With flat solid angles (CORELLI pixels are uniform) and a
        gradient efficiency, counts follow the efficiency."""
        eff = np.linspace(0.5, 1.5, instrument.n_pixels)
        counts = simulate_vanadium_run(instrument, rng, total_counts=5e6,
                                       efficiency=eff)
        corr = np.corrcoef(counts, instrument.solid_angles * eff)[0, 1]
        assert corr > 0.9

    def test_validation(self, instrument, rng):
        with pytest.raises(Exception):
            simulate_vanadium_run(instrument, rng, total_counts=0)
        with pytest.raises(Exception):
            simulate_vanadium_run(instrument, rng, efficiency=np.ones(3))


class TestCalibrate:
    def test_converges_to_reference_with_statistics(self, instrument):
        """More vanadium counts -> smaller residual against the analytic
        solid-angle reference."""
        reference = make_vanadium(instrument)
        residuals = []
        for total in (1e4, 1e6, 1e8):
            rng = np.random.default_rng(42)
            counts = simulate_vanadium_run(instrument, rng, total_counts=total)
            measured = calibrate_from_counts(counts)
            residuals.append(calibration_residual(measured, reference))
        assert residuals[0] > residuals[1] > residuals[2]
        assert residuals[2] < 0.02  # 1e8 counts pins the response to ~1%

    def test_dead_pixels_masked(self):
        counts = np.array([100.0, 0.0, 250.0, 0.5])
        van = calibrate_from_counts(counts, min_counts=1.0)
        assert van.detector_weights[1] == 0.0
        assert van.detector_weights[3] == 0.0
        assert van.n_masked == 2

    def test_unit_mean_normalization(self):
        counts = np.array([10.0, 20.0, 30.0])
        van = calibrate_from_counts(counts)
        assert van.detector_weights.mean() == pytest.approx(1.0)

    def test_all_dead(self):
        van = calibrate_from_counts(np.zeros(5))
        assert van.n_masked == 5

    def test_1d_required(self):
        with pytest.raises(Exception):
            calibrate_from_counts(np.zeros((2, 2)))


class TestResidual:
    def test_identical_calibrations_zero(self):
        v = VanadiumData(detector_weights=np.linspace(0.5, 1.5, 10))
        assert calibration_residual(v, v) == pytest.approx(0.0)

    def test_scale_invariant(self):
        a = VanadiumData(detector_weights=np.linspace(0.5, 1.5, 10))
        b = VanadiumData(detector_weights=7.0 * np.linspace(0.5, 1.5, 10))
        assert calibration_residual(a, b) == pytest.approx(0.0)

    def test_disjoint_live_sets_inf(self):
        a = VanadiumData(detector_weights=np.array([1.0, 0.0]))
        b = VanadiumData(detector_weights=np.array([0.0, 1.0]))
        assert calibration_residual(a, b) == np.inf

    def test_shape_mismatch(self):
        a = VanadiumData(detector_weights=np.ones(3))
        b = VanadiumData(detector_weights=np.ones(4))
        with pytest.raises(Exception):
            calibration_residual(a, b)

    def test_measured_calibration_reduces_like_reference(self, instrument,
                                                         tiny_experiment):
        """Plugging a high-statistics measured calibration into MDNorm
        gives (nearly) the same normalization as the analytic one."""
        from repro.core.hist3 import Hist3
        from repro.core.mdnorm import mdnorm

        exp = tiny_experiment
        rng = np.random.default_rng(7)
        counts = simulate_vanadium_run(exp.instrument, rng, total_counts=1e8)
        measured = calibrate_from_counts(counts)
        ws = exp.workspaces[0]
        traj = exp.grid.transforms_for(ws.ub_matrix, exp.point_group,
                                       goniometer=ws.goniometer)

        def norm_with(weights):
            h = Hist3(exp.grid)
            mdnorm(h, traj, exp.instrument.directions, weights, exp.flux,
                   ws.momentum_band, backend="vectorized")
            return h.signal

        a = norm_with(measured.detector_weights)
        b = norm_with(exp.vanadium.detector_weights
                      / exp.vanadium.detector_weights.mean())
        live = b > 0
        assert np.allclose(a[live], b[live], rtol=0.05)
