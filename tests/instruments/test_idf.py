"""Unit tests for instrument definition files."""

import numpy as np
import pytest

from repro.instruments.corelli import make_corelli
from repro.instruments.idf import read_instrument, write_instrument
from repro.instruments.topaz import make_topaz
from repro.nexus.h5lite import File, H5LiteError


@pytest.mark.parametrize("factory", [make_corelli, make_topaz],
                         ids=["corelli", "topaz"])
def test_roundtrip_preserves_geometry(tmp_path, factory):
    original = factory(n_pixels=500)
    path = str(tmp_path / "idf.h5")
    write_instrument(path, original)
    back = read_instrument(path)
    assert back.name == original.name
    assert back.l1 == original.l1
    assert back.wavelength_band == original.wavelength_band
    assert np.array_equal(back.positions, original.positions)
    assert np.array_equal(back.pixel_area, original.pixel_area)
    # derived geometry identical too
    assert np.allclose(back.directions, original.directions)
    assert np.allclose(back.solid_angles, original.solid_angles)


def test_loaded_instrument_reduces_identically(tmp_path, tiny_experiment):
    """A reduction driven by the file-loaded geometry matches one driven
    by the in-memory instrument — datasets are self-contained."""
    from repro.core.hist3 import Hist3
    from repro.core.mdnorm import mdnorm

    exp = tiny_experiment
    path = str(tmp_path / "idf.h5")
    write_instrument(path, exp.instrument)
    loaded = read_instrument(path)
    ws = exp.workspaces[0]
    traj_t = exp.grid.transforms_for(ws.ub_matrix, exp.point_group,
                                     goniometer=ws.goniometer)
    a = Hist3(exp.grid)
    mdnorm(a, traj_t, exp.instrument.directions, exp.vanadium.detector_weights,
           exp.flux, ws.momentum_band, backend="vectorized")
    b = Hist3(exp.grid)
    mdnorm(b, traj_t, loaded.directions, exp.vanadium.detector_weights,
           exp.flux, ws.momentum_band, backend="vectorized")
    assert np.allclose(a.signal, b.signal)


def test_missing_group_rejected(tmp_path):
    path = str(tmp_path / "empty.h5")
    with File(path, "w") as f:
        f.create_group("something_else")
    with pytest.raises(H5LiteError, match="instrument"):
        read_instrument(path)


def test_workload_writes_idf(tmp_path, monkeypatch):
    from repro.bench.workloads import benzil_corelli, build_workload

    monkeypatch.setenv("REPRO_BENCH_DATA", str(tmp_path))
    data = build_workload(benzil_corelli(scale=0.0002, n_files=1))
    loaded = read_instrument(data.instrument_path)
    assert loaded.name == "CORELLI"
    assert loaded.n_pixels == data.instrument.n_pixels
