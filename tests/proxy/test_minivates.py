"""Unit tests for the MiniVATES device-back-end proxy."""

import numpy as np
import pytest

from repro.core.workflow import ReductionWorkflow, WorkflowConfig
from repro.jacc.jit import GLOBAL_JIT
from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow
from repro.util.validation import ValidationError


def _config(exp, **over):
    kwargs = dict(
        md_paths=exp.md_paths,
        flux_path=exp.flux_path,
        vanadium_path=exp.vanadium_path,
        instrument=exp.instrument,
        grid=exp.grid,
        point_group=exp.point_group,
    )
    kwargs.update(over)
    return MiniVatesConfig(**kwargs)


class TestEquality:
    def test_matches_core_workflow(self, tiny_experiment):
        mv = MiniVatesWorkflow(_config(tiny_experiment)).run()
        core = ReductionWorkflow(
            WorkflowConfig(
                md_paths=tiny_experiment.md_paths,
                flux_path=tiny_experiment.flux_path,
                vanadium_path=tiny_experiment.vanadium_path,
                instrument=tiny_experiment.instrument,
                grid=tiny_experiment.grid,
                point_group=tiny_experiment.point_group,
                backend="serial",
            )
        ).run()
        assert np.allclose(mv.binmd.signal, core.binmd.signal)
        assert np.allclose(mv.mdnorm.signal, core.mdnorm.signal, rtol=1e-10)
        assert mv.backend == "minivates"

    @pytest.mark.parametrize("sort_impl", ["comb", "library"])
    @pytest.mark.parametrize("scatter_impl", ["atomic", "buffered"])
    def test_device_profiles_agree(self, tiny_experiment, sort_impl, scatter_impl):
        """MI100-like and A100-like configurations differ only in speed."""
        base = MiniVatesWorkflow(_config(tiny_experiment)).run()
        other = MiniVatesWorkflow(
            _config(tiny_experiment, sort_impl=sort_impl, scatter_impl=scatter_impl)
        ).run()
        assert np.allclose(base.binmd.signal, other.binmd.signal)
        assert np.allclose(base.mdnorm.signal, other.mdnorm.signal, rtol=1e-10)


class TestJITAccounting:
    def test_cold_start_recompiles(self, tiny_experiment):
        MiniVatesWorkflow(_config(tiny_experiment, cold_start=True)).run()
        first = len(GLOBAL_JIT.compile_events)
        assert first > 0
        res = MiniVatesWorkflow(_config(tiny_experiment, cold_start=True)).run()
        assert res.extras["jit_compile_events"] > 0

    def test_warm_start_reuses_cache(self, tiny_experiment):
        MiniVatesWorkflow(_config(tiny_experiment, cold_start=True)).run()
        res = MiniVatesWorkflow(_config(tiny_experiment, cold_start=False)).run()
        assert res.extras["jit_compile_events"] == len(GLOBAL_JIT.compile_events)

    def test_first_call_stage_times_recorded(self, tiny_experiment):
        res = MiniVatesWorkflow(_config(tiny_experiment)).run()
        for stage in ("UpdateEvents", "MDNorm", "BinMD"):
            assert stage in res.timings.first_call


class TestDeviceDiscipline:
    def test_transfers_counted(self, tiny_experiment):
        res = MiniVatesWorkflow(_config(tiny_experiment)).run()
        # events + geometry went host->device
        event_bytes = sum(ws.events.data.nbytes for ws in tiny_experiment.workspaces)
        assert res.extras["bytes_h2d"] >= event_bytes
        # the MAX-workaround pre-pass copied counts device->host
        assert res.extras["bytes_d2h"] > 0
        assert res.extras["kernel_launches"] >= 3 * len(tiny_experiment.md_paths)

    def test_config_validation(self, tiny_experiment):
        with pytest.raises(ValidationError):
            _config(tiny_experiment, sort_impl="bogo")
        with pytest.raises(ValidationError):
            _config(tiny_experiment, scatter_impl="hope")
        with pytest.raises(ValidationError):
            _config(tiny_experiment, md_paths=[])
