"""Unit tests for the C++ proxy's optimized CPU kernels."""

import numpy as np
import pytest

from repro.core.binmd import bin_events
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.mdnorm import mdnorm
from repro.core.workflow import ReductionWorkflow, WorkflowConfig
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.events import EventTable
from repro.proxy.cpp_proxy import (
    CppProxyConfig,
    CppProxyWorkflow,
    cpp_bin_md,
    cpp_md_norm,
)
from repro.util.validation import ValidationError


@pytest.fixture()
def grid():
    return HKLGrid(
        basis=np.eye(3), minimum=(-2.0, -2.0, -0.5), maximum=(2.0, 2.0, 0.5),
        bins=(14, 14, 1),
    )


@pytest.fixture()
def flux():
    k = np.linspace(1.0, 12.0, 48)
    return FluxSpectrum(momentum=k, density=np.exp(-0.05 * k))


OPS = np.stack([np.eye(3), -np.eye(3)])
BAND = (2.0, 9.0)


class TestCppBinMd:
    def test_matches_core(self, grid, rng):
        events = EventTable.from_columns(
            signal=rng.random(400),
            q_sample=rng.uniform(-2.5, 2.5, size=(400, 3)),
        )
        a = Hist3(grid, track_errors=True)
        cpp_bin_md(a, events, OPS)
        b = Hist3(grid, track_errors=True)
        bin_events(b, events, OPS, backend="serial")
        assert np.allclose(a.signal, b.signal)
        assert np.allclose(a.error_sq, b.error_sq)

    def test_empty_events(self, grid):
        h = Hist3(grid)
        cpp_bin_md(h, EventTable.empty(), OPS)
        assert h.total() == 0.0

    def test_transform_validation(self, grid):
        with pytest.raises(ValidationError):
            cpp_bin_md(Hist3(grid), EventTable.empty(), np.eye(3))


class TestCppMdNorm:
    def _dets(self, rng, n=40):
        d = rng.normal(size=(n, 3))
        return d / np.linalg.norm(d, axis=1, keepdims=True)

    def test_matches_core(self, grid, flux, rng):
        dets = self._dets(rng)
        solid = rng.random(40)
        a = Hist3(grid)
        cpp_md_norm(a, OPS, dets, solid, flux, BAND, charge=1.3, n_threads=1)
        b = Hist3(grid)
        mdnorm(b, OPS, dets, solid, flux, BAND, charge=1.3, backend="vectorized")
        assert np.allclose(a.signal, b.signal, rtol=1e-9, atol=1e-15)

    def test_threaded_equals_serial(self, grid, flux, rng):
        dets = self._dets(rng, 60)
        solid = rng.random(60)
        a = Hist3(grid)
        cpp_md_norm(a, OPS, dets, solid, flux, BAND, n_threads=1)
        b = Hist3(grid)
        cpp_md_norm(b, OPS, dets, solid, flux, BAND, n_threads=4)
        assert np.allclose(a.signal, b.signal, rtol=1e-12)

    def test_charge_linearity(self, grid, flux, rng):
        dets = self._dets(rng, 20)
        a = Hist3(grid)
        cpp_md_norm(a, OPS, dets, np.ones(20), flux, BAND, charge=1.0)
        b = Hist3(grid)
        cpp_md_norm(b, OPS, dets, np.ones(20), flux, BAND, charge=3.0)
        assert np.allclose(b.signal, 3.0 * a.signal)


class TestCppProxyWorkflow:
    def test_matches_core_workflow(self, tiny_experiment):
        cpp = CppProxyWorkflow(
            CppProxyConfig(
                md_paths=tiny_experiment.md_paths,
                flux_path=tiny_experiment.flux_path,
                vanadium_path=tiny_experiment.vanadium_path,
                instrument=tiny_experiment.instrument,
                grid=tiny_experiment.grid,
                point_group=tiny_experiment.point_group,
            )
        ).run()
        core = ReductionWorkflow(
            WorkflowConfig(
                md_paths=tiny_experiment.md_paths,
                flux_path=tiny_experiment.flux_path,
                vanadium_path=tiny_experiment.vanadium_path,
                instrument=tiny_experiment.instrument,
                grid=tiny_experiment.grid,
                point_group=tiny_experiment.point_group,
                backend="vectorized",
            )
        ).run()
        assert np.allclose(cpp.binmd.signal, core.binmd.signal)
        assert np.allclose(cpp.mdnorm.signal, core.mdnorm.signal, rtol=1e-9)
        assert cpp.backend == "cpp-proxy"

    def test_vanadium_mismatch_rejected(self, tiny_experiment):
        from repro.instruments.corelli import make_corelli

        with pytest.raises(ValidationError, match="vanadium"):
            CppProxyWorkflow(
                CppProxyConfig(
                    md_paths=tiny_experiment.md_paths,
                    flux_path=tiny_experiment.flux_path,
                    vanadium_path=tiny_experiment.vanadium_path,
                    instrument=make_corelli(n_pixels=64),
                    grid=tiny_experiment.grid,
                    point_group=tiny_experiment.point_group,
                )
            )
