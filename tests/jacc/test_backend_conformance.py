"""Cross-back-end conformance matrix (ISSUE 5 satellite a).

One parameterized suite run against **every registered back end** —
the matrix rows come from :func:`repro.jacc.available_backends` at
collection time, so a future back end (CUDA bindings, a JIT engine,
...) registers into the matrix automatically just by calling
``register_backend``; ``test_future_backends_auto_register`` proves
that property by temporarily registering a probe back end and watching
the same oracle checks run against it.

Columns: {parallel_for (1-D, 2-D), parallel_reduce (+ / max / min),
atomic Hist3 accumulation} × 50 seeds, asserted against the serial
oracle.

Bit-identity tiers (the determinism contract, DESIGN.md §6f):

* disjoint writes (``parallel_for``) — bit-identical on every back end
  (no accumulation, no fold order);
* histogram deposits with *integer-valued* weights — bit-identical on
  every back end (integer adds are exact under any association);
* histogram deposits with float weights — bit-identical to serial for
  the ORDER_EXACT back ends (serial / vectorized / multiprocess /
  fused, whose per-bin fold replays the serial deposit order); threads
  interleaves chunk deposits under the GIL, so it is held to
  ``allclose`` only;
* reductions — ``max``/``min`` are associative ⇒ exactly equal on
  every CPU back end; ``+`` is exactly equal for integer-valued
  elements and deterministic (run-to-run and worker-count invariant)
  for floats; the device back end rejects ``max``/``min`` (the JACC.jl
  limitation the paper documents).
"""

import numpy as np
import pytest

from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.jacc import (
    BackendError,
    Kernel,
    available_backends,
    get_backend,
    parallel_for,
    parallel_reduce,
)
from repro.jacc.backend import _REGISTRY, Backend, register_backend
from repro.jacc.kernels import make_captures
from repro.jacc.serial import SerialBackend
from repro.jacc.workers import GLOBAL_POOL

N_SEEDS = 50

#: the matrix rows: every back end registered at collection time
BACKENDS = tuple(available_backends())

#: back ends whose float deposit/fold order equals the serial oracle's
ORDER_EXACT = ("serial", "vectorized", "multiprocess", "fused")

#: back ends held to ``allclose`` only for float deposits (GIL
#: interleaving reorders the fold)
ORDER_RELAXED = ("threads",)


def _cpu_backends():
    return tuple(n for n in BACKENDS if get_backend(n).device_kind != "device")


def _device_backends():
    return tuple(n for n in BACKENDS if get_backend(n).device_kind == "device")


@pytest.fixture(scope="module", autouse=True)
def _dispose_pool_after_module():
    yield
    GLOBAL_POOL.dispose()


# ---------------------------------------------------------------------------
# kernels — module-level bodies so the multiprocess back end can pickle
# them by reference
# ---------------------------------------------------------------------------

def _saxpy_element(ctx, i):
    ctx.out[i] = ctx.a * ctx.x[i] + ctx.y[i]


def _saxpy_batch(ctx, dims):
    ctx.out[...] = ctx.a * ctx.x + ctx.y


SAXPY = Kernel(name="conform_saxpy", element=_saxpy_element, batch=_saxpy_batch)


def _pair_element(ctx, n, i):
    ctx.out[n, i] = ctx.scales[n] * ctx.x[i] + float(n - i)


def _pair_batch(ctx, dims):
    n_ops, n = dims
    grid_n, grid_i = np.meshgrid(
        np.arange(n_ops, dtype=np.float64),
        np.arange(n, dtype=np.float64),
        indexing="ij",
    )
    ctx.out[...] = ctx.scales[:, None] * ctx.x[None, :] + (grid_n - grid_i)


PAIR = Kernel(name="conform_pair", element=_pair_element, batch=_pair_batch)


def _sum_sq_element(ctx, i):
    return float(ctx.x[i] * ctx.x[i])


def _sum_sq_batch(ctx, dims):
    return ctx.x * ctx.x


SUM_SQ = Kernel(name="conform_sum_sq", element=_sum_sq_element,
                batch=_sum_sq_batch)


def _value_element(ctx, i):
    return float(ctx.x[i])


def _value_batch(ctx, dims):
    return ctx.x


VALUE = Kernel(name="conform_value", element=_value_element,
               batch=_value_batch)


def _hist_element(ctx, i):
    w = ctx.w[i]
    ctx.hist.push(ctx.c0[i], ctx.c1[i], ctx.c2[i], w, w * w)


def _hist_batch(ctx, dims):
    coords = np.stack([ctx.c0, ctx.c1, ctx.c2], axis=1)
    ctx.hist.push_many(coords, ctx.w, ctx.w * ctx.w, scatter_impl="atomic")


HIST = Kernel(name="conform_hist", element=_hist_element, batch=_hist_batch)

GRID = HKLGrid(basis=np.eye(3), minimum=(-2.0, -2.0, -1.0),
               maximum=(2.0, 2.0, 1.0), bins=(5, 5, 2))


def _sizes(seed):
    """Vary the extent across seeds: exercise the chunk-grid edge cases
    (fewer items than chunks, exact multiples, remainders, singletons)."""
    return 1 + (seed * 13) % 97


def _hist_samples(seed, *, integer_weights):
    rng = np.random.default_rng(8000 + seed)
    n = 20 + (seed * 11) % 180
    # ~15% of the coordinates land outside the grid: rejection is part
    # of the conformance surface
    coords = rng.uniform(-2.4, 2.4, size=(n, 3))
    coords[:, 2] = rng.uniform(-1.2, 1.2, size=n)
    if integer_weights:
        w = rng.integers(1, 7, size=n).astype(np.float64)
    else:
        w = rng.uniform(0.1, 2.0, size=n)
    return coords, w


# ---------------------------------------------------------------------------
# parallel_for
# ---------------------------------------------------------------------------

class TestParallelForMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_1d_disjoint_writes_bit_identical(self, backend):
        for seed in range(N_SEEDS):
            rng = np.random.default_rng(seed)
            n = _sizes(seed)
            x = rng.standard_normal(n)
            y = rng.standard_normal(n)
            oracle = np.zeros(n)
            parallel_for(n, SAXPY, make_captures(a=1.7, x=x, y=y, out=oracle),
                         backend="serial")
            out = np.zeros(n)
            parallel_for(n, SAXPY, make_captures(a=1.7, x=x, y=y, out=out),
                         backend=backend)
            assert np.array_equal(out, oracle), (backend, seed)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_2d_index_space_bit_identical(self, backend):
        for seed in range(N_SEEDS):
            rng = np.random.default_rng(1000 + seed)
            n_ops = 1 + seed % 5
            n = 1 + (seed * 7) % 23
            x = rng.standard_normal(n)
            scales = rng.standard_normal(n_ops)
            oracle = np.zeros((n_ops, n))
            parallel_for((n_ops, n), PAIR,
                         make_captures(x=x, scales=scales, out=oracle),
                         backend="serial")
            out = np.zeros((n_ops, n))
            parallel_for((n_ops, n), PAIR,
                         make_captures(x=x, scales=scales, out=out),
                         backend=backend)
            assert np.array_equal(out, oracle), (backend, seed)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_extent_noop(self, backend):
        out = np.ones(3)
        parallel_for(0, SAXPY,
                     make_captures(a=1.0, x=np.ones(0), y=np.ones(0), out=out),
                     backend=backend)
        assert np.array_equal(out, np.ones(3))


# ---------------------------------------------------------------------------
# atomic Hist3 accumulation
# ---------------------------------------------------------------------------

class TestHistogramMatrix:
    def _fill(self, backend, coords, w, *, track_errors=True):
        hist = Hist3(GRID, track_errors=track_errors)
        parallel_for(
            len(w), HIST,
            make_captures(hist=hist, c0=coords[:, 0].copy(),
                          c1=coords[:, 1].copy(), c2=coords[:, 2].copy(),
                          w=w.copy()),
            backend=backend,
        )
        return hist

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_integer_weights_bit_identical_everywhere(self, backend):
        """Integer adds are exact under any association: every back end
        must reproduce the serial histogram bit for bit."""
        for seed in range(N_SEEDS):
            coords, w = _hist_samples(seed, integer_weights=True)
            oracle = self._fill("serial", coords, w)
            got = self._fill(backend, coords, w)
            assert np.array_equal(got.signal, oracle.signal), (backend, seed)
            assert np.array_equal(got.error_sq, oracle.error_sq), (backend, seed)
            assert got.signal.sum() > 0  # the samples actually deposit

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_float_weights(self, backend):
        """ORDER_EXACT back ends replay the serial deposit order ⇒
        bit-identical; the rest are within float tolerance."""
        for seed in range(N_SEEDS):
            coords, w = _hist_samples(seed, integer_weights=False)
            oracle = self._fill("serial", coords, w)
            got = self._fill(backend, coords, w)
            if backend in ORDER_EXACT:
                assert np.array_equal(got.signal, oracle.signal), (backend, seed)
                assert np.array_equal(got.error_sq, oracle.error_sq), (backend, seed)
            else:
                np.testing.assert_allclose(got.signal, oracle.signal,
                                           rtol=1e-12, atol=0.0)
                np.testing.assert_allclose(got.error_sq, oracle.error_sq,
                                           rtol=1e-12, atol=0.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_untracked_errors(self, backend):
        coords, w = _hist_samples(3, integer_weights=True)
        oracle = self._fill("serial", coords, w, track_errors=False)
        got = self._fill(backend, coords, w, track_errors=False)
        assert got.error_sq is None
        assert np.array_equal(got.signal, oracle.signal)


# ---------------------------------------------------------------------------
# parallel_reduce
# ---------------------------------------------------------------------------

class TestReduceMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sum_integer_valued_exact(self, backend):
        """Integer-valued sums are exact under any association ⇒ every
        back end equals the serial oracle exactly."""
        for seed in range(N_SEEDS):
            rng = np.random.default_rng(2000 + seed)
            n = _sizes(seed)
            x = rng.integers(-50, 50, size=n).astype(np.float64)
            oracle = parallel_reduce(n, SUM_SQ, make_captures(x=x),
                                     backend="serial")
            got = parallel_reduce(n, SUM_SQ, make_captures(x=x),
                                  backend=backend)
            assert got == oracle, (backend, seed)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sum_float_deterministic_and_close(self, backend):
        """Float sums may re-associate, but must be (a) within
        tolerance of the oracle and (b) bit-identical run to run."""
        for seed in range(0, N_SEEDS, 5):
            rng = np.random.default_rng(3000 + seed)
            n = _sizes(seed)
            x = rng.standard_normal(n)
            oracle = parallel_reduce(n, SUM_SQ, make_captures(x=x),
                                     backend="serial")
            first = parallel_reduce(n, SUM_SQ, make_captures(x=x),
                                    backend=backend)
            again = parallel_reduce(n, SUM_SQ, make_captures(x=x),
                                    backend=backend)
            assert first == again, (backend, seed)
            assert first == pytest.approx(oracle, rel=1e-12)

    @pytest.mark.parametrize("backend", _cpu_backends())
    @pytest.mark.parametrize("op", ("max", "min"))
    def test_max_min_bit_identical_on_cpu(self, backend, op):
        """max/min are exactly associative: any combine tree equals the
        serial fold bit for bit."""
        for seed in range(N_SEEDS):
            rng = np.random.default_rng(4000 + seed)
            n = _sizes(seed)
            x = rng.standard_normal(n) * 10.0
            oracle = parallel_reduce(n, VALUE, make_captures(x=x), op=op,
                                     backend="serial")
            got = parallel_reduce(n, VALUE, make_captures(x=x), op=op,
                                  backend=backend)
            assert got == oracle, (backend, op, seed)
            ref = max(x) if op == "max" else min(x)
            assert got == ref

    @pytest.mark.parametrize("backend", _device_backends())
    @pytest.mark.parametrize("op", ("max", "min"))
    def test_device_rejects_custom_ops(self, backend, op):
        """The JACC.jl limitation the paper documents, pinned for every
        device-kind back end present and future."""
        with pytest.raises(BackendError, match="only op='\\+'"):
            parallel_reduce(4, SUM_SQ, make_captures(x=np.ones(4)), op=op,
                            backend=backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_reduce_is_identity(self, backend):
        got = parallel_reduce(0, SUM_SQ, make_captures(x=np.ones(0)),
                              backend=backend)
        assert got == 0.0


# ---------------------------------------------------------------------------
# worker-count invariance (the multiprocess determinism pillar)
# ---------------------------------------------------------------------------

@pytest.mark.skipif("multiprocess" not in BACKENDS,
                    reason="multiprocess back end not registered")
class TestWorkerCountInvariance:
    def test_float_sum_invariant_to_worker_count(self, monkeypatch):
        """The pairwise tree is a function of the chunk grid only, so
        the float sum is bit-identical for 1 vs 2 workers."""
        rng = np.random.default_rng(77)
        x = rng.standard_normal(301)
        results = []
        for workers in ("1", "2"):
            monkeypatch.setenv("REPRO_NUM_PROCS", workers)
            results.append(parallel_reduce(301, SUM_SQ, make_captures(x=x),
                                           backend="multiprocess"))
        GLOBAL_POOL.dispose()
        assert results[0] == results[1]

    def test_float_hist_invariant_to_worker_count(self, monkeypatch):
        coords, w = _hist_samples(9, integer_weights=False)
        signals = []
        for workers in ("1", "2"):
            monkeypatch.setenv("REPRO_NUM_PROCS", workers)
            hist = Hist3(GRID, track_errors=True)
            parallel_for(
                len(w), HIST,
                make_captures(hist=hist, c0=coords[:, 0].copy(),
                              c1=coords[:, 1].copy(),
                              c2=coords[:, 2].copy(), w=w.copy()),
                backend="multiprocess",
            )
            signals.append((hist.signal.copy(), hist.error_sq.copy()))
        GLOBAL_POOL.dispose()
        assert np.array_equal(signals[0][0], signals[1][0])
        assert np.array_equal(signals[0][1], signals[1][1])


# ---------------------------------------------------------------------------
# auto-registration: future back ends inherit the matrix
# ---------------------------------------------------------------------------

class _ProbeBackend(SerialBackend):
    """A stand-in 'future' back end: serial semantics, new name."""

    name = "conformance-probe"
    device_kind = "cpu"


def test_future_backends_auto_register():
    """Registering a back end is sufficient to put it in the matrix:
    the row list is derived from the registry, and the oracle checks
    pass against the probe without this file changing."""
    assert set(BACKENDS) <= set(available_backends())
    probe = _ProbeBackend()
    register_backend(probe)
    try:
        rows = available_backends()
        assert "conformance-probe" in rows
        # the probe passes the same oracle checks the matrix applies
        coords, w = _hist_samples(1, integer_weights=True)
        oracle = Hist3(GRID, track_errors=True)
        got = Hist3(GRID, track_errors=True)
        for name, hist in (("serial", oracle), ("conformance-probe", got)):
            parallel_for(
                len(w), HIST,
                make_captures(hist=hist, c0=coords[:, 0].copy(),
                              c1=coords[:, 1].copy(),
                              c2=coords[:, 2].copy(), w=w.copy()),
                backend=name,
            )
        assert np.array_equal(got.signal, oracle.signal)
        assert parallel_reduce(
            8, SUM_SQ, make_captures(x=np.arange(8.0)),
            backend="conformance-probe",
        ) == parallel_reduce(8, SUM_SQ, make_captures(x=np.arange(8.0)),
                             backend="serial")
    finally:
        _REGISTRY.pop("conformance-probe", None)


def test_matrix_covers_all_expected_backends():
    """The engines ISSUE 5 names are all present in the matrix rows."""
    assert {"serial", "threads", "vectorized", "multiprocess",
            "fused"} <= set(BACKENDS)
    for name in BACKENDS:
        assert isinstance(get_backend(name), Backend)


def test_registry_completeness():
    """Every ``register_backend()`` back end is in the matrix AND is
    classified into a determinism tier.

    Registering a new engine without adding it to ORDER_EXACT or
    ORDER_RELAXED fails here on purpose: an unclassified back end would
    silently skip the strict float-deposit oracle (ORDER_EXACT rows get
    ``array_equal``; everything else only ``allclose``), so the tier
    lists must be a partition of the registry."""
    registry = set(available_backends())
    assert set(BACKENDS) == registry, (
        "matrix rows diverged from the backend registry; "
        f"matrix={sorted(BACKENDS)} registry={sorted(registry)}"
    )
    classified = set(ORDER_EXACT) | set(ORDER_RELAXED)
    unclassified = registry - classified
    assert not unclassified, (
        f"back ends {sorted(unclassified)} are registered but missing "
        "from the conformance determinism tiers (ORDER_EXACT / "
        "ORDER_RELAXED) — add each to exactly one tier"
    )
    stale = classified - registry
    assert not stale, (
        f"tier lists name unregistered back ends: {sorted(stale)}"
    )
    assert not set(ORDER_EXACT) & set(ORDER_RELAXED)
