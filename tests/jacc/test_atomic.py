"""Unit + property tests for atomic accumulation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jacc.atomic import atomic_add, atomic_add_scalar


def test_duplicate_indices_all_counted():
    """The defining difference from fancy-index +=, which drops dups."""
    target = np.zeros(4)
    idx = np.array([1, 1, 1, 2])
    atomic_add(target, idx, np.ones(4))
    assert np.array_equal(target, [0.0, 3.0, 1.0, 0.0])

    naive = np.zeros(4)
    naive[idx] += np.ones(4)  # the broken pattern
    assert naive[1] == 1.0  # demonstrates why atomic_add exists


def test_scalar_values_broadcast():
    target = np.zeros(3)
    atomic_add(target, np.array([0, 0, 2]), 2.0)
    assert np.array_equal(target, [4.0, 0.0, 2.0])


def test_atomic_add_scalar():
    target = np.zeros(2)
    atomic_add_scalar(target, 1, 5.0)
    atomic_add_scalar(target, 1, 2.0)
    assert target[1] == 7.0


@given(
    indices=st.lists(st.integers(0, 19), min_size=0, max_size=200),
)
@settings(max_examples=50, deadline=None)
def test_matches_serial_accumulation(indices):
    idx = np.array(indices, dtype=np.int64)
    vals = np.arange(1.0, len(indices) + 1.0)
    target = np.zeros(20)
    atomic_add(target, idx, vals)
    expected = np.zeros(20)
    for i, v in zip(indices, vals):
        expected[i] += v
    assert np.allclose(target, expected)
