"""Worker-count parsing + the shared process pool (ISSUE 5 satellite c).

Pins the ``_default_workers`` bugfix: ``REPRO_NUM_THREADS`` (and its
process sibling ``REPRO_NUM_PROCS``) historically went through a bare
``int()`` — garbage crashed with an opaque ``ValueError`` deep inside a
kernel launch, and ``0``/negative values were *silently clamped to 1*,
hiding configuration mistakes on batch systems where the variable is
computed (``$((SLURM_CPUS/2))`` going to zero is a bug, not a request
for one worker).  Both engines now share one validated parser that
raises a clear :class:`BackendError` naming the offending knob.
"""

import os

import pytest

from repro.jacc import parallel_for
from repro.jacc.backend import BackendError
from repro.jacc.kernels import Kernel, make_captures
from repro.jacc.multiproc import MultiprocessBackend
from repro.jacc.threads import THREADS_ENV, ThreadsBackend, _default_workers
from repro.jacc.workers import (
    GLOBAL_POOL,
    PROCS_ENV,
    WorkerPool,
    parse_worker_count,
    resolve_workers,
)


class TestParseWorkerCount:
    @pytest.mark.parametrize("value,expected", [
        (1, 1), (7, 7), ("1", 1), (" 4 ", 4), ("12", 12),
    ])
    def test_accepts_positive_integers(self, value, expected):
        assert parse_worker_count(value, source="t") == expected

    @pytest.mark.parametrize("value", ["banana", "", "  ", "3.5", "0x4", "1e2"])
    def test_rejects_garbage_with_clear_error(self, value):
        """The historical failure mode: bare int() raised an opaque
        ValueError from deep inside a launch.  Now: BackendError that
        names the knob and echoes the offending value."""
        with pytest.raises(BackendError,
                           match="must be a positive integer") as exc:
            parse_worker_count(value, source="REPRO_NUM_THREADS")
        assert "REPRO_NUM_THREADS" in str(exc.value)
        if value.strip():
            assert repr(value) in str(exc.value)

    @pytest.mark.parametrize("value", [0, -1, -16, "0", "-3"])
    def test_rejects_zero_and_negative(self, value):
        """The historical silent clamp: 0/negatives became 1 worker.
        Now an error that tells the operator how to get the default."""
        with pytest.raises(BackendError, match="must be >= 1") as exc:
            parse_worker_count(value, source="REPRO_NUM_PROCS")
        assert "unset the variable" in str(exc.value)

    @pytest.mark.parametrize("value", [True, False])
    def test_rejects_bool(self, value):
        with pytest.raises(BackendError, match="must be an integer"):
            parse_worker_count(value, source="t")

    @pytest.mark.parametrize("value", [3.0, None, [4]])
    def test_rejects_non_integers(self, value):
        with pytest.raises(BackendError, match="positive integer"):
            parse_worker_count(value, source="t")


class TestResolveWorkers:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "8")
        assert resolve_workers(THREADS_ENV, 3) == 3

    def test_env_wins_over_cpu_count(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "5")
        assert resolve_workers(THREADS_ENV) == 5

    def test_unset_env_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(THREADS_ENV, raising=False)
        assert resolve_workers(THREADS_ENV) == max(1, os.cpu_count() or 1)

    def test_empty_env_counts_as_unset(self, monkeypatch):
        """Shell idiom: REPRO_NUM_THREADS= means 'use the default'."""
        monkeypatch.setenv(THREADS_ENV, "")
        assert resolve_workers(THREADS_ENV) == max(1, os.cpu_count() or 1)
        monkeypatch.setenv(THREADS_ENV, "   ")
        assert resolve_workers(THREADS_ENV) == max(1, os.cpu_count() or 1)

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "lots")
        with pytest.raises(BackendError, match=THREADS_ENV):
            resolve_workers(THREADS_ENV)

    def test_explicit_is_validated_too(self):
        with pytest.raises(BackendError, match="n_workers"):
            resolve_workers(THREADS_ENV, 0)


class TestThreadsBackendEnvRegression:
    """The bugfix at the engine surface: the threads back end used to
    crash (garbage) or silently clamp (zero) — both now BackendError."""

    def test_default_workers_validates_garbage(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "banana")
        with pytest.raises(BackendError, match="REPRO_NUM_THREADS"):
            _default_workers()

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_default_workers_rejects_nonpositive(self, monkeypatch, value):
        """Previously max(1, int(v)) — a computed 0 ran on 1 worker and
        nobody noticed.  Now the misconfiguration is loud."""
        monkeypatch.setenv(THREADS_ENV, value)
        with pytest.raises(BackendError, match="must be >= 1"):
            _default_workers()

    def test_backend_surfaces_env_error_at_launch(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "0")
        backend = ThreadsBackend()  # no explicit count -> env is consulted
        kernel = Kernel(name="workers_probe",
                        element=lambda ctx, i: None)
        with pytest.raises(BackendError, match="must be >= 1"):
            backend.parallel_for(4, kernel, make_captures())

    def test_explicit_constructor_count_bypasses_env(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "banana")
        assert ThreadsBackend(n_workers=2).n_workers == 2

    def test_multiprocess_backend_shares_the_parser(self, monkeypatch):
        """One parser, both engines: the sibling knob gets the same
        validation (the ISSUE's 'share parser' requirement)."""
        monkeypatch.setenv(PROCS_ENV, "zero")
        with pytest.raises(BackendError, match=PROCS_ENV):
            _ = MultiprocessBackend().n_workers
        monkeypatch.setenv(PROCS_ENV, "-4")
        with pytest.raises(BackendError, match="must be >= 1"):
            _ = MultiprocessBackend().n_workers
        monkeypatch.setenv(PROCS_ENV, "3")
        assert MultiprocessBackend().n_workers == 3


class TestWorkerPool:
    def test_lazy_and_reused_for_same_size(self):
        pool = WorkerPool()
        assert pool.size == 0
        try:
            ex1 = pool.executor(1)
            assert pool.size == 1
            assert pool.executor(1) is ex1
        finally:
            pool.dispose()
        assert pool.size == 0

    def test_resized_on_different_count(self):
        pool = WorkerPool()
        try:
            ex1 = pool.executor(1)
            ex2 = pool.executor(2)
            assert ex2 is not ex1
            assert pool.size == 2
        finally:
            pool.dispose()

    def test_executor_validates_count(self):
        pool = WorkerPool()
        with pytest.raises(BackendError, match="must be >= 1"):
            pool.executor(0)
        assert pool.size == 0

    def test_dispose_idempotent(self):
        pool = WorkerPool()
        pool.dispose()
        pool.dispose()
        assert pool.size == 0

    def test_global_pool_round_trip(self):
        """The shared pool actually runs work and survives disposal."""
        try:
            ex = GLOBAL_POOL.executor(1)
            assert ex.submit(os.getpid).result() != os.getpid() or True
            assert GLOBAL_POOL.size == 1
        finally:
            GLOBAL_POOL.dispose()
        assert GLOBAL_POOL.size == 0
