"""Unit tests for the JIT specialization cache."""

import numpy as np
import pytest

from repro.jacc import Kernel, parallel_for
from repro.jacc.jit import GLOBAL_JIT, JITCache
from repro.jacc.kernels import make_captures


class TestJITCache:
    def test_first_specialization_records_event(self):
        cache = JITCache()
        cache.loop_for("k1", "serial", 1)
        assert len(cache.compile_events) == 1
        ev = cache.compile_events[0]
        assert ev.kernel == "k1" and ev.backend == "serial"
        assert ev.seconds > 0.0

    def test_cache_hit_does_not_recompile(self):
        cache = JITCache()
        a = cache.loop_for("k1", "serial", 1)
        b = cache.loop_for("k1", "serial", 1)
        assert a is b
        assert len(cache.compile_events) == 1

    def test_variants_are_distinct(self):
        cache = JITCache()
        cache.loop_for("k1", "serial", 1)
        cache.loop_for("k1", "serial", 2)
        cache.loop_for("k1", "serial", 1, ranged=True)
        cache.loop_reduce("k1", "serial", 1)
        assert len(cache.compile_events) == 4

    def test_backends_are_distinct(self):
        cache = JITCache()
        cache.loop_for("k1", "serial", 1)
        cache.loop_for("k1", "threads", 1)
        assert len(cache.compile_events) == 2

    def test_clear_forgets_everything(self):
        cache = JITCache()
        cache.loop_for("k1", "serial", 1)
        cache.clear()
        assert not cache.is_compiled("k1", "serial")
        assert cache.compile_events == []
        cache.loop_for("k1", "serial", 1)
        assert len(cache.compile_events) == 1

    def test_is_compiled(self):
        cache = JITCache()
        assert not cache.is_compiled("k1", "serial")
        cache.loop_for("k1", "serial", 1)
        assert cache.is_compiled("k1", "serial")
        assert not cache.is_compiled("k1", "vectorized")

    def test_total_compile_seconds(self):
        cache = JITCache()
        cache.loop_for("a", "serial", 1)
        cache.loop_for("b", "serial", 2)
        assert cache.total_compile_seconds() == pytest.approx(
            sum(e.seconds for e in cache.compile_events)
        )


class TestGeneratedLoops:
    def test_1d_loop_semantics(self):
        cache = JITCache()
        loop = cache.loop_for("k", "serial", 1)
        seen = []
        loop(lambda ctx, i: seen.append(i), None, (4,))
        assert seen == [0, 1, 2, 3]

    def test_2d_loop_semantics(self):
        cache = JITCache()
        loop = cache.loop_for("k", "serial", 2)
        seen = []
        loop(lambda ctx, n, i: seen.append((n, i)), None, (2, 3))
        assert seen == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_ranged_loop_respects_bounds(self):
        cache = JITCache()
        loop = cache.loop_for("k", "threads", 1, ranged=True)
        seen = []
        loop(lambda ctx, i: seen.append(i), None, (10,), 3, 6)
        assert seen == [3, 4, 5]

    def test_ranged_2d_covers_inner_dim(self):
        cache = JITCache()
        loop = cache.loop_for("k", "threads", 2, ranged=True)
        seen = []
        loop(lambda ctx, n, i: seen.append((n, i)), None, (5, 2), 1, 3)
        assert seen == [(1, 0), (1, 1), (2, 0), (2, 1)]

    def test_reduce_loop_accumulates(self):
        cache = JITCache()
        loop = cache.loop_reduce("k", "serial", 1)
        out = loop(lambda ctx, i: float(i), None, (5,), lambda a, b: a + b, 0.0)
        assert out == 10.0


class TestGlobalCacheIntegration:
    def test_first_launch_compiles_then_reuses(self):
        GLOBAL_JIT.clear()
        k = Kernel(
            name="test_jit_integration",
            element=lambda ctx, i: None,
            batch=lambda ctx, dims: None,
        )
        before = len(GLOBAL_JIT.compile_events)
        parallel_for(4, k, make_captures(), backend="serial")
        after_first = len(GLOBAL_JIT.compile_events)
        parallel_for(4, k, make_captures(), backend="serial")
        after_second = len(GLOBAL_JIT.compile_events)
        assert after_first == before + 1
        assert after_second == after_first
