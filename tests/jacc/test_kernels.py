"""Unit tests for the portable kernel abstraction."""

import pytest

from repro.jacc.kernels import Captures, Kernel, make_captures, normalize_dims
from repro.util.validation import ValidationError


class TestKernel:
    def test_valid_construction(self):
        k = Kernel(name="k", element=lambda ctx, i: None)
        assert not k.device_capable

    def test_device_capable_with_batch(self):
        k = Kernel(name="k", element=lambda ctx, i: None, batch=lambda ctx, d: None)
        assert k.device_capable

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError, match="name"):
            Kernel(name="", element=lambda ctx, i: None)

    def test_non_callable_element_rejected(self):
        with pytest.raises(ValidationError, match="callable"):
            Kernel(name="k", element=42)

    def test_non_callable_batch_rejected(self):
        with pytest.raises(ValidationError, match="callable"):
            Kernel(name="k", element=lambda ctx, i: None, batch=42)

    def test_kernel_is_frozen(self):
        k = Kernel(name="k", element=lambda ctx, i: None)
        with pytest.raises(AttributeError):
            k.name = "other"


class TestNormalizeDims:
    def test_int_becomes_1d(self):
        assert normalize_dims(5) == (5,)

    def test_tuple_passthrough(self):
        assert normalize_dims((3, 4)) == (3, 4)

    def test_zero_allowed(self):
        assert normalize_dims(0) == (0,)

    def test_3d_rejected(self):
        with pytest.raises(ValidationError, match="1-D or 2-D"):
            normalize_dims((2, 2, 2))

    def test_negative_rejected(self):
        with pytest.raises(ValidationError, match="negative"):
            normalize_dims((-1, 3))


def test_captures_namespace():
    c = make_captures(a=1, b="x")
    assert isinstance(c, Captures)
    assert c.a == 1 and c.b == "x"
