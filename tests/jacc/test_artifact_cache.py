"""Artifact store + digest keying for the fused back end (ISSUE 10).

Property under test: the blake2b artifact digest is a pure function of
the *plan configuration* (grid geometry, symmetry-op count, scatter
impl, codec) and the codegen version — nothing else.  Scheduling knobs
(width, tile rows, shards, workers) are deliberately absent, so one
artifact serves every schedule; any config change or codegen bump keys
a fresh artifact, making stale-cache invalidation unnecessary by
construction.  Corrupt artifacts of every flavour are silent misses
(recompile + republish), and a second *process* reuses the first's
artifact (the cross-process warm path the store exists for).

Also pins the ``JITCache`` key-collision behaviour: cache keys are
``(kernel name, backend, variant)`` but the cached object is a *loop
shell* taking the kernel body per call — two kernels sharing a name
with different bodies must both run their own body, not the first's.
"""

import dataclasses
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.grid import HKLGrid
from repro.jacc import Kernel, parallel_for, parallel_reduce
from repro.jacc.artifact_cache import (
    ARTIFACT_DIR_ENV,
    ArtifactStore,
    artifact_digest,
    default_artifact_dir,
)
from repro.jacc.codegen import CODEGEN_VERSION, FusedPlanConfig, generate_fused_source
from repro.jacc.jit import JITCache
from repro.jacc.kernels import make_captures

GRID = HKLGrid(basis=np.eye(3), minimum=(-2.0, -2.0, -0.5),
               maximum=(2.0, 2.0, 0.5), bins=(16, 16, 2))


def _config(grid=GRID, n_ops=1, scatter_impl="atomic", codec="none"):
    return FusedPlanConfig.for_plan(grid, n_ops=n_ops,
                                    scatter_impl=scatter_impl, codec=codec)


def _digest(**kwargs):
    return artifact_digest(_config(**kwargs).canonical_json())


class TestDigestKeying:
    def test_deterministic(self):
        assert _digest() == _digest()
        assert len(_digest()) == 32  # blake2b-128 hex

    def test_each_config_field_changes_digest(self):
        base = _digest()
        assert _digest(n_ops=2) != base
        assert _digest(scatter_impl="buffered") != base
        assert _digest(codec="delta") != base
        for variant in (
            HKLGrid(basis=np.eye(3), minimum=(-2.0, -2.0, -0.5),
                    maximum=(2.0, 2.0, 0.5), bins=(8, 16, 2)),
            HKLGrid(basis=np.eye(3), minimum=(-1.0, -2.0, -0.5),
                    maximum=(2.0, 2.0, 0.5), bins=(16, 16, 2)),
            HKLGrid(basis=np.eye(3), minimum=(-2.0, -2.0, -0.5),
                    maximum=(3.0, 2.0, 0.5), bins=(16, 16, 2)),
            HKLGrid(basis=np.eye(3) * 1.5, minimum=(-2.0, -2.0, -0.5),
                    maximum=(2.0, 2.0, 0.5), bins=(16, 16, 2)),
        ):
            assert _digest(grid=variant) != base, variant

    def test_codegen_version_bump_changes_digest(self):
        config_json = _config().canonical_json()
        assert artifact_digest(config_json, CODEGEN_VERSION) != artifact_digest(
            config_json, CODEGEN_VERSION + 1
        )

    def test_scheduling_knobs_absent_from_config(self):
        """Width / tiling / sharding must not key artifacts: the config
        dataclass has no such fields, so one artifact serves every
        schedule by construction."""
        fields = {f.name for f in dataclasses.fields(FusedPlanConfig)}
        assert fields == {"grid_basis", "grid_minimum", "grid_maximum",
                          "grid_bins", "n_ops", "scatter_impl", "codec"}
        for knob in ("width", "tile_rows", "shards", "workers"):
            assert knob not in _config().canonical_json()

    def test_canonical_json_is_stable_and_compact(self):
        doc = _config().canonical_json()
        assert json.loads(doc)  # valid
        assert doc == json.dumps(json.loads(doc), sort_keys=True,
                                 separators=(",", ":"))


class TestStoreRoundTrip:
    def test_store_then_load(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = _config()
        digest = artifact_digest(config.canonical_json())
        source = generate_fused_source(config)
        path = store.store(digest, source, config.canonical_json())
        assert path.exists()
        assert store.load(digest) == source

    def test_missing_is_none(self, tmp_path):
        assert ArtifactStore(tmp_path).load("0" * 32) is None

    def test_env_override_controls_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path / "override"))
        assert default_artifact_dir() == tmp_path / "override"
        assert ArtifactStore().root == tmp_path / "override"
        monkeypatch.delenv(ARTIFACT_DIR_ENV)
        assert ArtifactStore().root == default_artifact_dir()

    @pytest.mark.parametrize("corruption", (
        "truncate", "garbage", "not-json", "not-dict", "wrong-schema",
        "wrong-version", "wrong-digest", "tampered-source", "non-str-source",
    ))
    def test_corruption_is_a_silent_miss(self, tmp_path, corruption):
        store = ArtifactStore(tmp_path)
        config = _config()
        digest = artifact_digest(config.canonical_json())
        source = generate_fused_source(config)
        path = store.store(digest, source, config.canonical_json())
        doc = json.loads(path.read_text())
        if corruption == "truncate":
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        elif corruption == "garbage":
            path.write_bytes(b"\x00\xff" * 64)
        elif corruption == "not-json":
            path.write_text("definitely not json{")
        elif corruption == "not-dict":
            path.write_text(json.dumps([1, 2, 3]))
        elif corruption == "wrong-schema":
            doc["schema"] = 999
            path.write_text(json.dumps(doc))
        elif corruption == "wrong-version":
            doc["codegen_version"] = CODEGEN_VERSION + 1
            path.write_text(json.dumps(doc))
        elif corruption == "wrong-digest":
            doc["digest"] = "f" * 32
            path.write_text(json.dumps(doc))
        elif corruption == "tampered-source":
            doc["source"] = doc["source"].replace("fused_mdnorm", "evil")
            path.write_text(json.dumps(doc))
        elif corruption == "non-str-source":
            doc["source"] = 42
            path.write_text(json.dumps(doc))
        assert store.load(digest) is None
        # recompile + republish heals the entry
        store.store(digest, source, config.canonical_json())
        assert store.load(digest) == source

    def test_corrupted_artifact_recompiles_in_backend(self, tmp_path,
                                                      monkeypatch):
        """End to end: a torn artifact costs a recompile, never a wrong
        or missing result — and the rewrite heals the store."""
        from repro.core import geom_cache as gc
        from repro.core.hist3 import Hist3
        from repro.core.mdnorm import mdnorm
        from repro.jacc.fused import FUSED
        from repro.jacc.jit import GLOBAL_JIT
        from repro.nexus.corrections import FluxSpectrum

        monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path))
        FUSED.clear()
        k = np.linspace(1.0, 12.0, 32)
        flux = FluxSpectrum(momentum=k, density=np.ones(32))
        rng = np.random.default_rng(0)
        dets = rng.normal(size=(40, 3))
        dets /= np.linalg.norm(dets, axis=1, keepdims=True)
        ident = np.eye(3)[None]

        def run():
            h = Hist3(GRID, track_errors=True)
            mdnorm(h, ident, dets, np.ones(40), flux, (2.0, 9.0),
                   backend="fused", cache=gc.DISABLED)
            return h

        ref = run()
        (digest,) = FUSED._kernels
        path = ArtifactStore(tmp_path).path_for(digest)
        path.write_text("torn" + path.read_text()[:100])

        FUSED.clear()
        GLOBAL_JIT.clear()
        healed = run()
        assert np.array_equal(healed.signal, ref.signal)
        events = [e.variant for e in GLOBAL_JIT.compile_events
                  if e.backend == "fused" and ":" in e.variant]
        assert events == [f"codegen:{digest[:12]}"]  # miss, not load
        assert ArtifactStore(tmp_path).load(digest) is not None  # healed
        FUSED.clear()


_CROSS_PROCESS_SCRIPT = """
import json, os, sys
import numpy as np
from repro.core import geom_cache as gc
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.mdnorm import mdnorm
from repro.jacc.jit import GLOBAL_JIT
from repro.nexus.corrections import FluxSpectrum
from repro.util import trace

grid = HKLGrid(basis=np.eye(3), minimum=(-2.0, -2.0, -0.5),
               maximum=(2.0, 2.0, 0.5), bins=(16, 16, 2))
k = np.linspace(1.0, 12.0, 32)
flux = FluxSpectrum(momentum=k, density=np.ones(32))
rng = np.random.default_rng(0)
dets = rng.normal(size=(40, 3))
dets /= np.linalg.norm(dets, axis=1, keepdims=True)
hist = Hist3(grid, track_errors=True)
tracer = trace.Tracer(label="xproc")
with trace.use_tracer(tracer):
    mdnorm(hist, np.eye(3)[None], dets, np.ones(40), flux, (2.0, 9.0),
           backend="fused", cache=gc.DISABLED)
print(json.dumps({
    "artifact_hits": tracer.counters.get("jacc.artifact_hits", 0),
    "compile_seconds": tracer.counters.get("jacc.compile_seconds", 0.0),
    "variants": [e.variant.split(":")[0] for e in GLOBAL_JIT.compile_events
                 if e.backend == "fused" and ":" in e.variant],
    "checksum": float(hist.signal.sum()),
}))
"""


class TestCrossProcessReuse:
    def test_second_process_hits_first_processes_artifact(self, tmp_path):
        env = dict(os.environ)
        env[ARTIFACT_DIR_ENV] = str(tmp_path)
        src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src_root) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )

        def launch():
            out = subprocess.run(
                [sys.executable, "-c", _CROSS_PROCESS_SCRIPT],
                env=env, capture_output=True, text=True, check=True,
            )
            return json.loads(out.stdout.strip().splitlines()[-1])

        first = launch()
        assert first["artifact_hits"] == 0
        assert first["variants"] == ["codegen"]
        assert first["compile_seconds"] > 0.0

        second = launch()
        assert second["artifact_hits"] == 1
        assert second["variants"] == ["load"]  # no source generation
        assert second["checksum"] == first["checksum"]
        assert len(list(tmp_path.glob("fused-*.json"))) == 1


class TestJITCacheKeyCollision:
    """Cache keys ignore the kernel *body*; the loops must not."""

    def test_same_name_different_batch_bodies(self):
        def batch_a(ctx, dims):
            ctx.out[...] = ctx.x + 1.0

        def batch_b(ctx, dims):
            ctx.out[...] = ctx.x * 10.0

        x = np.arange(4.0)
        results = {}
        for body in (batch_a, batch_b):

            def element(ctx, i, _body=body):
                tmp = np.empty(1)
                _body(make_captures(x=ctx.x[i:i + 1], out=tmp), (1,))
                ctx.out[i] = tmp[0]

            k = Kernel(name="collide_probe", element=element, batch=body)
            out = np.zeros(4)
            parallel_for(4, k, make_captures(x=x, out=out),
                         backend="vectorized")
            results[body.__name__] = out.copy()
        # the second launch hit the cached trampoline under the SAME
        # (name, backend, "launch") key — it must still run batch_b
        assert np.array_equal(results["batch_a"], x + 1.0)
        assert np.array_equal(results["batch_b"], x * 10.0)

    def test_same_name_different_element_closures(self):
        cache = JITCache()
        loop1 = cache.loop_for("collide_probe", "serial", 1)
        loop2 = cache.loop_for("collide_probe", "serial", 1)
        assert loop1 is loop2  # one cache entry...
        out = np.zeros(3)

        def elem_add(ctx, i):
            ctx.out[i] = ctx.x[i] + 2.0

        def elem_mul(ctx, i):
            ctx.out[i] = ctx.x[i] * 5.0

        x = np.arange(3.0)
        loop1(elem_add, make_captures(x=x, out=out), (3,))
        assert np.array_equal(out, x + 2.0)
        loop2(elem_mul, make_captures(x=x, out=out), (3,))
        assert np.array_equal(out, x * 5.0)  # ...but per-call bodies
        assert len(cache.compile_events) == 1

    def test_reduce_loops_take_combine_per_call(self):
        cache = JITCache()
        loop = cache.loop_reduce("collide_probe", "serial", 1)

        def elem(ctx, i):
            return float(ctx.x[i])

        x = np.array([3.0, 1.0, 2.0])
        total = loop(elem, make_captures(x=x), (3,), lambda a, b: a + b, 0.0)
        peak = loop(elem, make_captures(x=x), (3,), max, float("-inf"))
        assert total == 6.0
        assert peak == 3.0
