"""Unit tests for the extended (custom-op) device reduction."""

import numpy as np
import pytest

from repro.jacc import BackendError, Kernel, get_backend, parallel_reduce
from repro.jacc.kernels import make_captures
from repro.jacc.reduction import device_reduce


def _value_kernel():
    return Kernel(
        name="test_ext_values",
        element=lambda ctx, i: float(ctx.x[i]),
        batch=lambda ctx, dims: ctx.x,
    )


def _matrix_kernel():
    return Kernel(
        name="test_ext_matrix",
        element=lambda ctx, n, i: float(ctx.m[n, i]),
        batch=lambda ctx, dims: ctx.m,
    )


class TestDeviceReduce:
    def test_max(self):
        x = np.array([3.0, -7.0, 42.0, 11.0])
        out = device_reduce(4, _value_kernel(), make_captures(x=x), op="max")
        assert out == 42.0

    def test_min(self):
        x = np.array([3.0, -7.0, 42.0])
        out = device_reduce(3, _value_kernel(), make_captures(x=x), op="min")
        assert out == -7.0

    def test_sum_matches_core_reduce(self):
        x = np.random.default_rng(0).random(257)
        ext = device_reduce(257, _value_kernel(), make_captures(x=x), op="+")
        core = parallel_reduce(257, _value_kernel(), make_captures(x=x),
                               backend="vectorized")
        assert ext == pytest.approx(core)

    def test_2d_index_space(self):
        m = np.arange(12.0).reshape(3, 4)
        assert device_reduce((3, 4), _matrix_kernel(), make_captures(m=m),
                             op="max") == 11.0

    def test_matches_cpu_max(self):
        """The extension gives the device the answer the CPU back ends
        already had — the exact gap the paper describes."""
        x = np.random.default_rng(1).normal(size=500)
        cpu = parallel_reduce(500, _value_kernel(), make_captures(x=x),
                              op="max", backend="serial")
        dev = device_reduce(500, _value_kernel(), make_captures(x=x), op="max")
        assert dev == cpu

    def test_empty_space_identities(self):
        k = _value_kernel()
        assert device_reduce(0, k, make_captures(x=np.ones(0)), op="+") == 0.0
        assert device_reduce(0, k, make_captures(x=np.ones(0)), op="max") == -np.inf
        assert device_reduce(0, k, make_captures(x=np.ones(0)), op="min") == np.inf

    def test_unsupported_op(self):
        with pytest.raises(BackendError, match="unsupported"):
            device_reduce(2, _value_kernel(), make_captures(x=np.ones(2)), op="xor")

    def test_kernel_without_batch_rejected(self):
        k = Kernel(name="test_ext_nobatch", element=lambda ctx, i: 0.0)
        with pytest.raises(BackendError, match="no batch"):
            device_reduce(2, k, make_captures(), op="max")

    def test_core_backend_still_rejects_max(self):
        """The deliberate reproduction of the JACC limitation stays."""
        with pytest.raises(BackendError, match="only op"):
            parallel_reduce(2, _value_kernel(), make_captures(x=np.ones(2)),
                            op="max", backend="vectorized")


class TestPrePassIntegration:
    def test_extended_prepass_matches_workaround(self, tiny_experiment):
        """max_intersections via device_reduce == the D2H workaround ==
        the CPU reduce — and moves no per-lane data to the host."""
        from repro.core.mdnorm import max_intersections

        exp = tiny_experiment
        ws = exp.workspaces[0]
        transforms = exp.grid.transforms_for(
            ws.ub_matrix, exp.point_group, goniometer=ws.goniometer
        )
        args = (exp.grid, transforms, exp.instrument.directions, ws.momentum_band)
        workaround = max_intersections(*args, backend="vectorized")
        extended = max_intersections(*args, backend="vectorized",
                                     use_extended_reduce=True)
        cpu = max_intersections(*args, backend="serial")
        assert workaround == extended == cpu

    def test_extended_prepass_avoids_d2h(self, tiny_experiment):
        from repro.core.mdnorm import max_intersections

        exp = tiny_experiment
        ws = exp.workspaces[0]
        transforms = exp.grid.transforms_for(
            ws.ub_matrix, exp.point_group, goniometer=ws.goniometer
        )
        device = get_backend("vectorized")
        device.reset_counters()
        max_intersections(exp.grid, transforms, exp.instrument.directions,
                          ws.momentum_band, backend="vectorized")
        workaround_d2h = device.bytes_d2h
        device.reset_counters()
        max_intersections(exp.grid, transforms, exp.instrument.directions,
                          ws.momentum_band, backend="vectorized",
                          use_extended_reduce=True)
        assert workaround_d2h > 0
        assert device.bytes_d2h == 0
