"""Unit tests for the module-level jacc API surface."""

import numpy as np
import pytest

import repro.jacc.api as api
from repro.jacc import Kernel, available_backends, parallel_for
from repro.jacc.kernels import make_captures


@pytest.fixture()
def reset_default():
    original = api._default
    yield
    api._default = original


class TestDefaultBackend:
    def test_env_variable_selects_default(self, monkeypatch, reset_default):
        api._default = None
        monkeypatch.setenv("REPRO_JACC_BACKEND", "serial")
        assert api.default_backend().name == "serial"

    def test_fallback_is_threads(self, monkeypatch, reset_default):
        api._default = None
        monkeypatch.delenv("REPRO_JACC_BACKEND", raising=False)
        assert api.default_backend().name == "threads"

    def test_invalid_env_raises_lazily(self, monkeypatch, reset_default):
        api._default = None
        monkeypatch.setenv("REPRO_JACC_BACKEND", "quantum")
        with pytest.raises(Exception):
            api.default_backend()

    def test_set_default_returns_backend(self, reset_default):
        be = api.set_default_backend("vectorized")
        assert be.name == "vectorized"
        assert api.default_backend() is be


class TestDispatch:
    def test_parallel_for_uses_default(self, reset_default):
        api.set_default_backend("serial")
        out = np.zeros(4)
        k = Kernel(name="test_api_default",
                   element=lambda ctx, i: ctx.out.__setitem__(i, 1.0))
        parallel_for(4, k, make_captures(out=out))
        assert out.sum() == 4.0

    def test_explicit_backend_overrides_default(self, reset_default):
        api.set_default_backend("serial")
        k = Kernel(
            name="test_api_override",
            element=lambda ctx, i: None,
            batch=lambda ctx, dims: ctx.flag.__setitem__(0, 1.0),
        )
        flag = np.zeros(1)
        parallel_for(1, k, make_captures(flag=flag), backend="vectorized")
        assert flag[0] == 1.0  # batch body ran -> device back end was used

    def test_available_backends_sorted(self):
        names = available_backends()
        assert names == sorted(names)
