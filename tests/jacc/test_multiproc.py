"""Unit tests for the multiprocess back end's building blocks.

The determinism pillars get direct coverage here (the end-to-end
matrix lives in ``test_backend_conformance.py``):

* :func:`chunk_grid` — a fixed decomposition that depends on the index
  extent only, never the worker count;
* :func:`pairwise_tree` — a combine order that is a pure function of
  the partial count;
* :class:`RecordingHist3` + :func:`replay_deposits` — the ordered
  deposit replay whose per-bin float fold equals the serial fold;
* :class:`_Transport` — shared-memory capture shipping, ndarray
  write-back, and the ``__jacc_shareable__ = False`` drop protocol;
* back-end construction / ``REPRO_MULTIPROC_HIST`` validation and the
  replay-vs-tree histogram modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.jacc import parallel_for
from repro.jacc.backend import BackendError
from repro.jacc.kernels import Captures, Kernel, make_captures
from repro.jacc.multiproc import (
    DEFAULT_CHUNKS,
    HIST_MODE_ENV,
    MultiprocessBackend,
    RecordingHist3,
    _Transport,
    chunk_grid,
    pairwise_tree,
    replay_deposits,
)
from repro.jacc.workers import GLOBAL_POOL

GRID = HKLGrid(basis=np.eye(3), minimum=(-1.0, -1.0, -1.0),
               maximum=(1.0, 1.0, 1.0), bins=(4, 4, 2))


@pytest.fixture(scope="module", autouse=True)
def _dispose_pool_after_module():
    yield
    GLOBAL_POOL.dispose()


# ---------------------------------------------------------------------------
# chunk grid
# ---------------------------------------------------------------------------

class TestChunkGrid:
    def test_empty(self):
        assert chunk_grid(0) == []
        assert chunk_grid(-3) == []

    def test_fewer_items_than_chunks(self):
        assert chunk_grid(3, 16) == [(0, 1), (1, 2), (2, 3)]

    def test_exact_partition(self):
        assert chunk_grid(32, 4) == [(0, 8), (8, 16), (16, 24), (24, 32)]

    def test_remainder_spreads_to_front(self):
        ranges = chunk_grid(10, 4)
        sizes = [b - a for a, b in ranges]
        assert sizes == [3, 3, 2, 2]

    @given(total=st.integers(1, 2000), n=st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, total, n):
        """Contiguous, exact, ordered; sizes differ by <= 1; the grid is
        a function of (total, n) only — the worker-count-invariance
        precondition."""
        ranges = chunk_grid(total, n)
        covered = [i for a, b in ranges for i in range(a, b)]
        assert covered == list(range(total))
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1
        assert all(s >= 1 for s in sizes)
        assert ranges == chunk_grid(total, n)  # deterministic


# ---------------------------------------------------------------------------
# pairwise tree
# ---------------------------------------------------------------------------

class TestPairwiseTree:
    def test_empty_rejected(self):
        with pytest.raises(BackendError, match="no values"):
            pairwise_tree([], lambda a, b: a + b)

    def test_single_value_passthrough(self):
        assert pairwise_tree([7.0], lambda a, b: a + b) == 7.0

    def test_combine_order_is_fixed(self):
        """The tree shape is a pure function of len(values): record the
        combine sequence and pin it."""
        calls = []

        def combine(a, b):
            calls.append((a, b))
            return f"({a}+{b})"

        out = pairwise_tree(list("abcde"), combine)
        assert out == "(((a+b)+(c+d))+e)"
        assert calls == [("a", "b"), ("c", "d"), ("(a+b)", "(c+d)"),
                         ("((a+b)+(c+d))", "e")]

    @given(vals=st.lists(st.integers(-1000, 1000), min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_sum_matches_fold_for_exact_arithmetic(self, vals):
        assert pairwise_tree(vals, lambda a, b: a + b) == sum(vals)

    @given(vals=st.lists(st.floats(-1e6, 1e6, allow_nan=False),
                         min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_max_matches_serial_fold_bitwise(self, vals):
        assert pairwise_tree(vals, max) == max(vals)

    def test_float_sum_is_reproducible(self):
        rng = np.random.default_rng(5)
        vals = list(rng.standard_normal(37))
        first = pairwise_tree(vals, lambda a, b: a + b)
        again = pairwise_tree(vals, lambda a, b: a + b)
        assert first == again


# ---------------------------------------------------------------------------
# RecordingHist3 + ordered replay
# ---------------------------------------------------------------------------

class TestRecordingReplay:
    def _samples(self, seed, n=120):
        rng = np.random.default_rng(seed)
        coords = rng.uniform(-1.3, 1.3, size=(n, 3))
        w = rng.uniform(0.1, 2.0, size=n)
        return coords, w

    def test_push_matches_hist3_binning(self):
        """Same deposits accepted/rejected, same bins, same weights."""
        coords, w = self._samples(0)
        real = Hist3(GRID, track_errors=True)
        rec = RecordingHist3(GRID, True)
        for (c0, c1, c2), wi in zip(coords, w):
            a = real.push(c0, c1, c2, wi, wi * wi)
            b = rec.push(c0, c1, c2, wi, wi * wi)
            assert a == b
        replayed = Hist3(GRID, track_errors=True)
        replay_deposits(replayed, [rec.harvest()])
        assert np.array_equal(replayed.signal, real.signal)
        assert np.array_equal(replayed.error_sq, real.error_sq)

    def test_push_many_matches_hist3(self):
        coords, w = self._samples(1)
        real = Hist3(GRID, track_errors=True)
        n_real = real.push_many(coords, w, w * w)
        rec = RecordingHist3(GRID, True)
        n_rec = rec.push_many(coords, w, w * w)
        assert n_real == n_rec
        replayed = Hist3(GRID, track_errors=True)
        replay_deposits(replayed, [rec.harvest()])
        assert np.array_equal(replayed.signal, real.signal)
        assert np.array_equal(replayed.error_sq, real.error_sq)

    def test_chunked_replay_bit_identical_to_serial(self):
        """The core claim: cut the deposit stream anywhere, replay the
        pieces in ascending order -> the per-bin float fold is the
        serial fold, bit for bit."""
        coords, w = self._samples(2, n=200)
        serial = Hist3(GRID, track_errors=True)
        for (c0, c1, c2), wi in zip(coords, w):
            serial.push(c0, c1, c2, wi, wi * wi)
        for cut in (1, 3, 7, 50, 199):
            logs = []
            for a in range(0, 200, cut):
                rec = RecordingHist3(GRID, True)
                for (c0, c1, c2), wi in zip(coords[a:a + cut], w[a:a + cut]):
                    rec.push(c0, c1, c2, wi, wi * wi)
                logs.append(rec.harvest())
            replayed = Hist3(GRID, track_errors=True)
            replay_deposits(replayed, logs)
            assert np.array_equal(replayed.signal, serial.signal), cut
            assert np.array_equal(replayed.error_sq, serial.error_sq), cut

    def test_harvest_reset_segments_the_log(self):
        rec = RecordingHist3(GRID, False)
        rec.push(0.0, 0.0, 0.0, 1.0)
        idx1, w1, e1 = rec.harvest_reset()
        assert len(idx1) == 1 and e1 is None
        idx2, _, _ = rec.harvest_reset()
        assert len(idx2) == 0  # cleared at the boundary
        rec.push(0.5, 0.5, 0.5, 2.0)
        idx3, w3, _ = rec.harvest()
        assert len(idx3) == 1 and w3[0] == 2.0

    def test_out_of_grid_deposits_rejected(self):
        rec = RecordingHist3(GRID, False)
        assert rec.push(9.0, 0.0, 0.0, 1.0) is False
        idx, w, _ = rec.harvest()
        assert idx.size == 0

    def test_empty_log_replay_is_noop(self):
        hist = Hist3(GRID)
        rec = RecordingHist3(GRID, False)
        replay_deposits(hist, [rec.harvest()])
        assert hist.signal.sum() == 0.0


# ---------------------------------------------------------------------------
# capture transport
# ---------------------------------------------------------------------------

class _Unshareable:
    __jacc_shareable__ = False


class TestTransport:
    def test_array_round_trip_and_writeback(self):
        x = np.arange(6.0)
        out = np.zeros(6)
        t = _Transport(make_captures(x=x, out=out))
        try:
            assert t.payload["x"][0] == "shm"
            assert t.payload["out"][0] == "shm"
            # simulate a worker mutating the shm copy of `out`
            kind, name, shape, dtype = t.payload["out"]
            shm = next(b for b in t.blocks if b.name == name)
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
            view[...] = 42.0
            del view
            t.write_back()
            assert np.array_equal(out, np.full(6, 42.0))
        finally:
            t.close()
        assert t.blocks == []

    def test_histogram_becomes_spec_not_bytes(self):
        hist = Hist3(GRID, track_errors=True)
        t = _Transport(make_captures(hist=hist))
        try:
            kind, grid, track = t.payload["hist"]
            assert kind == "hist" and grid is GRID and track is True
            assert t.hists == {"hist": hist}
        finally:
            t.close()

    def test_unshareable_objects_dropped(self):
        """Caches (RLock-bearing) opt out via __jacc_shareable__; the
        transport ships None instead of failing to pickle."""
        t = _Transport(make_captures(cache=_Unshareable(), tag="ok"))
        try:
            assert t.payload["cache"] == ("drop",)
            assert t.payload["tag"] == ("obj", "ok")
        finally:
            t.close()

    def test_zero_size_and_object_arrays_pickled_not_shared(self):
        t = _Transport(make_captures(empty=np.zeros(0),
                                     objs=np.array([None, "x"], dtype=object)))
        try:
            assert t.payload["empty"][0] == "obj"
            assert t.payload["objs"][0] == "obj"
        finally:
            t.close()


# ---------------------------------------------------------------------------
# back-end construction / histogram modes
# ---------------------------------------------------------------------------

def _hist_element(ctx, i):
    w = ctx.w[i]
    ctx.hist.push(ctx.c[i, 0], ctx.c[i, 1], ctx.c[i, 2], w, w * w)


HIST_K = Kernel(name="mp_hist_modes", element=_hist_element)


class TestBackendConfig:
    def test_rejects_bad_chunk_count(self):
        with pytest.raises(BackendError, match="n_chunks"):
            MultiprocessBackend(n_chunks=0)

    def test_rejects_bad_hist_mode(self):
        with pytest.raises(BackendError, match="hist_mode"):
            MultiprocessBackend(hist_mode="average")

    def test_rejects_bad_env_hist_mode(self, monkeypatch):
        monkeypatch.setenv(HIST_MODE_ENV, "banana")
        with pytest.raises(BackendError, match=HIST_MODE_ENV):
            _ = MultiprocessBackend().hist_mode

    def test_hist_mode_precedence(self, monkeypatch):
        monkeypatch.delenv(HIST_MODE_ENV, raising=False)
        assert MultiprocessBackend().hist_mode == "replay"
        monkeypatch.setenv(HIST_MODE_ENV, "tree")
        assert MultiprocessBackend().hist_mode == "tree"
        assert MultiprocessBackend(hist_mode="replay").hist_mode == "replay"

    def test_default_chunk_grid_is_worker_independent(self):
        assert MultiprocessBackend(n_workers=1)._n_chunks == DEFAULT_CHUNKS
        assert MultiprocessBackend(n_workers=7)._n_chunks == DEFAULT_CHUNKS


class TestHistModes:
    def _run(self, backend):
        rng = np.random.default_rng(11)
        n = 150
        c = rng.uniform(-1.2, 1.2, size=(n, 3))
        w = rng.uniform(0.1, 2.0, size=n)
        hist = Hist3(GRID, track_errors=True)
        backend.parallel_for(n, HIST_K, make_captures(hist=hist, c=c, w=w))
        return hist

    def test_replay_mode_bit_identical_to_serial(self):
        from repro.jacc import get_backend

        serial = self._run(get_backend("serial"))
        for workers in (1, 2):
            mp = self._run(MultiprocessBackend(n_workers=workers,
                                               hist_mode="replay"))
            assert np.array_equal(mp.signal, serial.signal), workers
            assert np.array_equal(mp.error_sq, serial.error_sq), workers
        GLOBAL_POOL.dispose()

    def test_tree_mode_worker_invariant_and_close_to_serial(self):
        """Tree mode re-associates the per-bin fold (fixed slots, fixed
        pairwise order): worker-count invariant, allclose to serial."""
        from repro.jacc import get_backend

        serial = self._run(get_backend("serial"))
        trees = [self._run(MultiprocessBackend(n_workers=n, hist_mode="tree"))
                 for n in (2, 2)]
        GLOBAL_POOL.dispose()
        assert np.array_equal(trees[0].signal, trees[1].signal)
        np.testing.assert_allclose(trees[0].signal, serial.signal,
                                   rtol=1e-12, atol=0.0)
        np.testing.assert_allclose(trees[0].error_sq, serial.error_sq,
                                   rtol=1e-12, atol=0.0)

    def test_tree_mode_refuses_giant_grids(self):
        big = HKLGrid(basis=np.eye(3), minimum=(-1, -1, -1),
                      maximum=(1, 1, 1), bins=(603, 603, 101))
        hist = Hist3(big)
        from repro.jacc.multiproc import _TreeBlocks

        with pytest.raises(BackendError, match="replay"):
            _TreeBlocks({"hist": hist}, 16)
