"""Unit tests specific to the threads back end."""

import numpy as np
import pytest

from repro.jacc.backend import BackendError
from repro.jacc.kernels import Kernel, make_captures
from repro.jacc.threads import ThreadsBackend


def _fill_kernel():
    return Kernel(
        name="test_fill",
        element=lambda ctx, i: ctx.out.__setitem__(i, i + 1),
    )


class TestChunking:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 17, 100])
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_every_index_covered_exactly_once(self, n, workers):
        be = ThreadsBackend(n_workers=workers)
        out = np.zeros(n)
        be.parallel_for(n, _fill_kernel(), make_captures(out=out))
        assert np.allclose(out, np.arange(1, n + 1))

    def test_chunks_partition(self):
        be = ThreadsBackend(n_workers=4)
        chunks = be._chunks(10)
        covered = [i for start, stop in chunks for i in range(start, stop)]
        assert covered == list(range(10))

    def test_empty_chunks(self):
        assert ThreadsBackend(n_workers=4)._chunks(0) == []


class TestReduction:
    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_partials_combine(self, workers):
        be = ThreadsBackend(n_workers=workers)
        k = Kernel(name="test_sum_i", element=lambda ctx, i: float(i))
        assert be.parallel_reduce(100, k, make_captures()) == pytest.approx(4950.0)

    def test_max_across_chunks(self):
        be = ThreadsBackend(n_workers=4)
        x = np.array([1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0])
        k = Kernel(name="test_max_chunks", element=lambda ctx, i: float(ctx.x[i]))
        assert be.parallel_reduce(8, k, make_captures(x=x), op="max") == 9.0

    def test_unknown_op(self):
        be = ThreadsBackend(n_workers=2)
        k = Kernel(name="test_op", element=lambda ctx, i: 0.0)
        with pytest.raises(BackendError):
            be.parallel_reduce(4, k, make_captures(), op="median")


class TestErrorPropagation:
    def test_worker_exception_reraised(self):
        be = ThreadsBackend(n_workers=4)

        def boom(ctx, i):
            if i == 5:
                raise RuntimeError("worker exploded")

        k = Kernel(name="test_boom", element=boom)
        with pytest.raises(RuntimeError, match="worker exploded"):
            be.parallel_for(16, k, make_captures())


class TestWorkerCount:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert ThreadsBackend().n_workers == 3

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert ThreadsBackend(n_workers=2).n_workers == 2
