"""Cross-back-end semantics tests: the portability contract itself."""

import numpy as np
import pytest

from repro.jacc import (
    BackendError,
    Kernel,
    array,
    available_backends,
    get_backend,
    parallel_for,
    parallel_reduce,
    set_default_backend,
    to_host,
)
from repro.jacc.api import default_backend
from repro.jacc.kernels import make_captures

BACKENDS = ("serial", "threads", "vectorized")


def _saxpy_kernel():
    return Kernel(
        name="test_saxpy",
        element=lambda ctx, i: ctx.y.__setitem__(i, ctx.a * ctx.x[i] + ctx.y[i]),
        batch=lambda ctx, dims: ctx.y.__setitem__(slice(None), ctx.a * ctx.x + ctx.y),
    )


def _sum_sq_kernel():
    return Kernel(
        name="test_sum_sq",
        element=lambda ctx, i: float(ctx.x[i] ** 2),
        batch=lambda ctx, dims: ctx.x**2,
    )


def _pair_kernel():
    """2-D kernel writing op * value into a (n_ops, n) matrix."""

    def element(ctx, n, i):
        ctx.out[n, i] = ctx.scales[n] * ctx.x[i]

    def batch(ctx, dims):
        ctx.out[...] = ctx.scales[:, None] * ctx.x[None, :]

    return Kernel(name="test_pair", element=element, batch=batch)


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="unknown"):
            get_backend("cuda")

    def test_default_backend_swap(self):
        original = default_backend().name
        try:
            assert set_default_backend("serial").name == "serial"
            assert default_backend().name == "serial"
        finally:
            set_default_backend(original)

    def test_device_kinds(self):
        assert get_backend("serial").device_kind == "cpu"
        assert get_backend("threads").device_kind == "cpu"
        assert get_backend("vectorized").device_kind == "device"


class TestParallelFor:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_1d_saxpy(self, backend):
        x = np.arange(100.0)
        y = np.ones(100)
        parallel_for(100, _saxpy_kernel(), make_captures(a=2.0, x=x, y=y), backend=backend)
        assert np.allclose(y, 2.0 * x + 1.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_2d_index_space(self, backend):
        x = np.arange(7.0)
        scales = np.array([1.0, -1.0, 0.5])
        out = np.zeros((3, 7))
        parallel_for(
            (3, 7), _pair_kernel(), make_captures(x=x, scales=scales, out=out),
            backend=backend,
        )
        assert np.allclose(out, scales[:, None] * x[None, :])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_extent_is_noop(self, backend):
        y = np.ones(3)
        parallel_for(0, _saxpy_kernel(), make_captures(a=1.0, x=np.ones(0), y=y),
                     backend=backend)
        assert np.allclose(y, 1.0)

    def test_device_requires_batch_body(self):
        k = Kernel(name="test_nobatch", element=lambda ctx, i: None)
        with pytest.raises(BackendError, match="no batch body"):
            parallel_for(4, k, make_captures(), backend="vectorized")

    def test_cpu_backends_run_element_only_kernels(self):
        k = Kernel(
            name="test_element_only",
            element=lambda ctx, i: ctx.out.__setitem__(i, i),
        )
        out = np.zeros(4)
        parallel_for(4, k, make_captures(out=out), backend="serial")
        assert np.allclose(out, [0, 1, 2, 3])


class TestParallelReduce:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sum_reduction(self, backend):
        x = np.arange(50.0)
        total = parallel_reduce(50, _sum_sq_kernel(), make_captures(x=x), backend=backend)
        assert total == pytest.approx(float((x**2).sum()))

    @pytest.mark.parametrize("backend", ("serial", "threads"))
    def test_max_reduction_on_cpu(self, backend):
        x = np.array([3.0, -7.0, 11.0, 2.0])
        k = Kernel(name="test_max", element=lambda ctx, i: float(ctx.x[i]))
        assert parallel_reduce(4, k, make_captures(x=x), op="max", backend=backend) == 11.0

    @pytest.mark.parametrize("backend", ("serial", "threads"))
    def test_min_reduction_on_cpu(self, backend):
        x = np.array([3.0, -7.0, 11.0])
        k = Kernel(name="test_min", element=lambda ctx, i: float(ctx.x[i]))
        assert parallel_reduce(3, k, make_captures(x=x), op="min", backend=backend) == -7.0

    def test_device_rejects_custom_ops(self):
        """The JACC.jl limitation the paper documents, reproduced."""
        with pytest.raises(BackendError, match="only op='\\+'"):
            parallel_reduce(
                4, _sum_sq_kernel(), make_captures(x=np.ones(4)), op="max",
                backend="vectorized",
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_reduction(self, backend):
        total = parallel_reduce(0, _sum_sq_kernel(), make_captures(x=np.ones(0)),
                                backend=backend)
        assert total == 0.0

    def test_unknown_op_rejected(self):
        with pytest.raises(BackendError, match="unknown reduction"):
            parallel_reduce(2, _sum_sq_kernel(), make_captures(x=np.ones(2)),
                            op="xor", backend="serial")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_2d_reduction(self, backend):
        k = Kernel(
            name="test_red2d",
            element=lambda ctx, n, i: float(ctx.m[n, i]),
            batch=lambda ctx, dims: ctx.m,
        )
        m = np.arange(12.0).reshape(3, 4)
        assert parallel_reduce((3, 4), k, make_captures(m=m), backend=backend) == (
            pytest.approx(m.sum())
        )


class TestMemoryModel:
    def test_cpu_to_device_aliases(self):
        host = np.arange(4.0)
        dev = get_backend("serial").to_device(host)
        dev[0] = 99.0
        assert host[0] == 99.0  # CPU back ends share memory

    def test_device_to_device_copies(self):
        be = get_backend("vectorized")
        host = np.arange(4.0)
        dev = be.to_device(host)
        host[0] = 99.0
        assert dev[0] == 0.0  # discrete-device discipline

    def test_transfer_counters(self):
        be = get_backend("vectorized")
        be.reset_counters()
        dev = be.to_device(np.zeros(128, dtype=np.float64))
        _ = be.to_host(dev)
        assert be.bytes_h2d == 1024
        assert be.bytes_d2h == 1024

    def test_module_level_array_helpers(self):
        host = np.arange(3.0)
        dev = array(host, backend="vectorized")
        back = to_host(dev, backend="vectorized")
        assert np.array_equal(back, host)
