"""Fused back end (ISSUE 10 tentpole): plan-specialized MDNorm kernels.

The contract under test:

* bit-identity — ``backend="fused"`` reproduces ``backend="vectorized"``
  exactly (signal *and* error_sq), cold and warm, for both scatter
  implementations and any symmetry-op count;
* plan memoization — one compiled kernel per plan configuration;
  scheduling knobs (width, tile rows) reuse it, config changes
  (scatter impl, grid, op count) specialize a new one;
* observability — ``fused:plan`` / ``fused:exec`` spans (plus
  ``fused:codegen`` on a miss, ``fused:load`` on an artifact hit)
  inside the ``kernel:mdnorm`` span, ``jacc.compile_seconds`` /
  ``jacc.artifact_hits`` counters, and a ``CompileEvent`` per
  specialization in ``GLOBAL_JIT.compile_events``;
* fall-through — every non-MDNorm kernel takes the inherited
  vectorized path (no fused spans, no specializations).
"""

import numpy as np
import pytest

from repro.core import geom_cache as gc
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.mdnorm import max_intersections, mdnorm
from repro.jacc import Kernel, get_backend, parallel_for
from repro.jacc.artifact_cache import ARTIFACT_DIR_ENV, ArtifactStore
from repro.jacc.fused import FUSED, FusedBackend
from repro.jacc.jit import GLOBAL_JIT
from repro.jacc.kernels import make_captures
from repro.util import trace

BAND = (2.0, 9.0)

IDENT = np.eye(3)[None, :, :]

#: identity + two proper rotations (z 90deg, x 180deg)
OPS3 = np.stack([
    np.eye(3),
    np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]),
    np.array([[1.0, 0.0, 0.0], [0.0, -1.0, 0.0], [0.0, 0.0, -1.0]]),
])


@pytest.fixture()
def grid():
    return HKLGrid(
        basis=np.eye(3), minimum=(-2.0, -2.0, -0.5), maximum=(2.0, 2.0, 0.5),
        bins=(16, 16, 2),
    )


@pytest.fixture()
def flux():
    from repro.nexus.corrections import FluxSpectrum

    k = np.linspace(1.0, 12.0, 64)
    rng = np.random.default_rng(11)
    return FluxSpectrum(momentum=k, density=1.0 + rng.random(64))


@pytest.fixture(autouse=True)
def _isolated_artifacts(tmp_path, monkeypatch):
    """Every test compiles cold into its own artifact root."""
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path / "artifacts"))
    FUSED.clear()
    yield
    FUSED.clear()


def _detectors(n=60, seed=0):
    rng = np.random.default_rng(seed)
    d = rng.normal(size=(n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    d[:, 2] = np.abs(d[:, 2]) * 0.5
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return d


def _run(grid, flux, *, backend, ops=None, scatter_impl="atomic", seed=0,
         **kwargs):
    ops = IDENT if ops is None else ops
    dets = _detectors(seed=seed)
    solid = np.random.default_rng(100 + seed).random(len(dets))
    hist = Hist3(grid, track_errors=True)
    mdnorm(hist, ops, dets, solid, flux, BAND, backend=backend,
           scatter_impl=scatter_impl, cache=gc.DISABLED, **kwargs)
    return hist


class TestBitIdentity:
    @pytest.mark.parametrize("scatter_impl", ("atomic", "buffered"))
    @pytest.mark.parametrize("ops", (IDENT, OPS3), ids=("1op", "3ops"))
    def test_matches_vectorized_exactly(self, grid, flux, ops, scatter_impl):
        for seed in range(5):
            ref = _run(grid, flux, backend="vectorized", ops=ops,
                       scatter_impl=scatter_impl, seed=seed)
            got = _run(grid, flux, backend="fused", ops=ops,
                       scatter_impl=scatter_impl, seed=seed)
            assert ref.signal.sum() > 0
            assert np.array_equal(got.signal, ref.signal), (scatter_impl, seed)
            assert np.array_equal(got.error_sq, ref.error_sq), (scatter_impl, seed)

    def test_warm_launch_matches_cold(self, grid, flux):
        cold = _run(grid, flux, backend="fused", ops=OPS3)
        warm = _run(grid, flux, backend="fused", ops=OPS3)
        assert np.array_equal(cold.signal, warm.signal)
        assert np.array_equal(cold.error_sq, warm.error_sq)

    def test_explicit_width_and_tiling_match(self, grid, flux):
        """Scheduling knobs never change the deposited histogram."""
        dets = _detectors()
        width = max_intersections(grid, IDENT, dets, BAND, backend="vectorized")
        ref = _run(grid, flux, backend="vectorized")
        for kwargs in ({"width": width}, {"tile_rows": 7}, {"tile_rows": 17}):
            got = _run(grid, flux, backend="fused", **kwargs)
            assert np.array_equal(got.signal, ref.signal), kwargs

    def test_charge_scaling_matches(self, grid, flux):
        ref = _run(grid, flux, backend="vectorized", charge=2.5)
        got = _run(grid, flux, backend="fused", charge=2.5)
        assert np.array_equal(got.signal, ref.signal)

    def test_warm_deposit_plan_path_matches(self, grid, flux):
        """With a live GeomCache the second launch replays the stored
        DepositPlan — the fused warm path must equal vectorized's."""
        dets = _detectors()
        solid = np.random.default_rng(7).random(len(dets))
        hists = {}
        for backend in ("vectorized", "fused"):
            cache = gc.GeomCache()
            for _ in range(2):
                h = Hist3(grid, track_errors=True)
                mdnorm(h, OPS3, dets, solid, flux, BAND, backend=backend,
                       cache=cache, cache_tag="plan-path")
            hists[backend] = h
        assert hists["fused"].signal.sum() > 0
        assert np.array_equal(hists["fused"].signal,
                              hists["vectorized"].signal)
        assert np.array_equal(hists["fused"].error_sq,
                              hists["vectorized"].error_sq)


class TestPlanMemoization:
    def test_one_kernel_per_config(self, grid, flux):
        _run(grid, flux, backend="fused")
        assert len(FUSED._kernels) == 1
        # warm launches and scheduling knobs reuse it
        _run(grid, flux, backend="fused")
        _run(grid, flux, backend="fused", tile_rows=9)
        assert len(FUSED._kernels) == 1
        # a config change (scatter impl, op count) specializes anew
        _run(grid, flux, backend="fused", scatter_impl="buffered")
        assert len(FUSED._kernels) == 2
        _run(grid, flux, backend="fused", ops=OPS3)
        assert len(FUSED._kernels) == 3

    def test_warm_launch_adds_no_compile_events(self, grid, flux):
        GLOBAL_JIT.clear()
        _run(grid, flux, backend="fused")
        cold_events = [e for e in GLOBAL_JIT.compile_events
                       if e.backend == "fused" and e.kernel == "mdnorm"]
        assert len(cold_events) == 1
        assert cold_events[0].variant.startswith("codegen:")
        assert cold_events[0].seconds > 0.0
        n = len(GLOBAL_JIT.compile_events)
        _run(grid, flux, backend="fused")
        assert len(GLOBAL_JIT.compile_events) == n

    def test_clear_recompiles_from_artifact(self, grid, flux):
        """clear() drops the in-process memo; the next launch reloads
        the published artifact (variant ``load:``) instead of
        regenerating source."""
        GLOBAL_JIT.clear()
        _run(grid, flux, backend="fused")
        FUSED.clear()
        assert not FUSED._kernels and not FUSED._plans
        _run(grid, flux, backend="fused")
        variants = [e.variant.split(":", 1)[0]
                    for e in GLOBAL_JIT.compile_events
                    if e.backend == "fused" and e.kernel == "mdnorm"]
        assert variants == ["codegen", "load"]

    def test_distinct_grids_get_distinct_digests(self, flux):
        g1 = HKLGrid(basis=np.eye(3), minimum=(-2.0, -2.0, -0.5),
                     maximum=(2.0, 2.0, 0.5), bins=(16, 16, 2))
        g2 = HKLGrid(basis=np.eye(3), minimum=(-2.0, -2.0, -0.5),
                     maximum=(2.0, 2.0, 0.5), bins=(8, 8, 2))
        _run(g1, flux, backend="fused")
        _run(g2, flux, backend="fused")
        assert len(FUSED._kernels) == 2


class TestObservability:
    def test_spans_and_counters_cold_then_warm(self, grid, flux):
        tracer = trace.Tracer(label="fused-test")
        with trace.use_tracer(tracer):
            _run(grid, flux, backend="fused")
        names = [r["name"] for r in tracer.records if r.get("type") == "span"]
        assert "kernel:mdnorm" in names
        assert "fused:plan" in names
        assert "fused:codegen" in names
        assert "fused:exec" in names
        assert "fused:load" not in names
        assert tracer.counters.get("jacc.compile_seconds", 0.0) > 0.0
        assert "jacc.artifact_hits" not in tracer.counters

        # nesting: the fused phases are children of kernel:mdnorm
        spans = {r["name"]: r for r in tracer.records
                 if r.get("type") == "span"}
        kid = spans["kernel:mdnorm"]["span_id"]
        for phase in ("fused:plan", "fused:codegen", "fused:exec"):
            assert spans[phase]["parent_id"] == kid, phase

        # drop the memo: the relaunch hits the artifact store
        FUSED.clear()
        tracer2 = trace.Tracer(label="fused-warm")
        with trace.use_tracer(tracer2):
            _run(grid, flux, backend="fused")
        names2 = [r["name"] for r in tracer2.records if r.get("type") == "span"]
        assert "fused:load" in names2
        assert "fused:codegen" not in names2
        assert tracer2.counters.get("jacc.artifact_hits") == 1

    def test_exec_span_carries_digest(self, grid, flux):
        tracer = trace.Tracer(label="fused-digest")
        with trace.use_tracer(tracer):
            _run(grid, flux, backend="fused")
        execs = [r for r in tracer.records
                 if r.get("type") == "span" and r["name"] == "fused:exec"]
        assert execs and execs[0]["attrs"]["digest"]
        plan = [r for r in tracer.records
                if r.get("type") == "span" and r["name"] == "fused:plan"]
        assert plan[0]["attrs"]["digest"] == execs[0]["attrs"]["digest"]

    def test_artifact_published_on_first_launch(self, grid, flux):
        _run(grid, flux, backend="fused")
        store = ArtifactStore()
        (digest,) = FUSED._kernels.keys()
        assert store.path_for(digest).exists()
        assert isinstance(store.load(digest), str)


class TestFallThrough:
    def test_non_mdnorm_kernels_take_vectorized_path(self):
        def _element(ctx, i):
            ctx.out[i] = ctx.x[i] * 3.0

        def _batch(ctx, dims):
            ctx.out[...] = ctx.x * 3.0

        k = Kernel(name="fused_passthrough", element=_element, batch=_batch)
        x = np.arange(8.0)
        out = np.zeros(8)
        tracer = trace.Tracer(label="fallthrough")
        with trace.use_tracer(tracer):
            parallel_for(8, k, make_captures(x=x, out=out), backend="fused")
        assert np.array_equal(out, x * 3.0)
        names = [r["name"] for r in tracer.records if r.get("type") == "span"]
        assert not any(n.startswith("fused:") for n in names)
        assert not FUSED._kernels

    def test_registered_as_device_backend(self):
        be = get_backend("fused")
        assert isinstance(be, FusedBackend)
        assert be.device_kind == "device"

    def test_zero_extent_launch_is_noop(self, grid, flux):
        from repro.core.mdnorm import MDNORM_KERNEL  # noqa: F401 - import check

        h = Hist3(grid, track_errors=True)
        dets = np.zeros((0, 3))
        mdnorm(h, IDENT, dets, np.zeros(0), flux, BAND, backend="fused",
               cache=gc.DISABLED)
        assert h.signal.sum() == 0.0
        assert not FUSED._kernels
