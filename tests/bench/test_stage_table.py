"""Unit tests for the Tables III-VI renderer."""

import pytest

from repro.bench.harness import MeasuredRun
from repro.bench.paper import TABLE3_BENZIL_DEFIANT
from repro.bench.report import format_stage_table
from repro.core.cross_section import CrossSectionResult
from repro.util.timers import StageTimings


def _run(label, per_file, files_measured=2, files_full=4):
    t = StageTimings()
    for stage, seconds in per_file.items():
        for _ in range(files_measured):
            timer = t.timer(stage)
            timer.elapsed += seconds
            timer.ncalls += 1
            t.first_call.setdefault(stage, seconds)
    total = t.timer("Total")
    total.elapsed = sum(per_file.values()) * files_measured
    total.ncalls = 1
    result = CrossSectionResult(
        cross_section=None, binmd=None, mdnorm=None, timings=t,
        n_runs=files_full, backend=label,
    )
    return MeasuredRun(
        label=label, workload_key="w", files_measured=files_measured,
        files_full=files_full, timings=t, result=result,
    )


@pytest.fixture()
def runs():
    stages = {"UpdateEvents": 0.01, "MDNorm": 0.2, "BinMD": 0.05}
    return (
        _run("cpp", stages),
        _run("jit", {k: v * 3 for k, v in stages.items()}, files_measured=1),
        _run("warm", stages, files_measured=1),
    )


class TestFormatStageTable:
    def test_contains_all_stage_rows(self, runs):
        cpp, jit, warm = runs
        text = format_stage_table("T", cpp, jit, warm)
        for stage in ("UpdateEvents", "MDNorm", "BinMD", "MDNorm + BinMD",
                      "Total (wf)"):
            assert stage in text

    def test_paper_columns_included_when_given(self, runs):
        cpp, jit, warm = runs
        text = format_stage_table("T", cpp, jit, warm, TABLE3_BENZIL_DEFIANT)
        assert "paper C++" in text
        assert "4.669" in text  # paper MDNorm JIT value

    def test_extrapolation_marker(self, runs):
        cpp, jit, warm = runs
        text = format_stage_table("T", cpp, jit, warm, mv_total=cpp)
        assert "*" in text
        assert "2/4" in text

    def test_jit_and_warm_columns_differ(self, runs):
        cpp, jit, warm = runs
        text = format_stage_table("T", cpp, jit, warm)
        # jit per-file MDNorm = 0.6, warm = 0.2
        assert "0.6" in text and "0.2" in text

    def test_total_uses_mv_total_run(self, runs):
        cpp, jit, warm = runs
        explicit = _run("mv_total", {"MDNorm": 1.0}, files_measured=4)
        text = format_stage_table("T", cpp, jit, warm, mv_total=explicit)
        assert "4" in text  # 4 files x 1.0 s total
