"""Unit tests for the parameter-sweep utility."""

import time

import numpy as np
import pytest

from repro.bench.sweep import SweepPoint, SweepResult, run_sweep


class TestRunSweep:
    def test_records_every_value(self):
        result = run_sweep("s", "n", [1, 2, 4], lambda n: None, repeats=1)
        assert [p.parameter for p in result.points] == [1.0, 2.0, 4.0]
        assert all(p.seconds >= 0 for p in result.points)

    def test_observables_recorded(self):
        result = run_sweep(
            "s", "n", [3], lambda n: {"total": n * 10}, repeats=1
        )
        assert result.points[0].observables == {"total": 30.0}
        assert result.observable_names() == ["total"]

    def test_median_of_repeats(self):
        calls = []

        def fn(n):
            calls.append(n)

        run_sweep("s", "n", [1, 2], fn, repeats=3)
        assert len(calls) == 6

    def test_validation(self):
        with pytest.raises(Exception):
            run_sweep("s", "n", [], lambda n: None)
        with pytest.raises(Exception):
            run_sweep("s", "n", [1], lambda n: None, repeats=0)


class TestSweepResult:
    def _linear(self):
        points = [
            SweepPoint(parameter=10.0, seconds=0.1),
            SweepPoint(parameter=100.0, seconds=1.0),
            SweepPoint(parameter=1000.0, seconds=10.0),
        ]
        return SweepResult(name="lin", parameter_name="n", points=points)

    def test_scaling_exponent_linear(self):
        assert self._linear().scaling_exponent() == pytest.approx(1.0)

    def test_scaling_exponent_quadratic(self):
        points = [
            SweepPoint(parameter=n, seconds=1e-6 * n**2) for n in (10, 100, 1000)
        ]
        r = SweepResult(name="quad", parameter_name="n", points=points)
        assert r.scaling_exponent() == pytest.approx(2.0)

    def test_exponent_needs_two_points(self):
        r = SweepResult(name="x", parameter_name="n",
                        points=[SweepPoint(parameter=1.0, seconds=1.0)])
        with pytest.raises(Exception):
            r.scaling_exponent()

    def test_rows_shape(self):
        r = run_sweep("s", "n", [2, 4], lambda n: {"obs": n}, repeats=1)
        rows = r.rows()
        assert len(rows) == 2
        assert len(rows[0]) == 3  # parameter, seconds, obs

    def test_real_timing_sweep(self):
        """A sweep over sleep durations measures what it should."""
        r = run_sweep("sleep", "t", [0.001, 0.004],
                      lambda t: time.sleep(t), repeats=1)
        assert r.points[1].seconds > r.points[0].seconds
