"""Unit tests for the cold/warm JIT measurement helper."""

import numpy as np
import pytest

from repro.bench.harness import (
    A100_PROFILE,
    MI100_PROFILE,
    run_minivates_jit_split,
)
from repro.bench.workloads import benzil_corelli, build_workload


@pytest.fixture(scope="module")
def data(tmp_path_factory):
    import os

    os.environ["REPRO_BENCH_DATA"] = str(tmp_path_factory.mktemp("jit"))
    return build_workload(benzil_corelli(scale=0.0002, n_files=2))


class TestJitSplit:
    def test_same_file_identical_results(self, data):
        cold, warm = run_minivates_jit_split(data)
        assert np.allclose(cold.result.binmd.signal, warm.result.binmd.signal)
        assert np.allclose(cold.result.mdnorm.signal, warm.result.mdnorm.signal)

    def test_cold_run_compiled_warm_did_not(self, data):
        cold, warm = run_minivates_jit_split(data)
        assert cold.extras["jit_compile_events"] > 0
        # warm run reused the cache the cold run filled
        assert warm.extras["jit_compile_events"] == cold.extras["jit_compile_events"]
        assert warm.extras["jit_compile_seconds"] == cold.extras["jit_compile_seconds"]

    def test_labels(self, data):
        cold, warm = run_minivates_jit_split(data, profile=MI100_PROFILE)
        assert "JIT" in cold.label and "no JIT" in warm.label
        assert "MI100" in cold.label

    def test_single_file_measured(self, data):
        cold, warm = run_minivates_jit_split(data, file_index=1)
        assert cold.files_measured == warm.files_measured == 1
        assert cold.files_full == data.spec.n_files

    def test_bad_file_index(self, data):
        with pytest.raises(Exception):
            run_minivates_jit_split(data, file_index=99)

    @pytest.mark.parametrize("profile", [A100_PROFILE, MI100_PROFILE])
    def test_profiles_produce_same_histograms(self, data, profile):
        cold_a, _ = run_minivates_jit_split(data, profile=A100_PROFILE)
        cold_p, _ = run_minivates_jit_split(data, profile=profile)
        assert np.allclose(cold_a.result.binmd.signal, cold_p.result.binmd.signal)
