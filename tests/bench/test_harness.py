"""Unit tests for the benchmark harness math and drivers."""

import numpy as np
import pytest

from repro.bench.harness import (
    A100_PROFILE,
    MI100_PROFILE,
    ColdWarmSplit,
    MeasuredRun,
    assert_results_match,
    run_cpp_proxy,
    run_garnet,
    run_minivates,
    run_repeated_panel,
)
from repro.bench.workloads import benzil_corelli, build_workload
from repro.core.cross_section import CrossSectionResult
from repro.util.timers import StageTimings


@pytest.fixture(scope="module")
def data(tmp_path_factory):
    import os

    os.environ["REPRO_BENCH_DATA"] = str(tmp_path_factory.mktemp("bench"))
    return build_workload(benzil_corelli(scale=0.0002, n_files=3))


class TestDrivers:
    def test_garnet(self, data):
        run = run_garnet(data, files=2)
        assert run.files_measured == 2
        assert run.files_full == 3
        assert run.extrapolated
        assert run.total_measured > 0
        assert run.total_extrapolated == pytest.approx(1.5 * run.total_measured)

    def test_cpp(self, data):
        run = run_cpp_proxy(data)
        assert run.files_measured == 3
        assert not run.extrapolated
        assert run.per_file("MDNorm") > 0

    @pytest.mark.parametrize("profile", [A100_PROFILE, MI100_PROFILE])
    def test_minivates_profiles(self, data, profile):
        run = run_minivates(data, profile=profile)
        assert profile.name in run.label
        assert run.extras["kernel_launches"] > 0

    def test_all_agree(self, data):
        g = run_garnet(data)
        c = run_cpp_proxy(data)
        m = run_minivates(data)
        assert_results_match(g, c)
        assert_results_match(g, m)

    def test_mismatch_detected(self, data):
        a = run_cpp_proxy(data)
        b = run_cpp_proxy(data)
        b.result.binmd.signal[0, 0, 0] += 1.0
        with pytest.raises(AssertionError, match="BinMD"):
            assert_results_match(a, b)

    def test_subset_mismatch_rejected(self, data):
        a = run_cpp_proxy(data, files=2)
        b = run_cpp_proxy(data, files=3)
        with pytest.raises(Exception):
            assert_results_match(a, b)


class TestRepeatedPanel:
    def test_warm_pass_is_exact_and_hits(self, data):
        split = run_repeated_panel(data)
        assert isinstance(split, ColdWarmSplit)
        # warm histograms are bit-identical to the cold pass
        assert np.array_equal(
            split.cold.result.binmd.signal, split.warm.result.binmd.signal
        )
        assert np.array_equal(
            split.cold.result.mdnorm.signal, split.warm.result.mdnorm.signal
        )
        assert_results_match(split.cold, split.warm)
        # the second pass really hit the cache
        assert split.cache_stats["hits"] > 0
        assert split.cache_stats["misses"] > 0
        assert split.warm.extras["geom_cache"]["hits"] > 0

    def test_stage_table_shape(self, data):
        split = run_repeated_panel(data, files=2)
        table = split.stage_table()
        assert set(table) == {"UpdateEvents", "MDNorm", "BinMD", "Total"}
        for row in table.values():
            assert row["cold_s"] >= 0.0
            assert row["warm_s"] >= 0.0
            assert row["speedup"] > 0.0
        assert split.speedup("MDNorm") == table["MDNorm"]["speedup"]

    def test_private_cache_isolated_from_process_default(self, data):
        from repro.core.geom_cache import default_cache

        before = len(default_cache())
        run_repeated_panel(data, files=1)
        assert len(default_cache()) == before


class TestMeasuredRunMath:
    def _fake(self, stage_seconds, files_measured, files_full):
        t = StageTimings()
        for stage, per_call in stage_seconds.items():
            for j in range(files_measured):
                timer = t.timer(stage)
                timer.elapsed += per_call
                timer.ncalls += 1
                t.first_call.setdefault(stage, per_call)
        total = t.timer("Total")
        total.elapsed = sum(stage_seconds.values()) * files_measured
        total.ncalls = 1
        result = CrossSectionResult(
            cross_section=None, binmd=None, mdnorm=None, timings=t,
            n_runs=files_full, backend="fake",
        )
        return MeasuredRun(
            label="fake", workload_key="k", files_measured=files_measured,
            files_full=files_full, timings=t, result=result,
        )

    def test_per_file(self):
        run = self._fake({"MDNorm": 0.5}, 4, 4)
        assert run.per_file("MDNorm") == pytest.approx(0.5)

    def test_extrapolation(self):
        run = self._fake({"MDNorm": 1.0}, 2, 10)
        assert run.total_extrapolated == pytest.approx(5 * run.total_measured)

    def test_warm_excludes_first(self):
        run = self._fake({"BinMD": 0.25}, 4, 4)
        assert run.warm("BinMD") == pytest.approx(0.25)

    def test_combined_stage(self):
        run = self._fake({"MDNorm": 0.5, "BinMD": 0.25}, 2, 2)
        assert run.per_file("MDNorm + BinMD") == pytest.approx(0.75)
