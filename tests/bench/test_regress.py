"""Continuous benchmark regression tracking (PR 4 tentpole 2).

The trajectory file is append-only, schema-checked and machine-
fingerprinted; the gate uses a robust median + k*IQR threshold with a
slowdown floor, bootstraps on a fresh machine, and exits nonzero on an
injected 2x slowdown.
"""

import json

import pytest

from repro.bench.regress import (
    BENCH_SCHEMA,
    DEFAULT_K,
    DEFAULT_MIN_RATIO,
    BenchRecorder,
    RegressError,
    baseline_stats,
    check_against,
    default_bench_path,
    machine_fingerprint,
    robust_stats,
    stage_samples_from_timings,
)
from repro.util.timers import StageTimings

FP = "testbox-x86_64-cpu8-py3.11"


def _samples(scale=1.0):
    """Five repeats of a plausible stage panel, scaled."""
    base = {
        "UpdateEvents": [0.010, 0.011, 0.010, 0.012, 0.011],
        "MDNorm": [0.050, 0.052, 0.049, 0.051, 0.050],
        "BinMD": [0.080, 0.078, 0.081, 0.079, 0.080],
        "Total": [0.150, 0.151, 0.149, 0.152, 0.150],
    }
    return {k: [v * scale for v in vals] for k, vals in base.items()}


class TestRobustStats:
    def test_median_and_iqr(self):
        st = robust_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert st["median"] == 3.0
        assert st["min"] == 1.0 and st["max"] == 5.0
        assert st["n"] == 5.0
        assert st["iqr"] > 0.0

    def test_constant_samples_have_zero_iqr(self):
        st = robust_stats([2.0, 2.0, 2.0, 2.0])
        assert st["median"] == 2.0
        assert st["iqr"] == 0.0

    def test_single_sample(self):
        st = robust_stats([3.5])
        assert st["median"] == 3.5
        assert st["iqr"] == 0.0

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            robust_stats([])


class TestStageSamples:
    def test_from_timings(self):
        ts = []
        for rep in range(3):
            t = StageTimings(label=f"r{rep}")
            with t.stage("Total"):
                with t.stage("MDNorm"):
                    pass
            ts.append(t)
        samples = stage_samples_from_timings(ts)
        assert len(samples["MDNorm"]) == 3
        assert len(samples["Total"]) == 3


class TestBenchRecorder:
    def test_first_record_creates_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        rec = BenchRecorder(path, "x")
        assert rec.entries == []  # skeleton, no file yet
        entry = rec.record(_samples(), config={"scale": 0.001},
                           git_sha="abc", fingerprint=FP,
                           recorded_unix=1.0)
        assert path.exists()
        assert entry["fingerprint"] == FP
        doc = json.loads(path.read_text())
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["workload"] == "x"
        assert len(doc["entries"]) == 1
        assert doc["entries"][0]["stages"]["MDNorm"]["median"] == 0.050

    def test_append_never_overwrites(self, tmp_path):
        rec = BenchRecorder(tmp_path / "b.json", "x")
        rec.record(_samples(), git_sha="a", fingerprint=FP, recorded_unix=1.0)
        rec.record(_samples(1.01), git_sha="b", fingerprint=FP,
                   recorded_unix=2.0)
        entries = rec.entries
        assert [e["git_sha"] for e in entries] == ["a", "b"]
        assert entries[0]["recorded_unix"] == 1.0  # untouched

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "workload": "x",
                                    "entries": []}))
        with pytest.raises(RegressError, match="schema"):
            BenchRecorder(path, "x").load()

    def test_workload_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA,
                                    "workload": "other", "entries": []}))
        with pytest.raises(RegressError, match="workload"):
            BenchRecorder(path, "x").load()

    def test_too_few_repeats_rejected(self, tmp_path):
        rec = BenchRecorder(tmp_path / "b.json", "x")
        with pytest.raises(RegressError, match="repeats"):
            rec.record({"Total": [0.1, 0.1]})

    def test_fingerprint_filtering(self, tmp_path):
        rec = BenchRecorder(tmp_path / "b.json", "x")
        rec.record(_samples(), fingerprint=FP, git_sha="a")
        rec.record(_samples(), fingerprint="otherbox", git_sha="b")
        assert len(rec.matching_entries(FP)) == 1
        assert len(rec.matching_entries(FP, any_fingerprint=True)) == 2

    def test_default_bench_path(self, tmp_path):
        p = default_bench_path("benzil_smoke", str(tmp_path))
        assert p.name == "BENCH_benzil_smoke.json"
        assert p.parent == tmp_path
        # repo default lands in benchmarks/
        assert default_bench_path("x").parent.name == "benchmarks"


class TestBaselineStats:
    def test_median_of_medians(self, tmp_path):
        rec = BenchRecorder(tmp_path / "b.json", "x")
        for scale in (1.0, 1.1, 0.9):
            rec.record(_samples(scale), fingerprint=FP)
        base = baseline_stats(rec.matching_entries(FP), "MDNorm")
        assert base["median"] == pytest.approx(0.050)
        assert base["n"] == 3.0

    def test_missing_stage_is_none(self):
        assert baseline_stats([{"stages": {}}], "MDNorm") is None


class TestCheckAgainst:
    def _recorder(self, tmp_path, n=3):
        rec = BenchRecorder(tmp_path / "b.json", "x")
        for i in range(n):
            rec.record(_samples(1.0 + 0.01 * i), fingerprint=FP,
                       git_sha=f"s{i}")
        return rec

    def test_no_change_passes(self, tmp_path):
        rec = self._recorder(tmp_path)
        report = check_against(rec, _samples(), fingerprint=FP)
        assert not report.regressed
        assert report.exit_code == 0
        assert not report.bootstrapped
        assert "no regression" in report.text()

    def test_2x_slowdown_fails_nonzero(self, tmp_path):
        rec = self._recorder(tmp_path)
        report = check_against(rec, _samples(2.0), fingerprint=FP)
        assert report.regressed
        assert report.exit_code == 1
        assert "REGRESSION DETECTED" in report.text()
        slow = {v.stage for v in report.verdicts if v.regressed}
        assert "Total" in slow and "MDNorm" in slow

    def test_small_jitter_within_floor_passes(self, tmp_path):
        """Above median + k*IQR but under the min_ratio floor: pass."""
        rec = BenchRecorder(tmp_path / "b.json", "x")
        for _ in range(3):  # zero-IQR baseline
            rec.record({"Total": [0.1] * 5}, fingerprint=FP)
        report = check_against(rec, {"Total": [0.11] * 5},
                               fingerprint=FP, stages=("Total",))
        assert not report.regressed  # 1.1x < min_ratio 1.25

    def test_first_run_bootstraps(self, tmp_path):
        rec = BenchRecorder(tmp_path / "empty.json", "x")
        report = check_against(rec, _samples(), fingerprint=FP)
        assert report.bootstrapped
        assert report.exit_code == 0
        assert "bootstrap" in report.text()

    def test_foreign_fingerprint_bootstraps_unless_opted_in(self, tmp_path):
        rec = BenchRecorder(tmp_path / "b.json", "x")
        rec.record(_samples(), fingerprint="otherbox")
        report = check_against(rec, _samples(2.0), fingerprint=FP)
        assert report.bootstrapped and report.exit_code == 0
        report = check_against(rec, _samples(2.0), fingerprint=FP,
                               any_fingerprint=True)
        assert report.regressed and report.exit_code == 1

    def test_threshold_knobs_validated(self, tmp_path):
        rec = self._recorder(tmp_path)
        with pytest.raises(Exception):
            check_against(rec, _samples(), k=-1.0, fingerprint=FP)
        with pytest.raises(Exception):
            check_against(rec, _samples(), min_ratio=0.5, fingerprint=FP)

    def test_defaults_are_documented_values(self):
        assert DEFAULT_K == 3.0
        assert DEFAULT_MIN_RATIO == 1.25


class TestFingerprint:
    def test_shape(self):
        fp = machine_fingerprint()
        assert "-cpu" in fp and "-py" in fp


class TestEndToEndPanel:
    """The real collector on the tiny session experiment."""

    def test_collect_record_check(self, tiny_experiment, tmp_path):
        from repro.bench.regress import collect_panel_samples

        class _Data:
            md_paths = tiny_experiment.md_paths[:2]
            nexus_paths = tiny_experiment.nexus_paths[:2]
            flux_path = tiny_experiment.flux_path
            vanadium_path = tiny_experiment.vanadium_path
            instrument = tiny_experiment.instrument
            grid = tiny_experiment.grid
            point_group = tiny_experiment.point_group

        samples = collect_panel_samples(_Data(), repeats=3)
        assert all(len(v) == 3 for v in samples.values())
        rec = BenchRecorder(tmp_path / "BENCH_tiny.json", "tiny")
        rec.record(samples)
        report = check_against(rec, samples)
        assert report.exit_code == 0
        doubled = {k: [2.0 * v for v in vals] for k, vals in samples.items()}
        report = check_against(rec, doubled)
        assert report.exit_code == 1
