"""Unit tests for table rendering."""

from repro.bench.paper import PAPER_TABLES, TABLE2
from repro.bench.report import comparison_block, format_table
from repro.bench.systems import current_host, systems_rows


class TestFormatTable:
    def test_contains_title_headers_and_values(self):
        text = format_table(
            "Demo", ["col1", "col2"], [["a", 1.25], ["b", 3.5]]
        )
        assert "Demo" in text
        assert "col1" in text and "col2" in text
        assert "1.25" in text and "3.5" in text

    def test_float_formatting(self):
        text = format_table("T", ["x"], [[0.123456789]])
        assert "0.1235" in text


class TestComparisonBlock:
    def test_layout(self):
        text = comparison_block("headline", {"speedup": (74.0, 63.2)})
        assert "headline" in text
        assert "74" in text and "63.2" in text


class TestPaperData:
    def test_tables_present(self):
        assert set(PAPER_TABLES) == {"table3", "table4", "table5", "table6"}
        for rows in PAPER_TABLES.values():
            assert "MDNorm" in rows and "BinMD" in rows and "Total" in rows

    def test_table2_baseline_wcts(self):
        assert TABLE2["benzil_corelli"].garnet_total_s == 271.0
        assert TABLE2["bixbyite_topaz"].garnet_total_s == 904.0

    def test_table6_binmd_headline(self):
        """The 50,000x claim: warm BinMD 5.31e-5 s vs 3.08 s on CPU."""
        cpu, _jit, nojit = PAPER_TABLES["table6"]["BinMD"]
        assert cpu / nojit > 50_000


class TestSystems:
    def test_rows_cover_all_paper_systems(self):
        rows = systems_rows()
        names = [r[0] for r in rows]
        assert names == ["Defiant (OLCF)", "Milan0 (ExCL)", "bl12-analysis2 (SNS)"]
        for _, hw, mem, mapping in rows:
            assert hw and mem and mapping

    def test_current_host(self):
        host = current_host()
        assert host.cpu_count >= 1
        assert host.python
