"""Unit tests for the benchmark workload builder and its cache."""

import numpy as np
import pytest

from repro.bench.workloads import (
    WorkloadSpec,
    _spec_digest,
    benzil_corelli,
    bixbyite_topaz,
    build_workload,
)


class TestSpecs:
    def test_benzil_paper_parameters(self):
        spec = benzil_corelli(scale=0.001)
        assert spec.paper.files == 36
        assert spec.paper.symmetry_ops == 6
        assert spec.paper.events == 40_000_000
        assert spec.paper.detectors == 372_000
        assert spec.paper.bins == (603, 603, 1)

    def test_bixbyite_paper_parameters(self):
        spec = bixbyite_topaz(scale=0.001)
        assert spec.paper.files == 22
        assert spec.paper.symmetry_ops == 24
        assert spec.paper.events == 280_000_000
        assert spec.paper.detectors == 1_600_000

    def test_scaling_applied(self):
        spec = benzil_corelli(scale=0.001, n_files=4)
        assert spec.n_files == 4
        assert spec.n_events_total == 40_000
        assert spec.n_detectors == 372

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        spec = benzil_corelli()
        assert spec.scale == 0.0001

    def test_env_files_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_FILES", "3")
        assert benzil_corelli().n_files == 3

    def test_files_never_exceed_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_FILES", "500")
        assert benzil_corelli().n_files == 36

    def test_describe_mentions_both_scales(self):
        text = benzil_corelli(scale=0.001, n_files=2).describe()
        assert "4.00e+07" in text and "4.00e+04" in text

    def test_digest_changes_with_parameters(self):
        a = benzil_corelli(scale=0.001, n_files=2)
        b = benzil_corelli(scale=0.002, n_files=2)
        assert _spec_digest(a) != _spec_digest(b)
        assert _spec_digest(a) == _spec_digest(benzil_corelli(scale=0.001, n_files=2))


class TestBuild:
    @pytest.fixture()
    def built(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DATA", str(tmp_path))
        spec = benzil_corelli(scale=0.0002, n_files=2)
        return build_workload(spec), spec

    def test_files_created(self, built):
        data, spec = built
        assert len(data.md_paths) == 2
        assert len(data.nexus_paths) == 2
        assert data.total_bytes > 0
        assert (data.directory / "COMPLETE").exists()

    def test_point_group_matches_paper(self, built):
        data, spec = built
        assert data.point_group.order == spec.paper.symmetry_ops

    def test_cache_reused(self, built, tmp_path, monkeypatch):
        data, spec = built
        marker = data.directory / "COMPLETE"
        first_mtime = marker.stat().st_mtime_ns
        again = build_workload(spec)
        assert marker.stat().st_mtime_ns == first_mtime
        assert again.directory == data.directory

    def test_runs_are_loadable_and_distinct(self, built):
        from repro.core.md_event_workspace import load_md

        data, _ = built
        a = load_md(data.md_paths[0])
        b = load_md(data.md_paths[1])
        assert a.n_events > 0
        assert not np.allclose(a.goniometer, b.goniometer)
